//! Property tests of the epoch-MVCC store against a reference model: a
//! `BTreeMap<(key, epoch), value>` replays the same history and must agree
//! with every read, at every epoch, before and after garbage collection.

use prognosticator_storage::EpochStore;
use prognosticator_txir::{Key, TableId, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put { key: i64, value: i64 },
    Advance,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0..6i64, 0..100i64).prop_map(|(key, value)| Op::Put { key, value }),
            1 => Just(Op::Advance),
        ],
        1..60,
    )
}

fn k(i: i64) -> Key {
    Key::of_ints(TableId(0), &[i])
}

/// Reference: last write per (key, epoch'), epoch' ≤ epoch.
fn model_get_at(model: &BTreeMap<(i64, u64), i64>, key: i64, epoch: u64) -> Option<i64> {
    model
        .range((key, 0)..=(key, epoch))
        .next_back()
        .map(|(_, v)| *v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn store_agrees_with_reference_model(ops in ops_strategy()) {
        let store = EpochStore::with_shards(4);
        let mut model: BTreeMap<(i64, u64), i64> = BTreeMap::new();
        let mut max_epoch = store.current_epoch();

        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    store.put(&k(*key), Value::Int(*value));
                    model.insert((*key, store.current_epoch()), *value);
                }
                Op::Advance => {
                    max_epoch = store.advance_epoch();
                }
            }
        }

        // Every key at every epoch agrees with the model.
        for key in 0..6 {
            for epoch in 0..=max_epoch {
                let expect = model_get_at(&model, key, epoch).map(Value::Int);
                prop_assert_eq!(
                    store.get_at(&k(key), epoch),
                    expect.clone(),
                    "key {} at epoch {}", key, epoch
                );
            }
            let latest = model_get_at(&model, key, u64::MAX).map(Value::Int);
            prop_assert_eq!(store.get_latest(&k(key)), latest);
        }

        // Digest is insensitive to sharding.
        let replay = EpochStore::with_shards(16);
        for op in &ops {
            match op {
                Op::Put { key, value } => replay.put(&k(*key), Value::Int(*value)),
                Op::Advance => {
                    replay.advance_epoch();
                }
            }
        }
        prop_assert_eq!(store.state_digest(), replay.state_digest());
    }

    /// GC below an epoch preserves every read at or after that epoch.
    #[test]
    fn gc_preserves_recent_snapshots(ops in ops_strategy(), gc_at in 0..6u64) {
        let store = EpochStore::with_shards(4);
        let mut model: BTreeMap<(i64, u64), i64> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    store.put(&k(*key), Value::Int(*value));
                    model.insert((*key, store.current_epoch()), *value);
                }
                Op::Advance => {
                    store.advance_epoch();
                }
            }
        }
        let max_epoch = store.current_epoch();
        let gc_at = gc_at.min(max_epoch);
        store.gc_before(gc_at);
        for key in 0..6 {
            for epoch in gc_at..=max_epoch {
                let expect = model_get_at(&model, key, epoch).map(Value::Int);
                prop_assert_eq!(
                    store.get_at(&k(key), epoch),
                    expect.clone(),
                    "post-GC read: key {} at epoch {} (gc_at {})", key, epoch, gc_at
                );
            }
        }
    }

    /// A historical scan pinned at epoch `E` never observes the effect
    /// of a GC at or below its pin: the full key scan through
    /// `EpochStore::snapshot(E)` is byte-identical before and after
    /// `gc_before(E')` for any `E' ≤ E`, even while writes and epoch
    /// advances keep landing after the pin — the long-read-only-scan /
    /// concurrent-GC interleaving of the adversarial scan-storm
    /// scenario, reduced to its storage-level contract.
    #[test]
    fn pinned_scans_are_stable_under_gc(
        before in ops_strategy(),
        after in ops_strategy(),
        gc_lag in 0..4u64,
    ) {
        let store = EpochStore::with_shards(4);
        let mut model: BTreeMap<(i64, u64), i64> = BTreeMap::new();
        for op in &before {
            match op {
                Op::Put { key, value } => {
                    store.put(&k(*key), Value::Int(*value));
                    model.insert((*key, store.current_epoch()), *value);
                }
                Op::Advance => {
                    store.advance_epoch();
                }
            }
        }

        // Pin the scan and take its pre-GC reading of every key.
        let pin = store.current_epoch();
        let snapshot = store.snapshot(pin);
        let scan_before: Vec<Option<Value>> = (0..6).map(|key| snapshot.get(&k(key))).collect();
        for (key, observed) in scan_before.iter().enumerate() {
            prop_assert_eq!(
                observed.clone(),
                model_get_at(&model, key as i64, pin).map(Value::Int),
                "pinned scan of key {} disagrees with the model", key
            );
        }

        // While the scan is "live": GC at or below the pin, plus an
        // arbitrary write-storm tail in later epochs.
        store.gc_before(pin.saturating_sub(gc_lag));
        store.advance_epoch();
        for op in &after {
            match op {
                Op::Put { key, value } => {
                    store.put(&k(*key), Value::Int(*value));
                }
                Op::Advance => {
                    store.advance_epoch();
                }
            }
        }

        // The pinned scan must re-read exactly what it saw before.
        let scan_after: Vec<Option<Value>> = (0..6).map(|key| snapshot.get(&k(key))).collect();
        prop_assert_eq!(
            scan_before,
            scan_after,
            "a scan pinned at epoch {} observed a GC or later writes", pin
        );
    }
}
