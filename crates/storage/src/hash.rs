//! A stable, process-independent hash for store digests.
//!
//! `DefaultHasher` is randomized per process; replica-equivalence checks
//! need digests that are reproducible across runs (and meaningful to log),
//! so this module implements FNV-1a over a canonical byte encoding of keys
//! and values.

use prognosticator_txir::{Key, Value};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a streaming hasher with canonical encodings for store types.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a value with a type tag so e.g. `Int(0)` and `Bool(false)`
    /// hash differently.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.write_bytes(&[0]),
            Value::Bool(b) => {
                self.write_bytes(&[1, u8::from(*b)]);
            }
            Value::Int(i) => {
                self.write_bytes(&[2]);
                self.write_i64(*i);
            }
            Value::Str(s) => {
                self.write_bytes(&[3]);
                self.write_u64(s.len() as u64);
                self.write_bytes(s.as_bytes());
            }
            Value::Record(fields) => {
                self.write_bytes(&[4]);
                self.write_u64(fields.len() as u64);
                for f in fields.iter() {
                    self.write_value(f);
                }
            }
            Value::List(items) => {
                self.write_bytes(&[5]);
                self.write_u64(items.len() as u64);
                for i in items.iter() {
                    self.write_value(i);
                }
            }
        }
    }

    /// Feeds a key (table id + parts).
    pub fn write_key(&mut self, k: &Key) {
        self.write_u64(u64::from(k.table.0));
        self.write_u64(k.parts.len() as u64);
        for p in &k.parts {
            self.write_value(p);
        }
    }

    /// The current hash state.
    pub fn finish_u64(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_txir::TableId;

    fn hash_value(v: &Value) -> u64 {
        let mut h = StableHasher::new();
        h.write_value(v);
        h.finish_u64()
    }

    #[test]
    fn deterministic_across_instances() {
        let v = Value::record(vec![Value::Int(1), Value::str("abc")]);
        assert_eq!(hash_value(&v), hash_value(&v.clone()));
    }

    #[test]
    fn type_tags_disambiguate() {
        assert_ne!(hash_value(&Value::Int(0)), hash_value(&Value::Bool(false)));
        assert_ne!(hash_value(&Value::Unit), hash_value(&Value::Int(0)));
        assert_ne!(
            hash_value(&Value::list(vec![Value::Int(1)])),
            hash_value(&Value::record(vec![Value::Int(1)]))
        );
    }

    #[test]
    fn length_prefix_prevents_concat_ambiguity() {
        let a = Value::list(vec![Value::str("ab"), Value::str("c")]);
        let b = Value::list(vec![Value::str("a"), Value::str("bc")]);
        assert_ne!(hash_value(&a), hash_value(&b));
    }

    #[test]
    fn keys_hash_table_and_parts() {
        let mut h1 = StableHasher::new();
        h1.write_key(&Key::of_ints(TableId(1), &[2]));
        let mut h2 = StableHasher::new();
        h2.write_key(&Key::of_ints(TableId(2), &[2]));
        assert_ne!(h1.finish_u64(), h2.finish_u64());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of empty input is the offset basis.
        let h = StableHasher::new();
        assert_eq!(h.finish_u64(), 0xcbf2_9ce4_8422_2325);
    }
}
