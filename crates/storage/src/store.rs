//! The epoch-versioned, sharded, in-memory key-value store.

use crate::chain::VersionChain;
use crate::hash::StableHasher;
use crate::latency::{AtomicLatency, LatencyConfig};
use parking_lot::RwLock;
use prognosticator_txir::{Key, TxStore, Value};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 64;

/// A multi-versioned key-value store organized in epochs.
///
/// This is the substrate that replaces the paper's RocksDB deployment: it
/// provides the classic GET/PUT interface plus the three capabilities the
/// deterministic runtime needs —
///
/// * **snapshot reads** at any past epoch (read-only transactions and the
///   *prepare indirect keys* phase read the state after the previous
///   batch, §III-C);
/// * **historical reads** at arbitrarily stale epochs (emulating Calvin's
///   client-side reconnaissance that runs N ms before execution);
/// * **pivot validation** (compare the current value of a key against the
///   value observed during preparation).
///
/// Writes are tagged with the current epoch; after a batch commits, call
/// [`EpochStore::advance_epoch`]. The store is sharded and thread-safe:
/// concurrent writers in the deterministic runtime touch disjoint keys by
/// construction, so shard locks are uncontended in the common case.
#[derive(Debug)]
pub struct EpochStore {
    shards: Vec<RwLock<HashMap<Key, VersionChain>>>,
    epoch: AtomicU64,
    latency: AtomicLatency,
}

impl Default for EpochStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochStore {
    /// Creates a store with [`DEFAULT_SHARDS`] shards and no injected
    /// latency.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a store with an explicit shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        EpochStore {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(1),
            latency: AtomicLatency::default(),
        }
    }

    /// Sets the injected per-access latency (builder style).
    pub fn with_latency(self, latency: LatencyConfig) -> Self {
        self.latency.set(latency);
        self
    }

    /// The currently injected per-access latency.
    pub fn latency(&self) -> LatencyConfig {
        self.latency.get()
    }

    /// Replaces the injected per-access latency at runtime (the
    /// fault-injection harness uses this for storage latency spikes).
    /// Affects timing only; values read and written are unchanged.
    pub fn set_latency(&self, latency: LatencyConfig) {
        self.latency.set(latency);
    }

    fn shard(&self, key: &Key) -> &RwLock<HashMap<Key, VersionChain>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The current (uncommitted) epoch. Writes land here.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The snapshot epoch: the state after the previously committed batch.
    pub fn snapshot_epoch(&self) -> u64 {
        self.current_epoch() - 1
    }

    /// Commits the current batch: subsequent writes belong to a new epoch.
    /// Returns the new current epoch.
    pub fn advance_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Installs an initial value at epoch 0 (population).
    pub fn insert_initial(&self, key: Key, value: Value) {
        let mut shard = self.shard(&key).write();
        shard.insert(key, VersionChain::with_initial(0, value));
    }

    /// Bulk population at epoch 0.
    pub fn populate<I: IntoIterator<Item = (Key, Value)>>(&self, items: I) {
        for (k, v) in items {
            self.insert_initial(k, v);
        }
    }

    /// Reads the latest version of `key` (sees the current batch's writes).
    pub fn get_latest(&self, key: &Key) -> Option<Value> {
        self.latency.charge_read();
        self.shard(key).read().get(key).and_then(|c| c.latest().cloned())
    }

    /// Reads the latest version of `key` with its per-key version number
    /// (provenance for the isolation checker). A missing key reads as
    /// `(0, None)` — version 0 is the virtual initial version.
    pub fn get_latest_versioned(&self, key: &Key) -> (u64, Option<Value>) {
        self.latency.charge_read();
        match self.shard(key).read().get(key).and_then(|c| c.latest_versioned()) {
            Some((ver, v)) => (ver, Some(v.clone())),
            None => (0, None),
        }
    }

    /// Reads the newest version of `key` with epoch ≤ `epoch`.
    pub fn get_at(&self, key: &Key, epoch: u64) -> Option<Value> {
        self.latency.charge_read();
        self.shard(key).read().get(key).and_then(|c| c.get_at(epoch).cloned())
    }

    /// Reads the newest version of `key` with epoch ≤ `epoch`, plus its
    /// per-key version number (`0` when nothing is visible).
    pub fn get_at_versioned(&self, key: &Key, epoch: u64) -> (u64, Option<Value>) {
        self.latency.charge_read();
        match self.shard(key).read().get(key).and_then(|c| c.get_at_versioned(epoch)) {
            Some((ver, v)) => (ver, Some(v.clone())),
            None => (0, None),
        }
    }

    /// Writes `value` under `key` at the current epoch.
    pub fn put(&self, key: &Key, value: Value) {
        self.put_versioned(key, value);
    }

    /// Writes `value` under `key` at the current epoch, returning the
    /// per-key version number the write installed.
    pub fn put_versioned(&self, key: &Key, value: Value) -> u64 {
        self.latency.charge_write();
        let epoch = self.current_epoch();
        let mut shard = self.shard(key).write();
        shard.entry(key.clone()).or_default().put(epoch, value)
    }

    /// Number of keys present (any version).
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Total stored version count (diagnostics / GC sizing).
    pub fn version_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().values().map(VersionChain::len).sum::<usize>()).sum()
    }

    /// Garbage-collects history older than `epoch` (each key keeps its
    /// newest version ≤ `epoch` plus everything newer). Returns the
    /// number of versions reclaimed and mirrors GC accounting into the
    /// global metrics registry (`storage.gc_*`, `storage.live_versions`).
    pub fn gc_before(&self, epoch: u64) -> usize {
        let mut removed = 0usize;
        let mut live = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write();
            for chain in shard.values_mut() {
                removed += chain.gc_before(epoch);
                live += chain.len();
            }
        }
        let reg = prognosticator_obs::Registry::global();
        reg.counter("storage.gc_runs").inc();
        reg.counter("storage.gc_versions_removed").add(removed as u64);
        reg.gauge("storage.live_versions").set(live as i64);
        removed
    }

    /// A deterministic digest of the latest state. Two replicas that
    /// executed the same batches must produce identical digests — the
    /// correctness check of deterministic databases.
    pub fn state_digest(&self) -> u64 {
        // Hash (key, value) pairs order-independently by combining
        // per-entry hashes with a commutative fold (wrapping add of a
        // stable per-entry hash). Iteration order across shards/maps then
        // does not matter.
        let mut acc: u64 = 0;
        let mut entries: u64 = 0;
        for shard in &self.shards {
            let shard = shard.read();
            for (k, chain) in shard.iter() {
                if let Some(v) = chain.latest() {
                    let mut h = StableHasher::new();
                    h.write_key(k);
                    h.write_value(v);
                    acc = acc.wrapping_add(h.finish_u64());
                    entries += 1;
                }
            }
        }
        let mut h = StableHasher::new();
        h.write_u64(acc);
        h.write_u64(entries);
        h.finish_u64()
    }

    /// A read-only snapshot view at `epoch`, usable as a [`TxStore`]
    /// (writes panic: snapshots are immutable).
    pub fn snapshot(&self, epoch: u64) -> SnapshotView<'_> {
        SnapshotView { store: self, epoch }
    }

    /// A live view: reads see the latest state (including the current
    /// batch), writes land at the current epoch.
    pub fn live(&self) -> LiveView<'_> {
        LiveView { store: self }
    }
}

/// Read-only view of the store at a fixed epoch.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    store: &'a EpochStore,
    epoch: u64,
}

impl SnapshotView<'_> {
    /// The epoch this snapshot reads at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Reads `key` at the snapshot epoch.
    pub fn get(&self, key: &Key) -> Option<Value> {
        self.store.get_at(key, self.epoch)
    }
}

impl TxStore for SnapshotView<'_> {
    fn get(&mut self, key: &Key) -> Option<Value> {
        self.store.get_at(key, self.epoch)
    }

    /// # Panics
    /// Always: snapshots are immutable.
    fn put(&mut self, _key: &Key, _value: Value) {
        panic!("attempted write through a read-only snapshot view");
    }
}

/// Live read-write view of the store.
#[derive(Debug, Clone, Copy)]
pub struct LiveView<'a> {
    store: &'a EpochStore,
}

impl TxStore for LiveView<'_> {
    fn get(&mut self, key: &Key) -> Option<Value> {
        self.store.get_latest(key)
    }

    fn put(&mut self, key: &Key, value: Value) {
        self.store.put(key, value);
    }
}

/// Per-execution-shard GC watermarks over one shared [`EpochStore`].
///
/// A partitioned engine garbage-collects history only below the *minimum*
/// epoch every key-space shard has finished with: a single lagging shard
/// (e.g. one still preparing against an old snapshot) holds the floor, so
/// no shard can ever observe a reclaimed version. With the engine's global
/// batch barrier all shards report in lockstep and the floor equals the
/// common epoch; the structure exists so the GC contract is stated (and
/// tested) per shard rather than implied by the barrier.
#[derive(Debug)]
pub struct ShardWatermarks {
    reported: Vec<AtomicU64>,
}

impl ShardWatermarks {
    /// Watermarks for `shards` execution shards (clamped to at least 1),
    /// all starting at epoch 0.
    pub fn new(shards: usize) -> Self {
        ShardWatermarks {
            reported: (0..shards.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards tracked.
    pub fn shards(&self) -> usize {
        self.reported.len()
    }

    /// Records that `shard` no longer reads below `epoch`. Watermarks are
    /// monotonic: a lower report than the current one is ignored.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn report(&self, shard: usize, epoch: u64) {
        self.reported[shard].fetch_max(epoch, Ordering::AcqRel);
    }

    /// The GC floor: the minimum epoch reported across all shards.
    /// History strictly below this is safe to reclaim.
    pub fn floor(&self) -> u64 {
        self.reported
            .iter()
            .map(|w| w.load(Ordering::Acquire))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_txir::TableId;

    fn k(i: i64) -> Key {
        Key::of_ints(TableId(0), &[i])
    }

    #[test]
    fn put_get_roundtrip() {
        let s = EpochStore::new();
        assert_eq!(s.get_latest(&k(1)), None);
        s.put(&k(1), Value::Int(5));
        assert_eq!(s.get_latest(&k(1)), Some(Value::Int(5)));
        assert_eq!(s.key_count(), 1);
    }

    #[test]
    fn epochs_separate_batches() {
        let s = EpochStore::new();
        s.populate(vec![(k(1), Value::Int(0))]);
        assert_eq!(s.current_epoch(), 1);
        s.put(&k(1), Value::Int(100)); // batch 1
        // Snapshot (epoch 0) still sees the populated value.
        assert_eq!(s.get_at(&k(1), s.snapshot_epoch()), Some(Value::Int(0)));
        assert_eq!(s.get_latest(&k(1)), Some(Value::Int(100)));
        let e = s.advance_epoch();
        assert_eq!(e, 2);
        // New snapshot sees batch 1's write.
        assert_eq!(s.get_at(&k(1), s.snapshot_epoch()), Some(Value::Int(100)));
    }

    #[test]
    fn historical_reads_for_calvin() {
        let s = EpochStore::new();
        s.populate(vec![(k(7), Value::Int(0))]);
        for batch in 1..=5i64 {
            s.put(&k(7), Value::Int(batch * 10));
            s.advance_epoch();
        }
        // State after batch 2 (epoch 2):
        assert_eq!(s.get_at(&k(7), 2), Some(Value::Int(20)));
        // State after batch 5:
        assert_eq!(s.get_at(&k(7), 5), Some(Value::Int(50)));
    }

    #[test]
    fn snapshot_view_is_stable_and_readonly() {
        let s = EpochStore::new();
        s.populate(vec![(k(1), Value::Int(1))]);
        let snap_epoch = s.snapshot_epoch();
        s.put(&k(1), Value::Int(2));
        let mut view = s.snapshot(snap_epoch);
        assert_eq!(TxStore::get(&mut view, &k(1)), Some(Value::Int(1)));
        assert_eq!(view.epoch(), snap_epoch);
    }

    #[test]
    #[should_panic(expected = "read-only snapshot")]
    fn snapshot_write_panics() {
        let s = EpochStore::new();
        let mut view = s.snapshot(0);
        view.put(&k(1), Value::Int(1));
    }

    #[test]
    fn live_view_reads_writes() {
        let s = EpochStore::new();
        let mut v = s.live();
        v.put(&k(3), Value::Int(9));
        assert_eq!(v.get(&k(3)), Some(Value::Int(9)));
    }

    #[test]
    fn digest_is_order_independent_and_content_sensitive() {
        let a = EpochStore::with_shards(4);
        a.populate(vec![(k(1), Value::Int(1)), (k(2), Value::Int(2))]);
        let b = EpochStore::with_shards(16);
        b.populate(vec![(k(2), Value::Int(2)), (k(1), Value::Int(1))]);
        assert_eq!(a.state_digest(), b.state_digest());
        b.put(&k(2), Value::Int(3));
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn digest_distinguishes_key_value_swap() {
        let a = EpochStore::new();
        a.populate(vec![(k(1), Value::Int(2)), (k(2), Value::Int(1))]);
        let b = EpochStore::new();
        b.populate(vec![(k(1), Value::Int(1)), (k(2), Value::Int(2))]);
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn gc_shrinks_versions() {
        let s = EpochStore::new();
        s.populate(vec![(k(1), Value::Int(0))]);
        for i in 1..10 {
            s.put(&k(1), Value::Int(i));
            s.advance_epoch();
        }
        assert_eq!(s.version_count(), 10);
        s.gc_before(8);
        assert!(s.version_count() <= 3);
        assert_eq!(s.get_latest(&k(1)), Some(Value::Int(9)));
    }

    #[test]
    fn versioned_reads_report_provenance() {
        let s = EpochStore::new();
        assert_eq!(s.get_latest_versioned(&k(1)), (0, None));
        s.populate(vec![(k(1), Value::Int(0))]);
        assert_eq!(s.get_latest_versioned(&k(1)), (1, Some(Value::Int(0))));
        assert_eq!(s.put_versioned(&k(1), Value::Int(10)), 2);
        s.advance_epoch();
        assert_eq!(s.put_versioned(&k(1), Value::Int(20)), 3);
        assert_eq!(s.get_at_versioned(&k(1), 0), (1, Some(Value::Int(0))));
        assert_eq!(s.get_at_versioned(&k(1), 1), (2, Some(Value::Int(10))));
        assert_eq!(s.get_latest_versioned(&k(1)), (3, Some(Value::Int(20))));
        assert_eq!(s.get_at_versioned(&k(2), 99), (0, None));
    }

    #[test]
    fn lagging_shard_holds_back_the_gc_floor() {
        let wm = ShardWatermarks::new(4);
        assert_eq!(wm.shards(), 4);
        assert_eq!(wm.floor(), 0);
        for s in 0..4 {
            wm.report(s, 10);
        }
        assert_eq!(wm.floor(), 10);
        // Three shards race ahead; the floor stays at the laggard.
        for s in 0..3 {
            wm.report(s, 25);
        }
        assert_eq!(wm.floor(), 10, "shard 3 still reads epoch-10 history");
        wm.report(3, 25);
        assert_eq!(wm.floor(), 25);
        // Watermarks are monotonic: a stale (lower) report is ignored.
        wm.report(0, 5);
        assert_eq!(wm.floor(), 25);
    }

    #[test]
    fn watermark_floor_bounds_gc() {
        // GC driven by the watermark floor must leave every version a
        // lagging shard could still read.
        let s = EpochStore::new();
        s.populate(vec![(k(1), Value::Int(0))]);
        for e in 1..10i64 {
            s.put(&k(1), Value::Int(e));
            s.advance_epoch();
        }
        let wm = ShardWatermarks::new(2);
        wm.report(0, s.current_epoch());
        wm.report(1, 4); // shard 1 still prepares against epoch 4
        s.gc_before(wm.floor());
        assert_eq!(s.get_at(&k(1), 4), Some(Value::Int(4)), "laggard's snapshot survives");
        assert_eq!(s.get_latest(&k(1)), Some(Value::Int(9)));
    }

    #[test]
    fn concurrent_disjoint_writers() {
        use std::sync::Arc;
        let s = Arc::new(EpochStore::new());
        let mut handles = Vec::new();
        for t in 0..8i64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    s.put(&k(t * 1000 + i), Value::Int(i));
                }
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(s.key_count(), 800);
    }
}
