//! Per-key version chains.

use prognosticator_txir::Value;

/// The versions of one key, ordered by epoch (strictly increasing).
///
/// Epochs correspond to transaction batches: all writes of batch *e* are
/// tagged with epoch *e*, so "the state after batch *e*" is recovered by
/// [`VersionChain::get_at`]. This is what gives read-only transactions and
/// the *prepare indirect keys* phase a stable snapshot (paper §III-C), and
/// what lets the Calvin baseline read deliberately stale state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionChain {
    /// `(epoch, value)` pairs, ascending by epoch.
    versions: Vec<(u64, Value)>,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a chain with a single initial version.
    pub fn with_initial(epoch: u64, value: Value) -> Self {
        VersionChain { versions: vec![(epoch, value)] }
    }

    /// The latest value, if any.
    pub fn latest(&self) -> Option<&Value> {
        self.versions.last().map(|(_, v)| v)
    }

    /// The epoch of the latest version, if any.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.versions.last().map(|(e, _)| *e)
    }

    /// The newest value with version epoch ≤ `epoch`.
    pub fn get_at(&self, epoch: u64) -> Option<&Value> {
        match self.versions.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => Some(&self.versions[i].1),
            Err(0) => None,
            Err(i) => Some(&self.versions[i - 1].1),
        }
    }

    /// Writes `value` at `epoch`.
    ///
    /// Writing at the latest epoch replaces that version (last write in a
    /// batch wins); writing at a newer epoch appends.
    ///
    /// # Panics
    /// Panics if `epoch` is older than the latest version — batches only
    /// move forward.
    pub fn put(&mut self, epoch: u64, value: Value) {
        match self.versions.last_mut() {
            Some((e, v)) if *e == epoch => *v = value,
            Some((e, _)) => {
                assert!(*e < epoch, "write at epoch {epoch} older than latest {e}");
                self.versions.push((epoch, value));
            }
            None => self.versions.push((epoch, value)),
        }
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Drops all versions that are superseded at or before `epoch`,
    /// keeping the newest version ≤ `epoch` (still needed for snapshot
    /// reads at `epoch`) and everything newer. Returns the number of
    /// versions dropped (GC accounting).
    pub fn gc_before(&mut self, epoch: u64) -> usize {
        let keep_from = match self.versions.iter().rposition(|(e, _)| *e <= epoch) {
            Some(i) => i,
            None => return 0,
        };
        if keep_from > 0 {
            self.versions.drain(..keep_from);
        }
        keep_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_see_epoch_boundaries() {
        let mut c = VersionChain::with_initial(0, Value::Int(10));
        c.put(2, Value::Int(20));
        c.put(5, Value::Int(50));
        assert_eq!(c.get_at(0), Some(&Value::Int(10)));
        assert_eq!(c.get_at(1), Some(&Value::Int(10)));
        assert_eq!(c.get_at(2), Some(&Value::Int(20)));
        assert_eq!(c.get_at(4), Some(&Value::Int(20)));
        assert_eq!(c.get_at(5), Some(&Value::Int(50)));
        assert_eq!(c.get_at(99), Some(&Value::Int(50)));
        assert_eq!(c.latest(), Some(&Value::Int(50)));
        assert_eq!(c.latest_epoch(), Some(5));
    }

    #[test]
    fn empty_chain_reads_none() {
        let c = VersionChain::new();
        assert_eq!(c.get_at(0), None);
        assert_eq!(c.latest(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn missing_before_first_version() {
        let c = VersionChain::with_initial(3, Value::Int(1));
        assert_eq!(c.get_at(2), None);
        assert_eq!(c.get_at(3), Some(&Value::Int(1)));
    }

    #[test]
    fn same_epoch_overwrites() {
        let mut c = VersionChain::new();
        c.put(1, Value::Int(1));
        c.put(1, Value::Int(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.latest(), Some(&Value::Int(2)));
    }

    #[test]
    #[should_panic(expected = "older than latest")]
    fn backwards_write_panics() {
        let mut c = VersionChain::new();
        c.put(5, Value::Int(1));
        c.put(3, Value::Int(2));
    }

    #[test]
    fn gc_keeps_snapshot_visible_version() {
        let mut c = VersionChain::new();
        c.put(0, Value::Int(0));
        c.put(1, Value::Int(1));
        c.put(2, Value::Int(2));
        c.put(5, Value::Int(5));
        c.gc_before(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_at(2), Some(&Value::Int(2)));
        assert_eq!(c.get_at(3), Some(&Value::Int(2)));
        assert_eq!(c.get_at(5), Some(&Value::Int(5)));
        // Versions strictly before the kept one are gone: reads at older
        // epochs now miss (GC callers must not need those snapshots).
        assert_eq!(c.get_at(1), None);
    }
}
