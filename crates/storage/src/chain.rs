//! Per-key version chains.

use prognosticator_txir::Value;

/// The versions of one key, ordered by epoch (strictly increasing).
///
/// Epochs correspond to transaction batches: all writes of batch *e* are
/// tagged with epoch *e*, so "the state after batch *e*" is recovered by
/// [`VersionChain::get_at`]. This is what gives read-only transactions and
/// the *prepare indirect keys* phase a stable snapshot (paper §III-C), and
/// what lets the Calvin baseline read deliberately stale state.
///
/// Each installed write additionally carries a per-key **version number**
/// (`ver`, monotone from 1): the provenance coordinate the isolation
/// checker uses to reconstruct WR/WW/RW dependencies from flight-recorder
/// traces. Version numbers are replay-stable — within a batch the same-key
/// write order is the lock-queue order, which is deterministic regardless
/// of worker count or ready policy — and survive GC (the counter never
/// resets). `ver == 0` is reserved for "the initial/absent version"
/// observed by reads that found no value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VersionChain {
    /// `(epoch, ver, value)` triples, ascending by epoch (and by ver).
    versions: Vec<(u64, u64, Value)>,
    /// Next version number to assign (monotone; survives GC).
    next_ver: u64,
}

impl VersionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a chain with a single initial version (ver 1).
    pub fn with_initial(epoch: u64, value: Value) -> Self {
        VersionChain { versions: vec![(epoch, 1, value)], next_ver: 2 }
    }

    /// The latest value, if any.
    pub fn latest(&self) -> Option<&Value> {
        self.versions.last().map(|(_, _, v)| v)
    }

    /// The latest value with its version number, if any.
    pub fn latest_versioned(&self) -> Option<(u64, &Value)> {
        self.versions.last().map(|(_, ver, v)| (*ver, v))
    }

    /// The epoch of the latest version, if any.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.versions.last().map(|(e, _, _)| *e)
    }

    /// The newest value with version epoch ≤ `epoch`.
    pub fn get_at(&self, epoch: u64) -> Option<&Value> {
        self.get_at_versioned(epoch).map(|(_, v)| v)
    }

    /// The newest value with version epoch ≤ `epoch`, plus its version
    /// number.
    pub fn get_at_versioned(&self, epoch: u64) -> Option<(u64, &Value)> {
        match self.versions.binary_search_by_key(&epoch, |(e, _, _)| *e) {
            Ok(i) => Some((self.versions[i].1, &self.versions[i].2)),
            Err(0) => None,
            Err(i) => Some((self.versions[i - 1].1, &self.versions[i - 1].2)),
        }
    }

    /// Writes `value` at `epoch`, returning the installed version number.
    ///
    /// Writing at the latest epoch replaces that version (last write in a
    /// batch wins) but still consumes a fresh version number — the
    /// intra-batch intermediate is a distinct write for dependency
    /// tracking even though only the final value survives the epoch.
    /// Writing at a newer epoch appends.
    ///
    /// # Panics
    /// Panics if `epoch` is older than the latest version — batches only
    /// move forward.
    pub fn put(&mut self, epoch: u64, value: Value) -> u64 {
        if self.next_ver == 0 {
            self.next_ver = 1;
        }
        let ver = self.next_ver;
        self.next_ver += 1;
        match self.versions.last_mut() {
            Some((e, last_ver, v)) if *e == epoch => {
                *last_ver = ver;
                *v = value;
            }
            Some((e, _, _)) => {
                assert!(*e < epoch, "write at epoch {epoch} older than latest {e}");
                self.versions.push((epoch, ver, value));
            }
            None => self.versions.push((epoch, ver, value)),
        }
        ver
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the chain has no versions.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Drops all versions that are superseded at or before `epoch`,
    /// keeping the newest version ≤ `epoch` (still needed for snapshot
    /// reads at `epoch`) and everything newer. Returns the number of
    /// versions dropped (GC accounting). Version numbers of surviving
    /// entries — and the allocation counter — are unchanged.
    pub fn gc_before(&mut self, epoch: u64) -> usize {
        let keep_from = match self.versions.iter().rposition(|(e, _, _)| *e <= epoch) {
            Some(i) => i,
            None => return 0,
        };
        if keep_from > 0 {
            self.versions.drain(..keep_from);
        }
        keep_from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_see_epoch_boundaries() {
        let mut c = VersionChain::with_initial(0, Value::Int(10));
        c.put(2, Value::Int(20));
        c.put(5, Value::Int(50));
        assert_eq!(c.get_at(0), Some(&Value::Int(10)));
        assert_eq!(c.get_at(1), Some(&Value::Int(10)));
        assert_eq!(c.get_at(2), Some(&Value::Int(20)));
        assert_eq!(c.get_at(4), Some(&Value::Int(20)));
        assert_eq!(c.get_at(5), Some(&Value::Int(50)));
        assert_eq!(c.get_at(99), Some(&Value::Int(50)));
        assert_eq!(c.latest(), Some(&Value::Int(50)));
        assert_eq!(c.latest_epoch(), Some(5));
    }

    #[test]
    fn empty_chain_reads_none() {
        let c = VersionChain::new();
        assert_eq!(c.get_at(0), None);
        assert_eq!(c.latest(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn missing_before_first_version() {
        let c = VersionChain::with_initial(3, Value::Int(1));
        assert_eq!(c.get_at(2), None);
        assert_eq!(c.get_at(3), Some(&Value::Int(1)));
    }

    #[test]
    fn same_epoch_overwrites() {
        let mut c = VersionChain::new();
        c.put(1, Value::Int(1));
        c.put(1, Value::Int(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.latest(), Some(&Value::Int(2)));
    }

    #[test]
    #[should_panic(expected = "older than latest")]
    fn backwards_write_panics() {
        let mut c = VersionChain::new();
        c.put(5, Value::Int(1));
        c.put(3, Value::Int(2));
    }

    #[test]
    fn gc_keeps_snapshot_visible_version() {
        let mut c = VersionChain::new();
        c.put(0, Value::Int(0));
        c.put(1, Value::Int(1));
        c.put(2, Value::Int(2));
        c.put(5, Value::Int(5));
        c.gc_before(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_at(2), Some(&Value::Int(2)));
        assert_eq!(c.get_at(3), Some(&Value::Int(2)));
        assert_eq!(c.get_at(5), Some(&Value::Int(5)));
        // Versions strictly before the kept one are gone: reads at older
        // epochs now miss (GC callers must not need those snapshots).
        assert_eq!(c.get_at(1), None);
    }

    #[test]
    fn version_numbers_are_monotone_and_returned() {
        let mut c = VersionChain::with_initial(0, Value::Int(0));
        assert_eq!(c.latest_versioned(), Some((1, &Value::Int(0))));
        assert_eq!(c.put(1, Value::Int(10)), 2);
        assert_eq!(c.put(2, Value::Int(20)), 3);
        assert_eq!(c.get_at_versioned(0), Some((1, &Value::Int(0))));
        assert_eq!(c.get_at_versioned(1), Some((2, &Value::Int(10))));
        assert_eq!(c.get_at_versioned(5), Some((3, &Value::Int(20))));
    }

    #[test]
    fn same_epoch_overwrite_consumes_a_version() {
        let mut c = VersionChain::new();
        assert_eq!(c.put(1, Value::Int(1)), 1);
        assert_eq!(c.put(1, Value::Int(2)), 2);
        // Only the final intra-epoch value survives, carrying the newest
        // version number.
        assert_eq!(c.latest_versioned(), Some((2, &Value::Int(2))));
        assert_eq!(c.put(2, Value::Int(3)), 3);
    }

    #[test]
    fn gc_preserves_version_numbers() {
        let mut c = VersionChain::new();
        for e in 0..6 {
            c.put(e, Value::Int(e as i64));
        }
        c.gc_before(3);
        // Surviving entries keep their pre-GC version numbers and the
        // counter keeps climbing.
        assert_eq!(c.get_at_versioned(3), Some((4, &Value::Int(3))));
        assert_eq!(c.put(9, Value::Int(9)), 7);
    }
}
