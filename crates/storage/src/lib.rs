#![warn(missing_docs)]
//! Epoch-versioned key-value storage for the deterministic runtime.
//!
//! The paper deploys Prognosticator on RocksDB; this crate provides the
//! equivalent substrate as a sharded in-memory multi-version store (see
//! `DESIGN.md` for the substitution argument). The central type is
//! [`EpochStore`]; epochs correspond to transaction batches.
//!
//! ```
//! use prognosticator_storage::EpochStore;
//! use prognosticator_txir::{Key, TableId, Value};
//!
//! let store = EpochStore::new();
//! let key = Key::of_ints(TableId(0), &[42]);
//! store.populate(vec![(key.clone(), Value::Int(0))]);
//!
//! store.put(&key, Value::Int(1)); // batch 1 writes
//! assert_eq!(store.get_at(&key, store.snapshot_epoch()), Some(Value::Int(0)));
//! assert_eq!(store.get_latest(&key), Some(Value::Int(1)));
//! store.advance_epoch(); // commit batch 1
//! assert_eq!(store.get_at(&key, store.snapshot_epoch()), Some(Value::Int(1)));
//! ```

pub mod chain;
pub mod hash;
pub mod latency;
pub mod store;

pub use chain::VersionChain;
pub use hash::StableHasher;
pub use latency::{AtomicLatency, LatencyConfig};
pub use store::{EpochStore, LiveView, ShardWatermarks, SnapshotView, DEFAULT_SHARDS};
