//! Artificial access-latency injection.
//!
//! The paper's store is RocksDB behind a Java API; access latency is what
//! makes the *prepare indirect keys* phase a bottleneck and motivates the
//! worker-helps-queuer optimization (§III-C, §IV-C). The in-memory store is
//! far faster, so experiments can inject a configurable per-access delay to
//! recreate that regime. Delays are busy-wait spins: `thread::sleep` cannot
//! express sub-microsecond latencies accurately.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-access latency to inject. Zero (the default) disables injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Added to every read.
    pub read: Duration,
    /// Added to every write.
    pub write: Duration,
}

impl LatencyConfig {
    /// No injected latency.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same latency for reads and writes.
    pub fn symmetric(latency: Duration) -> Self {
        LatencyConfig { read: latency, write: latency }
    }

    /// Spins for the read latency (no-op when zero).
    pub fn charge_read(&self) {
        spin_for(self.read);
    }

    /// Spins for the write latency (no-op when zero).
    pub fn charge_write(&self) {
        spin_for(self.write);
    }
}

/// Interior-mutable latency configuration.
///
/// The fault-injection harness raises and lowers store latency while
/// worker threads are mid-batch ("storage latency spikes"), so the store
/// holds its latency behind atomics instead of a plain [`LatencyConfig`].
/// Spikes perturb timing only — reads and writes still return the same
/// values — so determinism across replicas is unaffected.
#[derive(Debug, Default)]
pub struct AtomicLatency {
    read_ns: AtomicU64,
    write_ns: AtomicU64,
}

impl AtomicLatency {
    /// Starts at `config`.
    pub fn new(config: LatencyConfig) -> Self {
        let l = AtomicLatency::default();
        l.set(config);
        l
    }

    /// The current configuration.
    pub fn get(&self) -> LatencyConfig {
        LatencyConfig {
            read: Duration::from_nanos(self.read_ns.load(Ordering::Acquire)),
            write: Duration::from_nanos(self.write_ns.load(Ordering::Acquire)),
        }
    }

    /// Replaces the configuration; concurrent accessors observe it on
    /// their next charge.
    pub fn set(&self, config: LatencyConfig) {
        self.read_ns.store(config.read.as_nanos() as u64, Ordering::Release);
        self.write_ns.store(config.write.as_nanos() as u64, Ordering::Release);
    }

    /// Spins for the current read latency (no-op when zero).
    pub fn charge_read(&self) {
        spin_for(Duration::from_nanos(self.read_ns.load(Ordering::Acquire)));
    }

    /// Spins for the current write latency (no-op when zero).
    pub fn charge_write(&self) {
        spin_for(Duration::from_nanos(self.write_ns.load(Ordering::Acquire)));
    }
}

#[inline]
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_free() {
        let c = LatencyConfig::none();
        let t = Instant::now();
        for _ in 0..10_000 {
            c.charge_read();
            c.charge_write();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn nonzero_latency_spins() {
        let c = LatencyConfig::symmetric(Duration::from_micros(200));
        let t = Instant::now();
        c.charge_read();
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn symmetric_sets_both() {
        let c = LatencyConfig::symmetric(Duration::from_micros(5));
        assert_eq!(c.read, c.write);
    }

    #[test]
    fn atomic_latency_swaps_config() {
        let l = AtomicLatency::new(LatencyConfig::none());
        assert_eq!(l.get(), LatencyConfig::none());
        let spike = LatencyConfig::symmetric(Duration::from_micros(200));
        l.set(spike);
        assert_eq!(l.get(), spike);
        let t = Instant::now();
        l.charge_read();
        assert!(t.elapsed() >= Duration::from_micros(200));
        l.set(LatencyConfig::none());
        let t = Instant::now();
        for _ in 0..10_000 {
            l.charge_write();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }
}
