//! Artificial access-latency injection.
//!
//! The paper's store is RocksDB behind a Java API; access latency is what
//! makes the *prepare indirect keys* phase a bottleneck and motivates the
//! worker-helps-queuer optimization (§III-C, §IV-C). The in-memory store is
//! far faster, so experiments can inject a configurable per-access delay to
//! recreate that regime. Delays are busy-wait spins: `thread::sleep` cannot
//! express sub-microsecond latencies accurately.

use std::time::{Duration, Instant};

/// Per-access latency to inject. Zero (the default) disables injection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Added to every read.
    pub read: Duration,
    /// Added to every write.
    pub write: Duration,
}

impl LatencyConfig {
    /// No injected latency.
    pub fn none() -> Self {
        Self::default()
    }

    /// The same latency for reads and writes.
    pub fn symmetric(latency: Duration) -> Self {
        LatencyConfig { read: latency, write: latency }
    }

    /// Spins for the read latency (no-op when zero).
    pub fn charge_read(&self) {
        spin_for(self.read);
    }

    /// Spins for the write latency (no-op when zero).
    pub fn charge_write(&self) {
        spin_for(self.write);
    }
}

#[inline]
fn spin_for(d: Duration) {
    if d.is_zero() {
        return;
    }
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_free() {
        let c = LatencyConfig::none();
        let t = Instant::now();
        for _ in 0..10_000 {
            c.charge_read();
            c.charge_write();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn nonzero_latency_spins() {
        let c = LatencyConfig::symmetric(Duration::from_micros(200));
        let t = Instant::now();
        c.charge_read();
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn symmetric_sets_both() {
        let c = LatencyConfig::symmetric(Duration::from_micros(5));
        assert_eq!(c.read, c.write);
    }
}
