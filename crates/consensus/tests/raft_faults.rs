//! Consensus-layer fault tests: a leader crash (emulated by isolating it
//! on the simulated network) followed by a restart (reconnection), and a
//! link partition followed by a heal, must never lose or re-order batches
//! that were already committed — the log-prefix guarantee the
//! deterministic replicas above this layer depend on.

use prognosticator_consensus::{NetConfig, RaftCluster, RaftTiming};
use std::time::{Duration, Instant};

fn cluster(n: usize, seed: u64) -> RaftCluster<u64> {
    RaftCluster::new(n, NetConfig::default(), RaftTiming::default(), seed)
}

/// Polls until some node other than `not` claims leadership.
fn wait_for_other_leader(c: &RaftCluster<u64>, not: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Some(l) = c.current_leaders().into_iter().find(|&l| l != not) {
            return l;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no replacement leader elected within {timeout:?}");
}

fn payloads(c: &RaftCluster<u64>, node: usize) -> Vec<u64> {
    c.committed(node).iter().map(|e| e.payload).collect()
}

#[test]
fn leader_crash_restart_preserves_committed_prefix() {
    let c = cluster(5, 0xFA17);
    let first = c.wait_for_leader(Duration::from_secs(10)).expect("initial leader");
    for i in 0..3u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }

    // "Crash" the leader: cut it off mid-stream. The survivors must elect
    // a replacement and keep committing — with the committed prefix
    // untouched.
    c.net().isolate(first);
    let second = wait_for_other_leader(&c, first, Duration::from_secs(10));
    assert_ne!(second, first);
    for i in 3..6u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }

    // "Restart" the crashed leader: reconnect it. It must catch up to the
    // exact same log — no committed entry lost, none re-ordered, and its
    // own stale leadership claim abandoned.
    c.net().reconnect(first);
    assert!(
        c.wait_for_committed(first, 6, Duration::from_secs(10)),
        "restarted node catches up"
    );
    for node in 0..5 {
        assert!(c.wait_for_committed(node, 6, Duration::from_secs(10)), "node {node}");
        assert_eq!(
            payloads(&c, node),
            (0..6).collect::<Vec<_>>(),
            "node {node}: committed batches re-ordered or lost"
        );
    }
}

#[test]
fn partition_heal_preserves_committed_prefix() {
    let c = cluster(3, 0x9EA1);
    let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
    for i in 0..2u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }

    // Cut one link touching the leader. A 3-node cluster still has a
    // quorum path, so commits must continue through the partition.
    let other = (leader + 1) % 3;
    c.net().partition(leader, other);
    for i in 2..4u64 {
        assert!(
            c.propose_until_committed(i, Duration::from_secs(10)),
            "entry {i} commits through the partition"
        );
    }

    // Heal, commit one more, and require every node to hold the exact
    // same sequence.
    c.net().heal(leader, other);
    assert!(c.propose_until_committed(4, Duration::from_secs(10)));
    for node in 0..3 {
        assert!(c.wait_for_committed(node, 5, Duration::from_secs(10)), "node {node}");
        assert_eq!(
            payloads(&c, node),
            (0..5).collect::<Vec<_>>(),
            "node {node}: committed batches re-ordered or lost"
        );
    }
}

#[test]
fn repeated_crash_restart_cycles_never_lose_commits() {
    let c = cluster(5, 0xC1C1);
    c.wait_for_leader(Duration::from_secs(10)).expect("leader");
    let mut next = 0u64;
    for _cycle in 0..3 {
        // Commit a couple of entries, then crash-and-restart whoever
        // leads now.
        for _ in 0..2 {
            assert!(c.propose_until_committed(next, Duration::from_secs(10)), "entry {next}");
            next += 1;
        }
        if let Some(leader) = c.leader() {
            c.net().isolate(leader);
            let _ = wait_for_other_leader(&c, leader, Duration::from_secs(10));
            c.net().reconnect(leader);
        }
    }
    for node in 0..5 {
        assert!(
            c.wait_for_committed(node, next as usize, Duration::from_secs(10)),
            "node {node} catches up"
        );
        assert_eq!(
            payloads(&c, node),
            (0..next).collect::<Vec<_>>(),
            "node {node}: committed batches re-ordered or lost"
        );
    }
}
