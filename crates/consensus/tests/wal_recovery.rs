//! Durability tests: real node crashes (thread killed, volatile state
//! lost) followed by restarts from the durable [`LogStore`], snapshot
//! catch-up for followers left behind the compaction horizon, and
//! full-cluster recovery from on-disk WAL files.

use prognosticator_consensus::{
    LogStore, NetConfig, RaftCluster, RaftTiming, U64Codec, WalStore,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn cluster(n: usize, seed: u64) -> RaftCluster<u64> {
    RaftCluster::new(n, NetConfig::default(), RaftTiming::default(), seed)
}

fn payloads(c: &RaftCluster<u64>, node: usize) -> Vec<u64> {
    c.committed(node).iter().map(|e| e.payload).collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/tmp/wal-recovery")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls until some node other than `not` claims leadership.
fn wait_for_other_leader(c: &RaftCluster<u64>, not: usize, timeout: Duration) -> usize {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Some(l) = c.current_leaders().into_iter().find(|&l| l != not) {
            return l;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("no replacement leader elected within {timeout:?}");
}

#[test]
fn crashed_follower_restarts_from_store_and_catches_up() {
    let mut c = cluster(3, 0xD15C);
    let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
    for i in 0..4u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }
    let follower = (leader + 1) % 3;
    assert!(c.wait_for_committed(follower, 4, Duration::from_secs(10)));

    // Kill the follower outright: its thread exits and every volatile
    // structure is dropped. Only the LogStore in its seat survives.
    c.crash(follower);
    assert!(!c.is_running(follower));
    for i in 4..8u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }

    // Restart from the durable store: term/vote/log recovered, then the
    // leader brings it up to date.
    c.restart(follower);
    assert!(c.is_running(follower));
    assert!(
        c.wait_for_committed(follower, 8, Duration::from_secs(10)),
        "restarted follower catches up"
    );
    assert_eq!(payloads(&c, follower), (0..8).collect::<Vec<_>>());
}

#[test]
fn crashed_leader_restart_preserves_election_safety() {
    let mut c = cluster(3, 0x1EAD);
    let mut next = 0u64;
    for _cycle in 0..3 {
        let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
        for _ in 0..2 {
            assert!(c.propose_until_committed(next, Duration::from_secs(10)), "entry {next}");
            next += 1;
        }
        // Hard-kill the leader and bring it back. Because its term and
        // vote are durable, the restarted incarnation can never grant a
        // second vote in a term it already voted in.
        c.crash(leader);
        let _ = wait_for_other_leader(&c, leader, Duration::from_secs(10));
        c.restart(leader);
    }
    for node in 0..3 {
        assert!(
            c.wait_for_committed(node, next as usize, Duration::from_secs(15)),
            "node {node} catches up"
        );
        assert_eq!(payloads(&c, node), (0..next).collect::<Vec<_>>(), "node {node}");
    }
    // Election Safety across incarnations: at most one leader per term,
    // spanning every crash/restart cycle.
    let mut claims = c.leadership_claims();
    claims.sort_by_key(|&(_, term)| term);
    for pair in claims.windows(2) {
        if pair[0].1 == pair[1].1 {
            assert_eq!(pair[0].0, pair[1].0, "two leaders in term {}", pair[0].1);
        }
    }
    assert!(!claims.is_empty());
}

#[test]
fn follower_beyond_compaction_horizon_rejoins_via_snapshot_install() {
    let c = cluster(3, 0x5A4B);
    let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
    for i in 0..5u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }
    let follower = (leader + 1) % 3;
    assert!(c.wait_for_committed(follower, 5, Duration::from_secs(10)));

    // Partition the follower, then commit well past it and compact the
    // leader's log beyond everything the follower has seen.
    c.net().isolate(follower);
    for i in 5..25u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }
    c.compact_before(c.max_commit_index());
    // Wait until the leader has actually compacted (its store reports a
    // snapshot) so the heal cannot be served by plain log replay.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if c.durability_stats().store.snapshots_written > 0 {
            break;
        }
        assert!(Instant::now() < deadline, "leader never compacted");
        std::thread::sleep(Duration::from_millis(10));
    }

    let installs_before = c.node_view(follower).snapshot_installs.load(std::sync::atomic::Ordering::Acquire);
    c.net().reconnect(follower);
    assert!(
        c.wait_for_committed(follower, 25, Duration::from_secs(10)),
        "partitioned follower converges after heal"
    );
    // It must have converged via InstallSnapshot, not log replay: the
    // entries it needed were compacted away on the leader.
    let installs_after = c.node_view(follower).snapshot_installs.load(std::sync::atomic::Ordering::Acquire);
    assert!(
        installs_after > installs_before,
        "expected a snapshot install, got none ({installs_before} -> {installs_after})"
    );
    // Byte-identical committed prefix (same payloads, ids, terms).
    let lead_log = c.committed(leader);
    let foll_log = c.committed(follower);
    assert_eq!(foll_log[..lead_log.len().min(foll_log.len())], lead_log[..lead_log.len().min(foll_log.len())]);
    assert_eq!(payloads(&c, follower), (0..25).collect::<Vec<_>>());
}

#[test]
fn whole_cluster_recovers_from_on_disk_wal() {
    let dirs: Vec<PathBuf> = (0..3).map(|i| tmpdir(&format!("cluster-node{i}"))).collect();
    let open_stores = |dirs: &[PathBuf]| -> Vec<Box<dyn LogStore<u64>>> {
        dirs.iter()
            .map(|d| Box::new(WalStore::open(d, U64Codec).expect("open wal")) as Box<dyn LogStore<u64>>)
            .collect()
    };

    // First incarnation: commit a prefix, then take the whole cluster
    // down (every thread joined, every volatile structure dropped).
    {
        let mut c = RaftCluster::with_log_stores(
            3,
            NetConfig::default(),
            RaftTiming::default(),
            0xA15EED,
            Vec::new(),
            open_stores(&dirs),
        );
        c.wait_for_leader(Duration::from_secs(10)).expect("leader");
        for i in 0..6u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
        }
        for node in 0..3 {
            assert!(c.wait_for_committed(node, 6, Duration::from_secs(10)));
        }
        assert!(c.durability_stats().store.wal_fsyncs > 0, "writes must hit the disk");
        c.shutdown();
    }

    // Second incarnation: reopen the same directories. The committed
    // prefix must be recovered from disk and the cluster must resume.
    let mut c = RaftCluster::with_log_stores(
        3,
        NetConfig::default(),
        RaftTiming::default(),
        0xA15EED,
        Vec::new(),
        open_stores(&dirs),
    );
    c.wait_for_leader(Duration::from_secs(10)).expect("re-elects from recovered state");
    for i in 6..9u64 {
        assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
    }
    for node in 0..3 {
        assert!(c.wait_for_committed(node, 9, Duration::from_secs(10)), "node {node}");
        assert_eq!(
            payloads(&c, node),
            (0..9).collect::<Vec<_>>(),
            "node {node}: recovered prefix + new entries"
        );
    }
    c.shutdown();
}
