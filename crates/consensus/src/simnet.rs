//! A simulated in-process network with configurable delay, loss and
//! partitions.
//!
//! Messages are timestamped with a delivery deadline and dispatched by a
//! single pumping thread, so tests can inject latency and drops
//! deterministically (seeded RNG) without spawning per-message threads.

use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node address within a [`SimNet`].
pub type NodeId = usize;

/// Tunable fault model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Probability each message is dropped.
    pub drop_prob: f64,
    /// Minimum one-way delay.
    pub min_delay: Duration,
    /// Maximum one-way delay.
    pub max_delay: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            drop_prob: 0.0,
            min_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
        }
    }
}

struct Pending<M> {
    deliver_at: Instant,
    seq: u64,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Inner<M> {
    inboxes: RwLock<Vec<Sender<M>>>,
    config: RwLock<NetConfig>,
    /// Pairs `(a, b)` that cannot communicate (both directions).
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    queue: Mutex<BinaryHeap<Reverse<Pending<M>>>>,
    rng: Mutex<StdRng>,
    seq: Mutex<u64>,
    shutdown: std::sync::atomic::AtomicBool,
}

/// The simulated network. Clone handles freely; one pump thread delivers.
pub struct SimNet<M: Send + 'static> {
    inner: Arc<Inner<M>>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl<M: Send + 'static> SimNet<M> {
    /// Builds a network delivering into the given per-node inboxes.
    pub fn new(inboxes: Vec<Sender<M>>, config: NetConfig, seed: u64) -> Self {
        let inner = Arc::new(Inner {
            inboxes: RwLock::new(inboxes),
            config: RwLock::new(config),
            partitions: RwLock::new(HashSet::new()),
            queue: Mutex::new(BinaryHeap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            seq: Mutex::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let pump_inner = Arc::clone(&inner);
        let pump = std::thread::Builder::new()
            .name("simnet-pump".into())
            .spawn(move || pump_loop(&pump_inner))
            .expect("spawn simnet pump");
        SimNet { inner, pump: Some(pump) }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.inboxes.read().len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.inboxes.read().is_empty()
    }

    /// Replaces `node`'s inbox with a fresh channel — used when a node
    /// restarts after a crash. Messages already queued for the old inbox
    /// are silently dropped (the old receiver is gone), which is exactly
    /// the network's view of a rebooted machine.
    pub fn set_inbox(&self, node: NodeId, tx: Sender<M>) {
        self.inner.inboxes.write()[node] = tx;
    }

    /// Sends `msg` from `from` to `to`, subject to the fault model.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) {
        if self.inner.shutdown.load(std::sync::atomic::Ordering::Acquire) {
            return;
        }
        {
            let parts = self.inner.partitions.read();
            let key = (from.min(to), from.max(to));
            if parts.contains(&key) {
                return;
            }
        }
        let (drop_it, delay) = {
            let cfg = self.inner.config.read();
            let mut rng = self.inner.rng.lock();
            let drop_it = cfg.drop_prob > 0.0 && rng.gen_bool(cfg.drop_prob.min(1.0));
            let span = cfg.max_delay.saturating_sub(cfg.min_delay);
            let delay = cfg.min_delay
                + Duration::from_nanos(if span.is_zero() {
                    0
                } else {
                    rng.gen_range(0..span.as_nanos() as u64)
                });
            (drop_it, delay)
        };
        if drop_it {
            return;
        }
        let seq = {
            let mut s = self.inner.seq.lock();
            *s += 1;
            *s
        };
        self.inner.queue.lock().push(Reverse(Pending {
            deliver_at: Instant::now() + delay,
            seq,
            to,
            msg,
        }));
    }

    /// Updates the fault model.
    pub fn set_config(&self, config: NetConfig) {
        *self.inner.config.write() = config;
    }

    /// Cuts the link between `a` and `b` (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().insert((a.min(b), a.max(b)));
    }

    /// Heals the link between `a` and `b`.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.inner.partitions.write().remove(&(a.min(b), a.max(b)));
    }

    /// Isolates `node` from everyone.
    pub fn isolate(&self, node: NodeId) {
        for other in 0..self.len() {
            if other != node {
                self.partition(node, other);
            }
        }
    }

    /// Reconnects `node` to everyone.
    pub fn reconnect(&self, node: NodeId) {
        for other in 0..self.len() {
            if other != node {
                self.heal(node, other);
            }
        }
    }

    /// Stops the pump thread (also happens on drop).
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, std::sync::atomic::Ordering::Release);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> Drop for SimNet<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn pump_loop<M: Send>(inner: &Inner<M>) {
    while !inner.shutdown.load(std::sync::atomic::Ordering::Acquire) {
        let now = Instant::now();
        let mut due = Vec::new();
        {
            let mut q = inner.queue.lock();
            while let Some(Reverse(p)) = q.peek() {
                if p.deliver_at <= now {
                    let Reverse(p) = q.pop().expect("peeked");
                    due.push(p);
                } else {
                    break;
                }
            }
        }
        for p in due {
            let tx = inner.inboxes.read().get(p.to).cloned();
            if let Some(tx) = tx {
                let _ = tx.send(p.msg); // receiver may be gone: fine
            }
        }
        std::thread::sleep(Duration::from_micros(100));
    }
}

/// Drains everything currently available on `rx` without blocking.
pub fn drain<M>(rx: &Receiver<M>) -> Vec<M> {
    let mut out = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(m) => out.push(m),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn net(n: usize, config: NetConfig) -> (SimNet<u32>, Vec<Receiver<u32>>) {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        (SimNet::new(txs, config, 42), rxs)
    }

    fn recv_within(rx: &Receiver<u32>, d: Duration) -> Option<u32> {
        rx.recv_timeout(d).ok()
    }

    #[test]
    fn delivers_messages() {
        let (net, rxs) = net(2, NetConfig::default());
        net.send(0, 1, 7);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(7));
    }

    #[test]
    fn respects_partitions() {
        let (net, rxs) = net(2, NetConfig::default());
        net.partition(0, 1);
        net.send(0, 1, 7);
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None);
        net.heal(0, 1);
        net.send(0, 1, 8);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(8));
    }

    #[test]
    fn drops_with_probability_one() {
        let (net, rxs) = net(2, NetConfig { drop_prob: 1.0, ..NetConfig::default() });
        for i in 0..10 {
            net.send(0, 1, i);
        }
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None);
    }

    #[test]
    fn isolate_and_reconnect() {
        let (net, rxs) = net(3, NetConfig::default());
        net.isolate(2);
        net.send(0, 2, 1);
        net.send(1, 2, 2);
        assert_eq!(recv_within(&rxs[2], Duration::from_millis(100)), None);
        net.reconnect(2);
        net.send(0, 2, 3);
        assert_eq!(recv_within(&rxs[2], Duration::from_secs(1)), Some(3));
    }

    #[test]
    fn ordering_respects_delays() {
        // With a *fixed* delay (no jitter window), FIFO per deadline+seq
        // holds; jittered delays intentionally may reorder.
        let cfg = NetConfig {
            min_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(10),
            ..NetConfig::default()
        };
        let (net, rxs) = net(2, cfg);
        for i in 0..20 {
            net.send(0, 1, i);
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            got.push(recv_within(&rxs[1], Duration::from_secs(1)).expect("delivered"));
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }
}
