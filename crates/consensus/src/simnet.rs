//! A simulated in-process network with configurable delay, loss,
//! duplication, reordering and (possibly asymmetric) partitions.
//!
//! Messages are timestamped with a delivery deadline and dispatched by a
//! single pumping thread, so tests can inject latency and drops
//! deterministically (seeded RNG) without spawning per-message threads.
//! The pump parks on a condvar until the next delivery deadline (or a
//! `send`/`shutdown` signal), so an idle network burns no CPU.
//!
//! The fault model is layered:
//!
//! * a global [`NetConfig`] applies to every link;
//! * per-link overrides ([`SimNet::set_link_config`]) replace it for one
//!   directed `(from, to)` pair — e.g. to make just the leader's outbound
//!   links lossy;
//! * partitions are directed: [`SimNet::partition_one_way`] cuts a single
//!   direction (asymmetric split), while [`SimNet::partition`] cuts both.

use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Node address within a [`SimNet`].
pub type NodeId = usize;

/// Tunable fault model (global, or per directed link via
/// [`SimNet::set_link_config`]).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Probability each message is dropped.
    pub drop_prob: f64,
    /// Minimum one-way delay.
    pub min_delay: Duration,
    /// Maximum one-way delay.
    pub max_delay: Duration,
    /// Probability each message is delivered twice (the duplicate draws
    /// its own independent delay, so copies may arrive far apart).
    pub dup_prob: f64,
    /// Probability a message is deferred by an extra seeded delay drawn
    /// from `[0, reorder_window)`, letting later sends overtake it.
    pub reorder_prob: f64,
    /// Span of the extra reordering delay.
    pub reorder_window: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            drop_prob: 0.0,
            min_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
            dup_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: Duration::ZERO,
        }
    }
}

struct Pending<M> {
    deliver_at: Instant,
    seq: u64,
    to: NodeId,
    msg: M,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Pending<M> {}
impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Inner<M> {
    inboxes: RwLock<Vec<Sender<M>>>,
    config: RwLock<NetConfig>,
    /// Directed pairs `(from, to)` that cannot communicate. A symmetric
    /// partition inserts both directions.
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    /// Per-directed-link fault models overriding the global config.
    link_overrides: RwLock<HashMap<(NodeId, NodeId), NetConfig>>,
    queue: Mutex<BinaryHeap<Reverse<Pending<M>>>>,
    /// Signaled by `send` (new message, possibly with an earlier deadline
    /// than the pump is sleeping toward) and by `shutdown`.
    wakeup: Condvar,
    rng: Mutex<StdRng>,
    seq: Mutex<u64>,
    /// Times the pump went to sleep — a busy-poll regression guard: an
    /// idle network must park, not spin.
    pump_parks: std::sync::atomic::AtomicU64,
    shutdown: std::sync::atomic::AtomicBool,
}

/// Upper bound on one pump park. The condvar is signaled on every send
/// and on shutdown, so this only bounds how long a missed wakeup could
/// go unnoticed; it is not a polling interval.
const IDLE_PARK: Duration = Duration::from_millis(500);

/// The simulated network. Clone handles freely; one pump thread delivers.
pub struct SimNet<M: Send + 'static> {
    inner: Arc<Inner<M>>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl<M: Send + 'static> SimNet<M> {
    /// Builds a network delivering into the given per-node inboxes.
    pub fn new(inboxes: Vec<Sender<M>>, config: NetConfig, seed: u64) -> Self {
        let inner = Arc::new(Inner {
            inboxes: RwLock::new(inboxes),
            config: RwLock::new(config),
            partitions: RwLock::new(HashSet::new()),
            link_overrides: RwLock::new(HashMap::new()),
            queue: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            seq: Mutex::new(0),
            pump_parks: std::sync::atomic::AtomicU64::new(0),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let pump_inner = Arc::clone(&inner);
        let pump = std::thread::Builder::new()
            .name("simnet-pump".into())
            .spawn(move || pump_loop(&pump_inner))
            .expect("spawn simnet pump");
        SimNet { inner, pump: Some(pump) }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.inboxes.read().len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.inboxes.read().is_empty()
    }

    /// Replaces `node`'s inbox with a fresh channel — used when a node
    /// restarts after a crash. Messages already queued for the old inbox
    /// are silently dropped (the old receiver is gone), which is exactly
    /// the network's view of a rebooted machine.
    pub fn set_inbox(&self, node: NodeId, tx: Sender<M>) {
        self.inner.inboxes.write()[node] = tx;
    }

    /// Sends `msg` from `from` to `to`, subject to the fault model: the
    /// per-link override for `(from, to)` if one is set, else the global
    /// config. The message may be dropped, delayed, deferred past later
    /// sends (reordering), or delivered twice (duplication).
    pub fn send(&self, from: NodeId, to: NodeId, msg: M)
    where
        M: Clone,
    {
        if self.inner.shutdown.load(std::sync::atomic::Ordering::Acquire) {
            return;
        }
        if self.inner.partitions.read().contains(&(from, to)) {
            return;
        }
        let cfg = {
            let overrides = self.inner.link_overrides.read();
            match overrides.get(&(from, to)) {
                Some(link) => link.clone(),
                None => self.inner.config.read().clone(),
            }
        };
        let (drop_it, delay, dup_delay) = {
            let mut rng = self.inner.rng.lock();
            let drop_it = cfg.drop_prob > 0.0 && rng.gen_bool(cfg.drop_prob.min(1.0));
            let draw_delay = |rng: &mut StdRng| {
                let span = cfg.max_delay.saturating_sub(cfg.min_delay);
                let mut delay = cfg.min_delay
                    + Duration::from_nanos(if span.is_zero() {
                        0
                    } else {
                        rng.gen_range(0..span.as_nanos() as u64)
                    });
                if cfg.reorder_prob > 0.0
                    && !cfg.reorder_window.is_zero()
                    && rng.gen_bool(cfg.reorder_prob.min(1.0))
                {
                    delay += Duration::from_nanos(
                        rng.gen_range(0..cfg.reorder_window.as_nanos() as u64),
                    );
                }
                delay
            };
            let delay = draw_delay(&mut rng);
            let dup_delay = if cfg.dup_prob > 0.0 && rng.gen_bool(cfg.dup_prob.min(1.0)) {
                Some(draw_delay(&mut rng))
            } else {
                None
            };
            (drop_it, delay, dup_delay)
        };
        if drop_it {
            return;
        }
        let now = Instant::now();
        {
            let mut q = self.inner.queue.lock();
            let push = |q: &mut BinaryHeap<Reverse<Pending<M>>>, d: Duration, m: M| {
                let seq = {
                    let mut s = self.inner.seq.lock();
                    *s += 1;
                    *s
                };
                q.push(Reverse(Pending { deliver_at: now + d, seq, to, msg: m }));
            };
            if let Some(d) = dup_delay {
                push(&mut q, d, msg.clone());
            }
            push(&mut q, delay, msg);
        }
        // The new message may be due sooner than the pump's current park
        // deadline; wake it to recompute.
        self.inner.wakeup.notify_one();
    }

    /// Updates the global fault model (per-link overrides keep priority).
    pub fn set_config(&self, config: NetConfig) {
        *self.inner.config.write() = config;
    }

    /// The current global fault model (e.g. to snapshot before a
    /// transient disruption and restore afterwards).
    pub fn config(&self) -> NetConfig {
        self.inner.config.read().clone()
    }

    /// Overrides the fault model for the directed link `from → to` only.
    /// The reverse direction keeps its own override or the global config.
    pub fn set_link_config(&self, from: NodeId, to: NodeId, config: NetConfig) {
        self.inner.link_overrides.write().insert((from, to), config);
    }

    /// Removes the override for the directed link `from → to`.
    pub fn clear_link_config(&self, from: NodeId, to: NodeId) {
        self.inner.link_overrides.write().remove(&(from, to));
    }

    /// Removes every per-link override.
    pub fn clear_link_overrides(&self) {
        self.inner.link_overrides.write().clear();
    }

    /// Cuts only the `from → to` direction: `from`'s messages to `to` are
    /// discarded while `to` can still reach `from` — an asymmetric
    /// partition (e.g. a one-way firewall rule or NIC failure).
    pub fn partition_one_way(&self, from: NodeId, to: NodeId) {
        self.inner.partitions.write().insert((from, to));
    }

    /// Heals only the `from → to` direction.
    pub fn heal_one_way(&self, from: NodeId, to: NodeId) {
        self.inner.partitions.write().remove(&(from, to));
    }

    /// Cuts the link between `a` and `b` (both directions).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut parts = self.inner.partitions.write();
        parts.insert((a, b));
        parts.insert((b, a));
    }

    /// Heals the link between `a` and `b` (both directions).
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut parts = self.inner.partitions.write();
        parts.remove(&(a, b));
        parts.remove(&(b, a));
    }

    /// Heals every partition, in both directions.
    pub fn heal_all(&self) {
        self.inner.partitions.write().clear();
    }

    /// Isolates `node` from everyone (both directions).
    pub fn isolate(&self, node: NodeId) {
        for other in 0..self.len() {
            if other != node {
                self.partition(node, other);
            }
        }
    }

    /// Reconnects `node` to everyone (both directions).
    pub fn reconnect(&self, node: NodeId) {
        for other in 0..self.len() {
            if other != node {
                self.heal(node, other);
            }
        }
    }

    /// Times the pump thread has parked so far. Diagnostics only: an idle
    /// network parks once and stays parked, while a regression to busy
    /// polling shows up as thousands of iterations per second.
    pub fn pump_parks(&self) -> u64 {
        self.inner.pump_parks.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Stops the pump thread (also happens on drop).
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, std::sync::atomic::Ordering::Release);
        self.inner.wakeup.notify_all();
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

impl<M: Send + 'static> Drop for SimNet<M> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn pump_loop<M: Send>(inner: &Inner<M>) {
    let mut due = Vec::new();
    loop {
        {
            let mut q = inner.queue.lock();
            loop {
                if inner.shutdown.load(std::sync::atomic::Ordering::Acquire) {
                    return;
                }
                let now = Instant::now();
                while let Some(Reverse(p)) = q.peek() {
                    if p.deliver_at <= now {
                        let Reverse(p) = q.pop().expect("peeked");
                        due.push(p);
                    } else {
                        break;
                    }
                }
                if !due.is_empty() {
                    break;
                }
                // Nothing deliverable: park until the earliest deadline,
                // or until send/shutdown signals the condvar.
                let wait = q
                    .peek()
                    .map_or(IDLE_PARK, |Reverse(p)| p.deliver_at.saturating_duration_since(now))
                    .min(IDLE_PARK);
                inner.pump_parks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                inner.wakeup.wait_for(&mut q, wait);
            }
        }
        for p in due.drain(..) {
            let tx = inner.inboxes.read().get(p.to).cloned();
            if let Some(tx) = tx {
                let _ = tx.send(p.msg); // receiver may be gone: fine
            }
        }
    }
}

/// Drains everything currently available on `rx` without blocking.
pub fn drain<M>(rx: &Receiver<M>) -> Vec<M> {
    let mut out = Vec::new();
    loop {
        match rx.try_recv() {
            Ok(m) => out.push(m),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn net(n: usize, config: NetConfig) -> (SimNet<u32>, Vec<Receiver<u32>>) {
        let mut txs = Vec::new();
        let mut rxs = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel();
            txs.push(tx);
            rxs.push(rx);
        }
        (SimNet::new(txs, config, 42), rxs)
    }

    fn recv_within(rx: &Receiver<u32>, d: Duration) -> Option<u32> {
        rx.recv_timeout(d).ok()
    }

    #[test]
    fn delivers_messages() {
        let (net, rxs) = net(2, NetConfig::default());
        net.send(0, 1, 7);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(7));
    }

    #[test]
    fn respects_partitions() {
        let (net, rxs) = net(2, NetConfig::default());
        net.partition(0, 1);
        net.send(0, 1, 7);
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None);
        net.heal(0, 1);
        net.send(0, 1, 8);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(8));
    }

    #[test]
    fn one_way_partition_blocks_a_single_direction() {
        let (net, rxs) = net(2, NetConfig::default());
        net.partition_one_way(0, 1);
        net.send(0, 1, 7);
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None, "0→1 cut");
        net.send(1, 0, 8);
        assert_eq!(recv_within(&rxs[0], Duration::from_secs(1)), Some(8), "1→0 open");
        net.heal_one_way(0, 1);
        net.send(0, 1, 9);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(9));
    }

    #[test]
    fn heal_all_clears_every_direction() {
        let (net, rxs) = net(3, NetConfig::default());
        net.isolate(0);
        net.partition_one_way(1, 2);
        net.heal_all();
        net.send(1, 0, 1);
        net.send(1, 2, 2);
        assert_eq!(recv_within(&rxs[0], Duration::from_secs(1)), Some(1));
        assert_eq!(recv_within(&rxs[2], Duration::from_secs(1)), Some(2));
    }

    #[test]
    fn drops_with_probability_one() {
        let (net, rxs) = net(2, NetConfig { drop_prob: 1.0, ..NetConfig::default() });
        for i in 0..10 {
            net.send(0, 1, i);
        }
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None);
    }

    #[test]
    fn duplicates_with_probability_one() {
        let (net, rxs) = net(2, NetConfig { dup_prob: 1.0, ..NetConfig::default() });
        for i in 0..5 {
            net.send(0, 1, i);
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            got.push(recv_within(&rxs[1], Duration::from_secs(1)).expect("two copies each"));
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(50)), None, "exactly twice");
    }

    #[test]
    fn reorder_window_lets_later_sends_overtake() {
        // Fixed base delay, so without reordering the stream is FIFO (see
        // ordering_respects_delays). A certain reorder roll with a window
        // far above the base delay must produce at least one inversion.
        let cfg = NetConfig {
            min_delay: Duration::from_micros(100),
            max_delay: Duration::from_micros(100),
            reorder_prob: 0.5,
            reorder_window: Duration::from_millis(5),
            ..NetConfig::default()
        };
        let (net, rxs) = net(2, cfg);
        for i in 0..20 {
            net.send(0, 1, i);
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            got.push(recv_within(&rxs[1], Duration::from_secs(1)).expect("delivered"));
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_ne!(got, sorted, "expected at least one inversion, got FIFO {got:?}");
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "nothing lost or duplicated");
    }

    #[test]
    fn per_link_override_applies_to_one_direction_only() {
        let (net, rxs) = net(3, NetConfig::default());
        // Blackhole only 0→1; 0→2 and 1→0 ride the (lossless) global
        // config.
        net.set_link_config(0, 1, NetConfig { drop_prob: 1.0, ..NetConfig::default() });
        net.send(0, 1, 7);
        net.send(0, 2, 8);
        net.send(1, 0, 9);
        assert_eq!(recv_within(&rxs[1], Duration::from_millis(100)), None, "override drops");
        assert_eq!(recv_within(&rxs[2], Duration::from_secs(1)), Some(8));
        assert_eq!(recv_within(&rxs[0], Duration::from_secs(1)), Some(9));
        net.clear_link_config(0, 1);
        net.send(0, 1, 10);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(10));
    }

    #[test]
    fn isolate_and_reconnect() {
        let (net, rxs) = net(3, NetConfig::default());
        net.isolate(2);
        net.send(0, 2, 1);
        net.send(1, 2, 2);
        assert_eq!(recv_within(&rxs[2], Duration::from_millis(100)), None);
        net.reconnect(2);
        net.send(0, 2, 3);
        assert_eq!(recv_within(&rxs[2], Duration::from_secs(1)), Some(3));
    }

    #[test]
    fn ordering_respects_delays() {
        // With a *fixed* delay (no jitter window), FIFO per deadline+seq
        // holds; jittered delays intentionally may reorder.
        let cfg = NetConfig {
            min_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(10),
            ..NetConfig::default()
        };
        let (net, rxs) = net(2, cfg);
        for i in 0..20 {
            net.send(0, 1, i);
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            got.push(recv_within(&rxs[1], Duration::from_secs(1)).expect("delivered"));
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn idle_network_parks_instead_of_spinning() {
        let (net, rxs) = net(2, NetConfig::default());
        // Let startup and the first park settle, then measure.
        std::thread::sleep(Duration::from_millis(20));
        let before = net.pump_parks();
        std::thread::sleep(Duration::from_millis(150));
        let parks = net.pump_parks() - before;
        // The old 100µs busy-sleep loop iterated ~1500 times over this
        // window; a parked pump wakes at most a couple of times.
        assert!(parks <= 3, "idle pump woke {parks} times in 150ms — busy polling?");
        // And it still delivers promptly once traffic resumes.
        net.send(0, 1, 42);
        assert_eq!(recv_within(&rxs[1], Duration::from_secs(1)), Some(42));
    }

    #[test]
    fn shutdown_is_prompt_even_with_far_future_messages() {
        let cfg = NetConfig {
            min_delay: Duration::from_secs(30),
            max_delay: Duration::from_secs(30),
            ..NetConfig::default()
        };
        let (mut net, _rxs) = net(2, cfg);
        net.send(0, 1, 1); // deliverable 30s out: the pump must not sleep through shutdown
        let start = Instant::now();
        net.shutdown();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "shutdown took {:?}",
            start.elapsed()
        );
    }
}
