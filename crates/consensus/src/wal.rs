//! Durable write-ahead log for the consensus layer.
//!
//! Raft requires three things to survive a crash: the current term, the
//! vote cast in that term, and the log suffix that has not been compacted
//! into a snapshot. This module provides that persistence behind the
//! [`LogStore`] trait with two implementations:
//!
//! * [`MemLogStore`] — an in-memory "disk" so simnet tests stay hermetic
//!   and fast while still exercising the exact save/recover code paths;
//! * [`WalStore`] — a real on-disk store with a torn-write-tolerant frame
//!   format plus atomically-renamed snapshot files.
//!
//! # WAL frame format
//!
//! The log file is a sequence of frames, each
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! Recovery scans frames from the start and truncates at the first torn
//! (short) or corrupt (CRC-mismatched) frame — everything before it was
//! fsynced and framed, so the prefix is exactly the durable state. Frame
//! payloads are operations: a hard-state save, a record append, or a
//! suffix truncation; replaying them rebuilds the in-memory mirror.
//!
//! # Snapshots
//!
//! [`LogStore::install_snapshot`] persists the full committed-prefix
//! payload entries (cheap in a deterministic database: the batch log *is*
//! the state) and drops the covered log prefix. The snapshot is written to
//! a temp file, fsynced, then renamed over `snapshot.bin`, so a crash
//! mid-snapshot leaves the previous snapshot and the full log intact; the
//! log file is rewritten (same temp+rename dance) to contain only the
//! retained suffix. A snapshot whose CRC does not verify at open time is
//! ignored, never trusted.
//!
//! # Seeded disk faults
//!
//! [`WalStore::arm_fault`] arms exactly one [`DiskFault`] that fires on
//! the next append or snapshot install, emulating the three classic
//! durability failures (torn final frame, failed fsync, partial snapshot
//! temp file). [`WalStore::simulate_crash`] then truncates the file to the
//! last fsynced length — what the kernel would have persisted — so tests
//! can reopen the directory and assert recovery semantics.

use crate::raft::{LogEntry, Record};
use crate::simnet::NodeId;
use prognosticator_obs::{Counter, Event, FlightRecorder, Registry};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Raft state that must survive restarts for election safety: a node that
/// forgets its vote could vote twice in one term and elect two leaders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardState {
    /// Latest term this node has seen.
    pub term: u64,
    /// Candidate voted for in `term`, if any.
    pub voted_for: Option<NodeId>,
}

/// A snapshot of the committed prefix: the last covered log position plus
/// every committed payload entry up to it (leader no-ops are not
/// retained). Deterministic replicas rebuild state by replaying
/// `entries`, so this is both the raft snapshot and the replica snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData<T> {
    /// Highest raft log index covered by this snapshot.
    pub last_index: u64,
    /// Term of the record at `last_index`.
    pub last_term: u64,
    /// All committed payload entries in log order, from index 1 through
    /// `last_index`.
    pub entries: Vec<LogEntry<T>>,
}

/// Durability counters exposed by every [`LogStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Number of fsync calls issued (0 for [`MemLogStore`]).
    pub wal_fsyncs: u64,
    /// Number of record appends persisted.
    pub wal_appends: u64,
    /// Bytes written to the log file.
    pub wal_bytes: u64,
    /// Snapshots successfully persisted.
    pub snapshots_written: u64,
    /// Bytes dropped from the log tail during recovery (torn/corrupt).
    pub torn_bytes_dropped: u64,
}

impl DurabilityStats {
    /// Element-wise sum, for aggregating across a cluster.
    pub fn merge(&self, other: &DurabilityStats) -> DurabilityStats {
        DurabilityStats {
            wal_fsyncs: self.wal_fsyncs + other.wal_fsyncs,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_bytes: self.wal_bytes + other.wal_bytes,
            snapshots_written: self.snapshots_written + other.snapshots_written,
            torn_bytes_dropped: self.torn_bytes_dropped + other.torn_bytes_dropped,
        }
    }
}

/// A seeded durability fault, armed via [`WalStore::arm_fault`]; fires on
/// the next matching operation and then disarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The next appended frame is written only partially (then fsynced):
    /// the classic torn write. Recovery must drop exactly that frame.
    TornFinalFrame,
    /// The next append is written but the fsync is skipped, so
    /// [`WalStore::simulate_crash`] discards it entirely.
    FailedFsync,
    /// The next snapshot install writes a truncated temp file and fails
    /// before the rename, leaving the previous snapshot + full log intact.
    PartialSnapshot,
}

/// Errors surfaced by durable stores.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A persisted structure failed validation.
    Corrupt(String),
    /// An armed [`DiskFault`] fired.
    Faulted(DiskFault),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(why) => write!(f, "wal corrupt: {why}"),
            WalError::Faulted(fault) => write!(f, "injected disk fault: {fault:?}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Serializes log payloads to bytes and back. Hand-rolled (no serde_json
/// at runtime) so the on-disk format is explicit and versionable.
pub trait Codec<T>: Send {
    /// Appends the encoding of `value` to `out`.
    fn encode(&self, value: &T, out: &mut Vec<u8>);
    /// Decodes one value from `bytes` (which holds exactly one encoding).
    fn decode(&self, bytes: &[u8]) -> Result<T, WalError>;
}

/// Codec for `u64` payloads — used by consensus-level tests and benches
/// that replicate plain integers.
#[derive(Debug, Clone, Copy, Default)]
pub struct U64Codec;

impl Codec<u64> for U64Codec {
    fn encode(&self, value: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&value.to_le_bytes());
    }

    fn decode(&self, bytes: &[u8]) -> Result<u64, WalError> {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| WalError::Corrupt(format!("u64 payload of {} bytes", bytes.len())))?;
        Ok(u64::from_le_bytes(arr))
    }
}

/// Persistence seam for a raft node. Implementations must make every
/// mutation durable before returning (that is the contract the election
/// safety argument rests on); [`MemLogStore`] "persists" to memory so the
/// same code paths run hermetically.
pub trait LogStore<T>: Send {
    /// The persisted hard state (zeroed if never saved).
    fn hard_state(&self) -> HardState;
    /// Durably saves term + vote.
    fn save_hard_state(&mut self, hs: HardState);
    /// Index of the first record still in the log (`snapshot.last_index
    /// + 1` after compaction, else 1).
    fn first_index(&self) -> u64;
    /// The retained records, starting at [`LogStore::first_index`].
    fn records(&self) -> Vec<Record<T>>;
    /// Durably appends one record at the next index.
    fn append(&mut self, rec: &Record<T>);
    /// Durably drops all records at absolute index `from` and above.
    fn truncate_from(&mut self, from: u64);
    /// The latest persisted snapshot, if any.
    fn snapshot(&self) -> Option<SnapshotData<T>>;
    /// Persists `snap` and drops the log prefix it covers. On error the
    /// previous snapshot and the full log are still intact — callers skip
    /// compaction and may retry later.
    fn install_snapshot(&mut self, snap: &SnapshotData<T>) -> Result<(), WalError>;
    /// Durability counters accumulated so far.
    fn stats(&self) -> DurabilityStats;
    /// Arms a one-shot injected disk fault firing on the next matching
    /// operation. Default: no-op — only fault-capable stores (i.e.
    /// [`WalStore`]) honour it; [`MemLogStore`] has no disk to fail.
    fn arm_disk_fault(&mut self, _fault: DiskFault) {}
}

/// In-memory [`LogStore`]: the "disk" is the struct itself, so a raft
/// node crash/restart test can hand the same store back to the restarted
/// node and exercise recovery without touching the filesystem.
#[derive(Debug)]
pub struct MemLogStore<T> {
    hard: HardState,
    base: u64,
    recs: Vec<Record<T>>,
    snap: Option<SnapshotData<T>>,
    stats: DurabilityStats,
}

impl<T> Default for MemLogStore<T> {
    fn default() -> Self {
        MemLogStore { hard: HardState::default(), base: 0, recs: Vec::new(), snap: None, stats: DurabilityStats::default() }
    }
}

impl<T> MemLogStore<T> {
    /// A fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<T: Clone + Send> LogStore<T> for MemLogStore<T> {
    fn hard_state(&self) -> HardState {
        self.hard
    }

    fn save_hard_state(&mut self, hs: HardState) {
        self.hard = hs;
    }

    fn first_index(&self) -> u64 {
        self.base + 1
    }

    fn records(&self) -> Vec<Record<T>> {
        self.recs.clone()
    }

    fn append(&mut self, rec: &Record<T>) {
        self.recs.push(rec.clone());
        self.stats.wal_appends += 1;
    }

    fn truncate_from(&mut self, from: u64) {
        let keep = from.saturating_sub(self.base + 1) as usize;
        self.recs.truncate(keep);
    }

    fn snapshot(&self) -> Option<SnapshotData<T>> {
        self.snap.clone()
    }

    fn install_snapshot(&mut self, snap: &SnapshotData<T>) -> Result<(), WalError> {
        let drop_n = snap.last_index.saturating_sub(self.base) as usize;
        self.recs.drain(..drop_n.min(self.recs.len()));
        self.base = snap.last_index;
        self.snap = Some(snap.clone());
        self.stats.snapshots_written += 1;
        Ok(())
    }

    fn stats(&self) -> DurabilityStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Byte-level helpers (little-endian, bounds-checked reads).
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — no lookup table,
/// plenty fast for frame-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a byte slice with checked reads.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.pos + n > self.buf.len() {
            return Err(WalError::Corrupt(format!(
                "short read: wanted {n} bytes at {}, have {}",
                self.pos,
                self.buf.len()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

/// Wraps `payload` in a `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Splits `buf` into frame payloads, stopping at the first torn or
/// corrupt frame. Returns `(payloads, valid_prefix_len)`.
fn scan_frames(buf: &[u8]) -> (Vec<&[u8]>, usize) {
    const MAX_FRAME: u32 = 1 << 30;
    let mut out = Vec::new();
    let mut pos = 0usize;
    while buf.len() - pos >= 8 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            break; // garbage length: corrupt header
        }
        let end = pos + 8 + len as usize;
        if end > buf.len() {
            break; // torn frame: payload shorter than promised
        }
        let payload = &buf[pos + 8..end];
        if crc32(payload) != crc {
            break; // corrupt payload
        }
        out.push(payload);
        pos = end;
    }
    (out, pos)
}

// Log-file operation tags.
const OP_HARD_STATE: u8 = 1;
const OP_APPEND: u8 = 2;
const OP_TRUNCATE: u8 = 3;

/// Flight-recorder id namespace for WAL stores. Replica recorders number
/// from zero; offsetting WAL recorders keeps the two apart in merged
/// `flightrec-*.jsonl` dumps without any coordination between layers.
const WAL_RECORDER_BASE: u64 = 1 << 32;

/// Observability handles owned by a [`WalStore`]: global-registry
/// counters mirroring the hot [`DurabilityStats`] fields, plus an
/// optional flight recorder for fsync events. The recorder is allocated
/// only when recording is enabled process-wide, so a disabled process
/// pays one relaxed load per fsync and nothing else.
struct WalObs {
    fsyncs: Arc<Counter>,
    appends: Arc<Counter>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl WalObs {
    fn new() -> Self {
        let reg = Registry::global();
        let recorder = if prognosticator_obs::default_enabled() {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT_WAL: AtomicU64 = AtomicU64::new(WAL_RECORDER_BASE);
            Some(FlightRecorder::new(NEXT_WAL.fetch_add(1, Ordering::Relaxed)))
        } else {
            None
        };
        WalObs {
            fsyncs: reg.counter("wal.fsyncs"),
            appends: reg.counter("wal.appends"),
            recorder,
        }
    }

    /// Records one durable fsync. `index` is the highest absolute log
    /// index durable as of this sync (snapshot installs pass the
    /// snapshot's `last_index`).
    fn fsync(&self, index: u64) {
        self.fsyncs.inc();
        if let Some(rec) = &self.recorder {
            rec.record(|| Event::WalFsync { index });
        }
    }
}

/// File-backed [`LogStore`]. Keeps an in-memory mirror (rebuilt at
/// [`WalStore::open`]) so reads never touch the disk.
pub struct WalStore<T, C: Codec<T>> {
    dir: PathBuf,
    file: File,
    codec: C,
    /// File length at the last successful fsync — exactly what survives
    /// [`WalStore::simulate_crash`].
    durable_len: u64,
    /// Current file length including unsynced writes.
    write_len: u64,
    armed: Option<DiskFault>,
    hard: HardState,
    base: u64,
    recs: Vec<Record<T>>,
    snap: Option<SnapshotData<T>>,
    stats: DurabilityStats,
    obs: WalObs,
}

impl<T: Clone + Send, C: Codec<T>> WalStore<T, C> {
    const LOG_FILE: &'static str = "wal.log";
    const SNAP_FILE: &'static str = "snapshot.bin";

    /// Opens (or creates) the store rooted at `dir`, running torn-tail
    /// recovery on the log file and CRC validation on the snapshot.
    pub fn open(dir: impl AsRef<Path>, codec: C) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let obs = WalObs::new();
        let mut stats = DurabilityStats::default();
        // A corrupt snapshot is never trusted: fall back to the log.
        let snap =
            Self::read_snapshot(&dir.join(Self::SNAP_FILE), &codec).ok().flatten();
        let base = snap.as_ref().map_or(0, |s| s.last_index);

        let log_path = dir.join(Self::LOG_FILE);
        let mut file = OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&log_path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (payloads, valid) = scan_frames(&buf);
        if valid < buf.len() {
            // Torn or corrupt tail: truncate to the durable prefix.
            stats.torn_bytes_dropped += (buf.len() - valid) as u64;
            file.set_len(valid as u64)?;
            file.sync_data()?;
            stats.wal_fsyncs += 1;
            obs.fsyncs.inc();
        }

        let mut hard = HardState::default();
        let mut recs: Vec<Record<T>> = Vec::new();
        for payload in payloads {
            let mut r = ByteReader::new(payload);
            match r.u8()? {
                OP_HARD_STATE => {
                    let term = r.u64()?;
                    let voted = if r.u8()? == 1 { Some(r.u64()? as NodeId) } else { None };
                    hard = HardState { term, voted_for: voted };
                }
                OP_APPEND => {
                    let term = r.u64()?;
                    let id = r.u64()?;
                    let payload = if r.u8()? == 1 {
                        let len = r.u32()? as usize;
                        Some(codec.decode(r.take(len)?)?)
                    } else {
                        None
                    };
                    recs.push(Record { term, id, payload });
                }
                OP_TRUNCATE => {
                    let from = r.u64()?;
                    let keep = from.saturating_sub(base + 1) as usize;
                    recs.truncate(keep);
                }
                tag => return Err(WalError::Corrupt(format!("unknown op tag {tag}"))),
            }
        }

        file.seek(SeekFrom::End(0))?;
        let len = valid as u64;
        Ok(WalStore {
            dir,
            file,
            codec,
            durable_len: len,
            write_len: len,
            armed: None,
            hard,
            base,
            recs,
            snap,
            stats,
            obs,
        })
    }

    fn read_snapshot(path: &Path, codec: &C) -> Result<Option<SnapshotData<T>>, WalError> {
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            Err(_) => return Ok(None),
        };
        let (payloads, valid) = scan_frames(&buf);
        if payloads.len() != 1 || valid != buf.len() {
            return Err(WalError::Corrupt("snapshot frame invalid".into()));
        }
        let mut r = ByteReader::new(payloads[0]);
        let last_index = r.u64()?;
        let last_term = r.u64()?;
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let term = r.u64()?;
            let id = r.u64()?;
            let len = r.u32()? as usize;
            entries.push(LogEntry { term, id, payload: codec.decode(r.take(len)?)? });
        }
        if !r.is_empty() {
            return Err(WalError::Corrupt("trailing bytes in snapshot".into()));
        }
        Ok(Some(SnapshotData { last_index, last_term, entries }))
    }

    /// Arms a one-shot disk fault; it fires on the next matching
    /// operation (append for torn/fsync faults, snapshot install for
    /// [`DiskFault::PartialSnapshot`]) and then disarms.
    pub fn arm_fault(&mut self, fault: DiskFault) {
        self.armed = Some(fault);
    }

    /// Emulates a machine crash: truncates the log to the last fsynced
    /// length (unsynced writes vanish, torn-but-synced bytes stay) and
    /// drops the in-memory mirror. Reopen with [`WalStore::open`].
    pub fn simulate_crash(self) -> Result<PathBuf, WalError> {
        self.file.set_len(self.durable_len)?;
        self.file.sync_data()?;
        Ok(self.dir.clone())
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn encode_record(&self, rec: &Record<T>) -> Vec<u8> {
        let mut p = Vec::new();
        p.push(OP_APPEND);
        put_u64(&mut p, rec.term);
        put_u64(&mut p, rec.id);
        match &rec.payload {
            Some(v) => {
                p.push(1);
                let mut body = Vec::new();
                self.codec.encode(v, &mut body);
                put_u32(&mut p, body.len() as u32);
                p.extend_from_slice(&body);
            }
            None => p.push(0),
        }
        p
    }

    /// Writes one frame, honoring an armed torn-write/failed-fsync fault.
    fn write_frame(&mut self, payload: &[u8]) {
        let framed = frame(payload);
        // Highest absolute log index durable as of a sync in this frame.
        let index = self.base + self.recs.len() as u64;
        match self.armed {
            Some(DiskFault::TornFinalFrame) => {
                self.armed = None;
                // Half the frame reaches the platter and *is* synced:
                // recovery must drop it by CRC/length check alone.
                let torn = &framed[..framed.len() / 2];
                let _ = self.file.write_all(torn);
                let _ = self.file.sync_data();
                self.stats.wal_fsyncs += 1;
                self.obs.fsync(index);
                self.write_len += torn.len() as u64;
                self.durable_len = self.write_len;
                self.stats.wal_bytes += torn.len() as u64;
            }
            Some(DiskFault::FailedFsync) => {
                self.armed = None;
                // The write lands in the page cache but never syncs:
                // simulate_crash() discards it wholesale.
                let _ = self.file.write_all(&framed);
                self.write_len += framed.len() as u64;
                self.stats.wal_bytes += framed.len() as u64;
            }
            _ => {
                self.file.write_all(&framed).expect("wal write");
                self.file.sync_data().expect("wal fsync");
                self.stats.wal_fsyncs += 1;
                self.obs.fsync(index);
                self.write_len += framed.len() as u64;
                self.durable_len = self.write_len;
                self.stats.wal_bytes += framed.len() as u64;
            }
        }
    }

    /// Rewrites the log file from the in-memory mirror (used after
    /// snapshot installs so the covered prefix is reclaimed).
    fn rewrite_log(&mut self) -> Result<(), WalError> {
        let tmp = self.dir.join("wal.log.tmp");
        let mut out = Vec::new();
        let mut hs = Vec::new();
        hs.push(OP_HARD_STATE);
        put_u64(&mut hs, self.hard.term);
        match self.hard.voted_for {
            Some(v) => {
                hs.push(1);
                put_u64(&mut hs, v as u64);
            }
            None => hs.push(0),
        }
        out.extend_from_slice(&frame(&hs));
        for rec in &self.recs {
            let p = self.encode_record(rec);
            out.extend_from_slice(&frame(&p));
        }
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
        std::fs::rename(&tmp, self.dir.join(Self::LOG_FILE))?;
        self.stats.wal_fsyncs += 1;
        self.obs.fsync(self.base + self.recs.len() as u64);
        self.stats.wal_bytes += out.len() as u64;
        self.file = OpenOptions::new().read(true).append(true).open(self.dir.join(Self::LOG_FILE))?;
        self.write_len = out.len() as u64;
        self.durable_len = self.write_len;
        Ok(())
    }
}

impl<T: Clone + Send, C: Codec<T>> LogStore<T> for WalStore<T, C> {
    fn hard_state(&self) -> HardState {
        self.hard
    }

    fn save_hard_state(&mut self, hs: HardState) {
        self.hard = hs;
        let mut p = Vec::new();
        p.push(OP_HARD_STATE);
        put_u64(&mut p, hs.term);
        match hs.voted_for {
            Some(v) => {
                p.push(1);
                put_u64(&mut p, v as u64);
            }
            None => p.push(0),
        }
        self.write_frame(&p);
    }

    fn first_index(&self) -> u64 {
        self.base + 1
    }

    fn records(&self) -> Vec<Record<T>> {
        self.recs.clone()
    }

    fn append(&mut self, rec: &Record<T>) {
        let p = self.encode_record(rec);
        self.write_frame(&p);
        self.recs.push(rec.clone());
        self.stats.wal_appends += 1;
        self.obs.appends.inc();
    }

    fn truncate_from(&mut self, from: u64) {
        let keep = from.saturating_sub(self.base + 1) as usize;
        self.recs.truncate(keep);
        let mut p = Vec::new();
        p.push(OP_TRUNCATE);
        put_u64(&mut p, from);
        self.write_frame(&p);
    }

    fn snapshot(&self) -> Option<SnapshotData<T>> {
        self.snap.clone()
    }

    fn install_snapshot(&mut self, snap: &SnapshotData<T>) -> Result<(), WalError> {
        let mut p = Vec::new();
        put_u64(&mut p, snap.last_index);
        put_u64(&mut p, snap.last_term);
        put_u32(&mut p, snap.entries.len() as u32);
        for e in &snap.entries {
            put_u64(&mut p, e.term);
            put_u64(&mut p, e.id);
            let mut body = Vec::new();
            self.codec.encode(&e.payload, &mut body);
            put_u32(&mut p, body.len() as u32);
            p.extend_from_slice(&body);
        }
        let framed = frame(&p);
        let tmp = self.dir.join("snapshot.bin.tmp");
        if self.armed == Some(DiskFault::PartialSnapshot) {
            self.armed = None;
            // Crash mid-snapshot: a truncated temp file is left behind
            // and the rename never happens. The previous snapshot and the
            // full log remain authoritative.
            let mut f = File::create(&tmp)?;
            f.write_all(&framed[..framed.len() / 2])?;
            f.sync_data()?;
            self.stats.wal_fsyncs += 1;
            self.obs.fsync(snap.last_index);
            return Err(WalError::Faulted(DiskFault::PartialSnapshot));
        }
        let mut f = File::create(&tmp)?;
        f.write_all(&framed)?;
        f.sync_data()?;
        std::fs::rename(&tmp, self.dir.join(Self::SNAP_FILE))?;
        self.stats.wal_fsyncs += 1;
        self.obs.fsync(snap.last_index);

        let drop_n = snap.last_index.saturating_sub(self.base) as usize;
        self.recs.drain(..drop_n.min(self.recs.len()));
        self.base = snap.last_index;
        self.snap = Some(snap.clone());
        self.stats.snapshots_written += 1;
        self.rewrite_log()?;
        Ok(())
    }

    fn stats(&self) -> DurabilityStats {
        self.stats
    }

    fn arm_disk_fault(&mut self, fault: DiskFault) {
        self.arm_fault(fault);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/wal")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(term: u64, id: u64, v: u64) -> Record<u64> {
        Record { term, id, payload: Some(v) }
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" → 0xcbf43926 is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn roundtrips_hard_state_and_records() {
        let dir = tmpdir("roundtrip");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            s.save_hard_state(HardState { term: 3, voted_for: Some(1) });
            s.append(&rec(3, 1, 10));
            s.append(&rec(3, 2, 20));
            s.append(&Record { term: 3, id: 0, payload: None });
        }
        let s = WalStore::open(&dir, U64Codec).unwrap();
        assert_eq!(s.hard_state(), HardState { term: 3, voted_for: Some(1) });
        assert_eq!(s.first_index(), 1);
        let recs = s.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].payload, Some(10));
        assert_eq!(recs[2].payload, None);
    }

    #[test]
    fn truncate_survives_reopen() {
        let dir = tmpdir("truncate");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            s.append(&rec(1, 1, 10));
            s.append(&rec(1, 2, 20));
            s.append(&rec(1, 3, 30));
            s.truncate_from(2);
            s.append(&rec(2, 4, 40));
        }
        let s = WalStore::open(&dir, U64Codec).unwrap();
        let recs = s.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].payload, Some(10));
        assert_eq!(recs[1].payload, Some(40));
    }

    #[test]
    fn torn_final_frame_is_dropped_on_recovery() {
        let dir = tmpdir("torn");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            s.append(&rec(1, 1, 10));
            s.arm_fault(DiskFault::TornFinalFrame);
            s.append(&rec(1, 2, 20)); // torn: half the frame hits disk
            s.simulate_crash().unwrap();
        }
        let s = WalStore::open(&dir, U64Codec).unwrap();
        assert_eq!(s.records().len(), 1, "torn frame must be dropped");
        assert_eq!(s.records()[0].payload, Some(10));
        assert!(s.stats().torn_bytes_dropped > 0);
    }

    #[test]
    fn failed_fsync_discards_unsynced_append() {
        let dir = tmpdir("fsync");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            s.append(&rec(1, 1, 10));
            s.arm_fault(DiskFault::FailedFsync);
            s.append(&rec(1, 2, 20)); // written but never synced
            s.simulate_crash().unwrap();
        }
        let s = WalStore::open(&dir, U64Codec).unwrap();
        assert_eq!(s.records().len(), 1, "unsynced append must vanish");
        // The tail was cut at the durable length, so nothing is torn.
        assert_eq!(s.stats().torn_bytes_dropped, 0);
    }

    #[test]
    fn partial_snapshot_preserves_previous_state() {
        let dir = tmpdir("partial-snap");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            for i in 1..=4 {
                s.append(&rec(1, i, i * 10));
            }
            let good = SnapshotData {
                last_index: 2,
                last_term: 1,
                entries: vec![
                    LogEntry { term: 1, id: 1, payload: 10 },
                    LogEntry { term: 1, id: 2, payload: 20 },
                ],
            };
            s.install_snapshot(&good).unwrap();
            assert_eq!(s.first_index(), 3);

            let bigger = SnapshotData {
                last_index: 4,
                last_term: 1,
                entries: vec![
                    LogEntry { term: 1, id: 1, payload: 10 },
                    LogEntry { term: 1, id: 2, payload: 20 },
                    LogEntry { term: 1, id: 3, payload: 30 },
                    LogEntry { term: 1, id: 4, payload: 40 },
                ],
            };
            s.arm_fault(DiskFault::PartialSnapshot);
            assert!(s.install_snapshot(&bigger).is_err(), "armed fault must fail install");
            // Compaction must NOT have happened.
            assert_eq!(s.first_index(), 3);
            s.simulate_crash().unwrap();
        }
        let s = WalStore::open(&dir, U64Codec).unwrap();
        let snap = s.snapshot().expect("previous snapshot intact");
        assert_eq!(snap.last_index, 2);
        assert_eq!(s.records().len(), 2, "uncompacted suffix intact");
    }

    #[test]
    fn snapshot_compacts_log_file() {
        let dir = tmpdir("compact");
        let mut s = WalStore::open(&dir, U64Codec).unwrap();
        for i in 1..=8 {
            s.append(&rec(1, i, i));
        }
        let before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        let snap = SnapshotData {
            last_index: 8,
            last_term: 1,
            entries: (1..=8).map(|i| LogEntry { term: 1, id: i, payload: i }).collect(),
        };
        s.install_snapshot(&snap).unwrap();
        let after = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(after < before, "log file must shrink after compaction ({before} -> {after})");
        assert_eq!(s.first_index(), 9);
        assert!(s.records().is_empty());

        // Reopen: snapshot is authoritative, log empty.
        drop(s);
        let s = WalStore::open(&dir, U64Codec).unwrap();
        assert_eq!(s.snapshot().unwrap().entries.len(), 8);
        assert!(s.records().is_empty());
    }

    #[test]
    fn mem_store_roundtrip_matches_wal_semantics() {
        let mut s: MemLogStore<u64> = MemLogStore::new();
        s.save_hard_state(HardState { term: 2, voted_for: None });
        s.append(&rec(2, 1, 1));
        s.append(&rec(2, 2, 2));
        s.truncate_from(2);
        assert_eq!(s.records().len(), 1);
        s.append(&rec(2, 3, 3));
        let snap = SnapshotData {
            last_index: 2,
            last_term: 2,
            entries: vec![LogEntry { term: 2, id: 1, payload: 1 }, LogEntry { term: 2, id: 3, payload: 3 }],
        };
        s.install_snapshot(&snap).unwrap();
        assert_eq!(s.first_index(), 3);
        assert!(s.records().is_empty());
        assert_eq!(s.hard_state().term, 2);
    }

    #[test]
    fn corrupt_snapshot_is_ignored() {
        let dir = tmpdir("corrupt-snap");
        {
            let mut s = WalStore::open(&dir, U64Codec).unwrap();
            s.append(&rec(1, 1, 10));
        }
        std::fs::write(dir.join("snapshot.bin"), b"garbage-not-a-frame").unwrap();
        let s = WalStore::open(&dir, U64Codec).unwrap();
        assert!(s.snapshot().is_none(), "corrupt snapshot must be ignored");
        assert_eq!(s.records().len(), 1, "log still authoritative");
    }
}
