#![warn(missing_docs)]
//! The sequencing layer Prognosticator assumes: clients batch transactions
//! and a consensus protocol delivers identical batches, in the same order,
//! to every replica (paper §III-A).
//!
//! * [`Batcher`] — client-side time/size-windowed batching with bounded
//!   admission ([`Admission`]) so the pending queue cannot grow without
//!   bound during leader churn;
//! * [`RetryPolicy`] / [`Quarantine`] — bounded retry-with-backoff for
//!   transient ordering failures, and the poison-batch holding area that
//!   keeps one stuck proposal from wedging the dispatcher;
//! * [`RaftCluster`] — Raft-lite (election, replication, majority commit)
//!   over a [`SimNet`] with injectable delay, loss and partitions;
//! * [`wal`] — durable persistence behind the [`LogStore`] seam: a
//!   torn-write-tolerant on-disk WAL ([`WalStore`]) plus a hermetic
//!   in-memory implementation ([`MemLogStore`]), snapshots of the
//!   committed batch prefix, and seeded disk faults ([`DiskFault`]) for
//!   crash-recovery testing.
//!
//! The payload type is generic; the full pipeline replicates
//! `Vec<TxRequest>` batches through it (see the `replicated_pipeline`
//! example at the repository root).

pub mod batcher;
pub mod raft;
pub mod simnet;
pub mod wal;

pub use batcher::{Admission, Batcher, Quarantine, Quarantined, RetryPolicy};
pub use raft::{
    election_jitter, DurabilityReport, LogEntry, NodeView, RaftCluster, RaftMsg, RaftTiming,
};
pub use simnet::{NetConfig, NodeId, SimNet};
pub use wal::{
    Codec, DiskFault, DurabilityStats, HardState, LogStore, MemLogStore, SnapshotData, U64Codec,
    WalError, WalStore,
};
