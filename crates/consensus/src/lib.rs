#![warn(missing_docs)]
//! The sequencing layer Prognosticator assumes: clients batch transactions
//! and a consensus protocol delivers identical batches, in the same order,
//! to every replica (paper §III-A).
//!
//! * [`Batcher`] — client-side time/size-windowed batching;
//! * [`RetryPolicy`] / [`Quarantine`] — bounded retry-with-backoff for
//!   transient ordering failures, and the poison-batch holding area that
//!   keeps one stuck proposal from wedging the dispatcher;
//! * [`RaftCluster`] — Raft-lite (election, replication, majority commit)
//!   over a [`SimNet`] with injectable delay, loss and partitions.
//!
//! The payload type is generic; the full pipeline replicates
//! `Vec<TxRequest>` batches through it (see the `replicated_pipeline`
//! example at the repository root).

pub mod batcher;
pub mod raft;
pub mod simnet;

pub use batcher::{Batcher, Quarantine, Quarantined, RetryPolicy};
pub use raft::{LogEntry, NodeView, RaftCluster, RaftMsg, RaftTiming};
pub use simnet::{NetConfig, NodeId, SimNet};
