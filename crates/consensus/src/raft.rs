//! Raft-lite: leader election + log replication + commit, enough to give
//! every replica the same ordered stream of batches.
//!
//! The paper assumes a consensus layer (Paxos/Raft, §III-A) that delivers
//! identical batches in the same order to all replicas. This module
//! implements that contract over the [`crate::simnet::SimNet`]: randomized
//! election timeouts, per-term single votes, log-matching append, and
//! majority commit. Omitted relative to full Raft: persistence, snapshots,
//! and membership changes — none of which the paper's pipeline exercises.

use crate::simnet::{NetConfig, NodeId, SimNet};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry<T> {
    /// Term the entry was appended in.
    pub term: u64,
    /// Client-assigned unique id (used to deduplicate re-proposals).
    pub id: u64,
    /// The payload (a transaction batch, in the full pipeline).
    pub payload: T,
}

/// A raw slot in the replicated log: either a client entry or a leader
/// no-op. Every new leader appends (and replicates) a no-op in its own
/// term immediately on election — the standard Raft device that lets it
/// commit the previous leader's tail without waiting for fresh client
/// traffic (§5.4.2 only allows counting replicas for current-term
/// entries). No-ops are invisible in [`NodeView::committed`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record<T> {
    /// Term the record was appended in.
    pub term: u64,
    /// Client-assigned id, or 0 for leader no-ops (client ids start at 1).
    pub id: u64,
    /// The client payload; `None` for leader no-ops.
    pub payload: Option<T>,
}

/// Messages exchanged by Raft nodes.
#[derive(Debug, Clone)]
pub enum RaftMsg<T> {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Candidate's id.
        candidate: NodeId,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Voter id.
        from: NodeId,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Leader id.
        leader: NodeId,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry.
        prev_term: u64,
        /// Records to append (client entries and leader no-ops).
        entries: Vec<Record<T>>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Append response.
    AppendResp {
        /// Follower's current term.
        term: u64,
        /// Follower id.
        from: NodeId,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the follower.
        match_index: u64,
    },
    /// Client proposal (only the leader acts on it).
    Propose {
        /// Client-assigned unique id.
        id: u64,
        /// The payload.
        payload: T,
    },
}

/// Timing knobs (kept small so tests converge quickly).
#[derive(Debug, Clone)]
pub struct RaftTiming {
    /// Minimum election timeout.
    pub election_min: Duration,
    /// Maximum election timeout.
    pub election_max: Duration,
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
}

impl Default for RaftTiming {
    fn default() -> Self {
        RaftTiming {
            election_min: Duration::from_millis(80),
            election_max: Duration::from_millis(160),
            heartbeat: Duration::from_millis(25),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Shared observable state of one node (what tests and the pipeline read).
#[derive(Debug)]
pub struct NodeView<T> {
    /// Committed entries in order.
    pub committed: RwLock<Vec<LogEntry<T>>>,
    /// Current term (best effort, for diagnostics).
    pub term: RwLock<u64>,
    /// Whether this node currently believes itself leader.
    pub is_leader: AtomicBool,
    /// Every term in which this node won an election — lets tests check
    /// the Election Safety property (at most one leader per term).
    pub leader_terms: RwLock<Vec<u64>>,
}

impl<T> Default for NodeView<T> {
    fn default() -> Self {
        NodeView {
            committed: RwLock::new(Vec::new()),
            term: RwLock::new(0),
            is_leader: AtomicBool::new(false),
            leader_terms: RwLock::new(Vec::new()),
        }
    }
}

struct Node<T> {
    id: NodeId,
    n: usize,
    term: u64,
    voted_for: Option<NodeId>,
    log: Vec<Record<T>>, // index i ↔ log[i-1]; indices are 1-based
    commit_index: u64,
    role: Role,
    votes: usize,
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    leader_hint: Option<NodeId>,
    view: Arc<NodeView<T>>,
    subscribers: Vec<Sender<LogEntry<T>>>,
    rng: StdRng,
    timing: RaftTiming,
    deadline: Instant,
}

impl<T: Clone + Send + Sync + 'static> Node<T> {
    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else {
            self.log.get(index as usize - 1).map_or(0, |e| e.term)
        }
    }

    fn reset_election_deadline(&mut self) {
        let span = self.timing.election_max - self.timing.election_min;
        let jitter = Duration::from_nanos(self.rng.gen_range(0..span.as_nanos().max(1) as u64));
        self.deadline = Instant::now() + self.timing.election_min + jitter;
    }

    fn become_follower(&mut self, term: u64) {
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.view.is_leader.store(false, Ordering::Release);
        *self.view.term.write() = term;
        self.reset_election_deadline();
    }

    fn become_leader(&mut self, net: &SimNet<RaftMsg<T>>) {
        self.role = Role::Leader;
        self.view.is_leader.store(true, Ordering::Release);
        self.view.leader_terms.write().push(self.term);
        self.next_index = vec![self.last_log_index() + 1; self.n];
        self.match_index = vec![0; self.n];
        // Commit-visibility no-op: a leader may only count replicas for
        // entries of its own term, so without this a fresh leader would
        // sit on the previous leader's committed-but-unannounced tail
        // until the next client proposal arrived.
        self.log.push(Record { term: self.term, id: 0, payload: None });
        self.match_index[self.id] = self.last_log_index();
        self.deadline = Instant::now(); // heartbeat immediately
        self.broadcast_append(net);
        if self.n == 1 {
            self.advance_commit();
        }
    }

    fn start_election(&mut self, net: &SimNet<RaftMsg<T>>) {
        self.term += 1;
        *self.view.term.write() = self.term;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes = 1;
        self.view.is_leader.store(false, Ordering::Release);
        self.reset_election_deadline();
        for peer in 0..self.n {
            if peer != self.id {
                net.send(
                    self.id,
                    peer,
                    RaftMsg::RequestVote {
                        term: self.term,
                        candidate: self.id,
                        last_log_index: self.last_log_index(),
                        last_log_term: self.last_log_term(),
                    },
                );
            }
        }
        // Single-node cluster: win immediately.
        if self.votes * 2 > self.n {
            self.become_leader(net);
        }
    }

    fn broadcast_append(&mut self, net: &SimNet<RaftMsg<T>>) {
        for peer in 0..self.n {
            if peer == self.id {
                continue;
            }
            let next = self.next_index[peer];
            let prev_index = next - 1;
            let prev_term = self.term_at(prev_index);
            let entries: Vec<Record<T>> =
                self.log.iter().skip(prev_index as usize).cloned().collect();
            net.send(
                self.id,
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    leader: self.id,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit: self.commit_index,
                },
            );
        }
        self.deadline = Instant::now() + self.timing.heartbeat;
    }

    fn advance_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.term_at(n) != self.term {
                continue;
            }
            let replicas = self.match_index.iter().filter(|&&m| m >= n).count();
            if replicas * 2 > self.n {
                self.set_commit(n);
                break;
            }
        }
    }

    fn set_commit(&mut self, index: u64) {
        let index = index.min(self.last_log_index());
        while self.commit_index < index {
            self.commit_index += 1;
            let rec = self.log[self.commit_index as usize - 1].clone();
            // Leader no-ops advance the commit index but are invisible to
            // clients: only records carrying a payload are published.
            if let Some(payload) = rec.payload {
                let entry = LogEntry { term: rec.term, id: rec.id, payload };
                self.view.committed.write().push(entry.clone());
                self.subscribers.retain(|s| s.send(entry.clone()).is_ok());
            }
        }
    }

    fn handle(&mut self, msg: RaftMsg<T>, net: &SimNet<RaftMsg<T>>) {
        match msg {
            RaftMsg::RequestVote { term, candidate, last_log_index, last_log_term } => {
                if term > self.term {
                    self.become_follower(term);
                }
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(candidate));
                if granted {
                    self.voted_for = Some(candidate);
                    self.reset_election_deadline();
                }
                net.send(self.id, candidate, RaftMsg::Vote { term: self.term, from: self.id, granted });
            }
            RaftMsg::Vote { term, granted, .. } => {
                if term > self.term {
                    self.become_follower(term);
                    return;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes += 1;
                    if self.votes * 2 > self.n {
                        self.become_leader(net);
                    }
                }
            }
            RaftMsg::AppendEntries { term, leader, prev_index, prev_term, entries, leader_commit } => {
                if term > self.term || (term == self.term && self.role != Role::Leader) {
                    if term > self.term {
                        self.become_follower(term);
                    } else {
                        self.reset_election_deadline();
                        self.role = Role::Follower;
                        self.view.is_leader.store(false, Ordering::Release);
                    }
                    self.leader_hint = Some(leader);
                    // Log matching check.
                    let ok = prev_index <= self.last_log_index()
                        && self.term_at(prev_index) == prev_term;
                    if ok {
                        // Truncate conflicts and append.
                        for (idx, entry) in (prev_index as usize..).zip(entries) {
                            if idx < self.log.len() {
                                if self.log[idx].term != entry.term {
                                    debug_assert!(
                                        idx as u64 >= self.commit_index,
                                        "conflicting entry below commit index"
                                    );
                                    self.log.truncate(idx);
                                    self.log.push(entry);
                                }
                            } else {
                                self.log.push(entry);
                            }
                        }
                        self.set_commit(leader_commit.min(self.last_log_index()));
                        net.send(
                            self.id,
                            leader,
                            RaftMsg::AppendResp {
                                term: self.term,
                                from: self.id,
                                success: true,
                                match_index: self.last_log_index(),
                            },
                        );
                    } else {
                        net.send(
                            self.id,
                            leader,
                            RaftMsg::AppendResp {
                                term: self.term,
                                from: self.id,
                                success: false,
                                match_index: prev_index.saturating_sub(1),
                            },
                        );
                    }
                } else if term < self.term {
                    net.send(
                        self.id,
                        leader,
                        RaftMsg::AppendResp {
                            term: self.term,
                            from: self.id,
                            success: false,
                            match_index: 0,
                        },
                    );
                }
            }
            RaftMsg::AppendResp { term, from, success, match_index } => {
                if term > self.term {
                    self.become_follower(term);
                    return;
                }
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                if success {
                    self.match_index[from] = self.match_index[from].max(match_index);
                    self.next_index[from] = self.match_index[from] + 1;
                    self.advance_commit();
                } else {
                    // Back off (to the follower's hint) and retry at the
                    // next heartbeat.
                    self.next_index[from] = (match_index + 1).max(1);
                }
            }
            RaftMsg::Propose { id, payload } => {
                if self.role == Role::Leader {
                    let duplicate = self.log.iter().any(|e| e.id == id);
                    if !duplicate {
                        self.log.push(Record { term: self.term, id, payload: Some(payload) });
                        self.match_index[self.id] = self.last_log_index();
                        self.broadcast_append(net);
                        if self.n == 1 {
                            self.advance_commit();
                        }
                    }
                }
            }
        }
    }
}

/// A running Raft cluster over a simulated network.
pub struct RaftCluster<T: Clone + Send + Sync + 'static> {
    net: Arc<SimNet<RaftMsg<T>>>,
    views: Vec<Arc<NodeView<T>>>,
    shutdown: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_id: std::sync::atomic::AtomicU64,
}

impl<T: Clone + Send + Sync + 'static> RaftCluster<T> {
    /// Spawns `n` nodes with the given network fault model and timing.
    pub fn new(n: usize, net_config: NetConfig, timing: RaftTiming, seed: u64) -> Self {
        Self::with_subscribers(n, net_config, timing, seed, Vec::new())
    }

    /// Like [`RaftCluster::new`], additionally attaching a committed-entry
    /// subscriber channel to each node (index-aligned; missing = none).
    pub fn with_subscribers(
        n: usize,
        net_config: NetConfig,
        timing: RaftTiming,
        seed: u64,
        mut subscribers: Vec<Vec<Sender<LogEntry<T>>>>,
    ) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        subscribers.resize_with(n, Vec::new);
        let mut inboxes = Vec::new();
        let mut rxs: Vec<Receiver<RaftMsg<T>>> = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel();
            inboxes.push(tx);
            rxs.push(rx);
        }
        let net = Arc::new(SimNet::new(inboxes, net_config, seed));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut views = Vec::new();
        let mut handles = Vec::new();
        for (id, (rx, subs)) in rxs.into_iter().zip(subscribers).enumerate() {
            let view = Arc::new(NodeView::default());
            views.push(Arc::clone(&view));
            let net = Arc::clone(&net);
            let shutdown = Arc::clone(&shutdown);
            let timing = timing.clone();
            let handle = std::thread::Builder::new()
                .name(format!("raft-node-{id}"))
                .spawn(move || {
                    let mut node = Node {
                        id,
                        n,
                        term: 0,
                        voted_for: None,
                        log: Vec::new(),
                        commit_index: 0,
                        role: Role::Follower,
                        votes: 0,
                        next_index: vec![1; n],
                        match_index: vec![0; n],
                        leader_hint: None,
                        view,
                        subscribers: subs,
                        rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37)),
                        timing,
                        deadline: Instant::now(),
                    };
                    node.reset_election_deadline();
                    node_loop(&mut node, &net, &shutdown, rx);
                })
                .expect("spawn raft node");
            handles.push(handle);
        }
        RaftCluster { net, views, shutdown, handles, next_id: std::sync::atomic::AtomicU64::new(1) }
    }

    /// The simulated network (for partitions / fault injection).
    pub fn net(&self) -> &SimNet<RaftMsg<T>> {
        &self.net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The current leader, if any node believes it is one.
    pub fn leader(&self) -> Option<NodeId> {
        self.views.iter().position(|v| v.is_leader.load(Ordering::Acquire))
    }

    /// Every node currently believing it is leader. Stale claims are
    /// included: an isolated old leader keeps claiming leadership until it
    /// reconnects and observes the higher term.
    pub fn current_leaders(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&n| self.views[n].is_leader.load(Ordering::Acquire))
            .collect()
    }

    /// Waits until some node is leader.
    pub fn wait_for_leader(&self, timeout: Duration) -> Option<NodeId> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        None
    }

    /// Broadcasts a proposal (assigning it a fresh id) to every node; the
    /// leader appends it. Returns the id.
    pub fn propose(&self, payload: T) -> u64 {
        let id = self.next_id.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
        self.propose_with_id(id, payload);
        id
    }

    /// Re-broadcasts a proposal with a known id (idempotent thanks to
    /// leader-side dedup).
    pub fn propose_with_id(&self, id: u64, payload: T) {
        for node in 0..self.len() {
            // "from" does not matter for client messages; use the target.
            self.net.send(node, node, RaftMsg::Propose { id, payload: payload.clone() });
        }
    }

    /// Allocates a fresh proposal id without broadcasting anything. Pair
    /// with [`RaftCluster::propose_id_until_committed`] when the caller
    /// wants to retry a proposal across timeouts: reusing the id keeps the
    /// retries idempotent (leader-side dedup), so a batch can never be
    /// committed twice by an impatient client.
    pub fn begin_proposal(&self) -> u64 {
        self.next_id.fetch_add(1, std::sync::atomic::Ordering::AcqRel)
    }

    /// Re-broadcasts the proposal `id` until it commits somewhere or the
    /// timeout expires. Returns whether it committed. Safe to call
    /// repeatedly with the same id (and required to, when retrying).
    pub fn propose_id_until_committed(&self, id: u64, payload: &T, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.propose_with_id(id, payload.clone());
            let wait_until = (Instant::now() + Duration::from_millis(40)).min(deadline);
            while Instant::now() < wait_until {
                if self.proposal_committed(id) {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Whether some node has committed the proposal with this id.
    pub fn proposal_committed(&self, id: u64) -> bool {
        self.views.iter().any(|v| v.committed.read().iter().any(|e| e.id == id))
    }

    /// Proposes and re-broadcasts until the entry commits on `observer`,
    /// or the timeout expires. Returns whether it committed.
    pub fn propose_until_committed(&self, payload: T, timeout: Duration) -> bool {
        let id = self.begin_proposal();
        self.propose_id_until_committed(id, &payload, timeout)
    }

    /// Snapshot of `node`'s committed log payloads.
    pub fn committed(&self, node: NodeId) -> Vec<LogEntry<T>> {
        self.views[node].committed.read().clone()
    }

    /// Every `(node, term)` leadership claim observed so far — for
    /// checking the Election Safety property in tests.
    pub fn leadership_claims(&self) -> Vec<(NodeId, u64)> {
        let mut out = Vec::new();
        for (node, view) in self.views.iter().enumerate() {
            for term in view.leader_terms.read().iter() {
                out.push((node, *term));
            }
        }
        out
    }

    /// Waits until `node` has committed at least `count` entries.
    pub fn wait_for_committed(&self, node: NodeId, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.views[node].committed.read().len() >= count {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Stops all nodes and the network.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for RaftCluster<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn node_loop<T: Clone + Send + Sync + 'static>(
    node: &mut Node<T>,
    net: &SimNet<RaftMsg<T>>,
    shutdown: &AtomicBool,
    rx: Receiver<RaftMsg<T>>,
) {
    while !shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        let wait = node.deadline.saturating_duration_since(now).min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(msg) => node.handle(msg, net),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        if Instant::now() >= node.deadline {
            match node.role {
                Role::Leader => node.broadcast_append(net),
                Role::Follower | Role::Candidate => node.start_election(net),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, seed: u64) -> RaftCluster<u64> {
        RaftCluster::new(n, NetConfig::default(), RaftTiming::default(), seed)
    }

    #[test]
    fn elects_a_leader() {
        let c = cluster(3, 1);
        assert!(c.wait_for_leader(Duration::from_secs(5)).is_some());
    }

    #[test]
    fn single_node_cluster_commits_alone() {
        let c = cluster(1, 2);
        assert!(c.wait_for_leader(Duration::from_secs(5)).is_some());
        assert!(c.propose_until_committed(7, Duration::from_secs(5)));
        assert_eq!(c.committed(0).len(), 1);
        assert_eq!(c.committed(0)[0].payload, 7);
    }

    #[test]
    fn replicates_in_order_to_all_nodes() {
        let c = cluster(3, 3);
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        for i in 0..10u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(5)), "entry {i}");
        }
        for node in 0..3 {
            assert!(c.wait_for_committed(node, 10, Duration::from_secs(5)), "node {node}");
            let payloads: Vec<u64> = c.committed(node).iter().map(|e| e.payload).collect();
            assert_eq!(payloads, (0..10).collect::<Vec<_>>(), "node {node} order");
        }
    }

    #[test]
    fn commits_despite_message_loss() {
        let c = RaftCluster::new(
            3,
            NetConfig { drop_prob: 0.10, ..NetConfig::default() },
            RaftTiming::default(),
            4,
        );
        c.wait_for_leader(Duration::from_secs(10)).expect("leader despite loss");
        for i in 0..5u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
        }
        assert!(c.wait_for_committed(0, 5, Duration::from_secs(10)));
    }

    #[test]
    fn survives_leader_isolation() {
        let c = cluster(3, 5);
        let first = c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        assert!(c.propose_until_committed(1, Duration::from_secs(5)));
        // Cut the leader off; the rest must elect a replacement and keep
        // committing.
        c.net().isolate(first);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut second = None;
        while Instant::now() < deadline {
            if let Some(l) = (0..3).find(|&n| {
                n != first && c.views[n].is_leader.load(Ordering::Acquire)
            }) {
                second = Some(l);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let second = second.expect("new leader elected after isolation");
        assert_ne!(second, first);
        assert!(c.propose_until_committed(2, Duration::from_secs(10)));
        // Heal: the old leader catches up.
        c.net().reconnect(first);
        assert!(c.wait_for_committed(first, 2, Duration::from_secs(10)));
        let a: Vec<u64> = c.committed(first).iter().map(|e| e.payload).collect();
        let b: Vec<u64> = c.committed(second).iter().map(|e| e.payload).collect();
        assert_eq!(a, b[..a.len().min(b.len())].to_vec());
    }

    #[test]
    fn committed_prefixes_always_agree() {
        let c = cluster(5, 6);
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        for i in 0..20u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(5)));
        }
        for node in 0..5 {
            c.wait_for_committed(node, 20, Duration::from_secs(10));
        }
        let logs: Vec<Vec<u64>> =
            (0..5).map(|n| c.committed(n).iter().map(|e| e.payload).collect()).collect();
        for pair in logs.windows(2) {
            let min = pair[0].len().min(pair[1].len());
            assert_eq!(pair[0][..min], pair[1][..min], "prefix disagreement");
        }
    }

    #[test]
    fn election_safety_under_churn() {
        // Repeatedly isolate whoever is leader; across all the forced
        // elections, no term may ever have two distinct leaders.
        let c = cluster(5, 11);
        for round in 0..4 {
            let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
            assert!(c.propose_until_committed(round, Duration::from_secs(10)));
            c.net().isolate(leader);
            std::thread::sleep(Duration::from_millis(250));
            c.net().reconnect(leader);
        }
        let mut claims = c.leadership_claims();
        claims.sort_by_key(|&(_, term)| term);
        for pair in claims.windows(2) {
            if pair[0].1 == pair[1].1 {
                assert_eq!(
                    pair[0].0, pair[1].0,
                    "two different leaders in term {}",
                    pair[0].1
                );
            }
        }
        assert!(!claims.is_empty());
    }

    #[test]
    fn subscriber_stream_receives_commits() {
        let (tx, rx) = channel();
        let c = RaftCluster::with_subscribers(
            3,
            NetConfig::default(),
            RaftTiming::default(),
            7,
            vec![vec![tx]],
        );
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        assert!(c.propose_until_committed(99, Duration::from_secs(5)));
        let entry = rx.recv_timeout(Duration::from_secs(5)).expect("stream entry");
        assert_eq!(entry.payload, 99);
    }
}
