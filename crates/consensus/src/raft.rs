//! Raft-lite: leader election + log replication + commit, enough to give
//! every replica the same ordered stream of batches.
//!
//! The paper assumes a consensus layer (Paxos/Raft, §III-A) that delivers
//! identical batches in the same order to all replicas. This module
//! implements that contract over the [`crate::simnet::SimNet`]: seeded
//! election timeouts, per-term single votes, log-matching append, and
//! majority commit. Persistence and snapshots are provided through the
//! [`LogStore`] seam ([`crate::wal`]): every term/vote/log mutation is
//! saved before it takes effect, nodes can crash and restart from their
//! store, and a follower that has fallen behind the compaction horizon
//! catches up via an `InstallSnapshot` RPC instead of full log replay.
//! Still omitted relative to full Raft: membership changes.
//!
//! Election timeouts are *deterministic*: each node's jitter is a pure
//! function of `(seed, node, attempt)` and nodes occupy disjoint slots of
//! the jitter window (see [`election_jitter`]), so two candidates can
//! never pick the same timeout and tie forever.

use crate::simnet::{NetConfig, NodeId, SimNet};
use crate::wal::{DurabilityStats, HardState, LogStore, MemLogStore, SnapshotData};
use parking_lot::{Mutex, RwLock};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry<T> {
    /// Term the entry was appended in.
    pub term: u64,
    /// Client-assigned unique id (used to deduplicate re-proposals).
    pub id: u64,
    /// The payload (a transaction batch, in the full pipeline).
    pub payload: T,
}

/// A raw slot in the replicated log: either a client entry or a leader
/// no-op. Every new leader appends (and replicates) a no-op in its own
/// term immediately on election — the standard Raft device that lets it
/// commit the previous leader's tail without waiting for fresh client
/// traffic (§5.4.2 only allows counting replicas for current-term
/// entries). No-ops are invisible in [`NodeView::committed`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record<T> {
    /// Term the record was appended in.
    pub term: u64,
    /// Client-assigned id, or 0 for leader no-ops (client ids start at 1).
    pub id: u64,
    /// The client payload; `None` for leader no-ops.
    pub payload: Option<T>,
}

/// Messages exchanged by Raft nodes.
#[derive(Debug, Clone)]
pub enum RaftMsg<T> {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Candidate's id.
        candidate: NodeId,
        /// Index of the candidate's last log entry.
        last_log_index: u64,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote response.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Voter id.
        from: NodeId,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat).
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Leader id.
        leader: NodeId,
        /// Index of the entry preceding `entries`.
        prev_index: u64,
        /// Term of that entry.
        prev_term: u64,
        /// Records to append (client entries and leader no-ops).
        entries: Vec<Record<T>>,
        /// Leader's commit index.
        leader_commit: u64,
    },
    /// Append response.
    AppendResp {
        /// Follower's current term.
        term: u64,
        /// Follower id.
        from: NodeId,
        /// Whether the append matched.
        success: bool,
        /// Highest index known replicated on the follower.
        match_index: u64,
    },
    /// Leader ships its snapshot to a follower whose next index has been
    /// compacted away. Carries the full committed-prefix payload entries
    /// (cheap here: the batch log *is* the replica state).
    InstallSnapshot {
        /// Leader's term.
        term: u64,
        /// Leader id.
        leader: NodeId,
        /// The snapshot to install.
        snapshot: SnapshotData<T>,
    },
    /// Client proposal (only the leader acts on it).
    Propose {
        /// Client-assigned unique id.
        id: u64,
        /// The payload.
        payload: T,
    },
}

/// Timing knobs (kept small so tests converge quickly).
#[derive(Debug, Clone)]
pub struct RaftTiming {
    /// Minimum election timeout.
    pub election_min: Duration,
    /// Maximum election timeout.
    pub election_max: Duration,
    /// Leader heartbeat interval.
    pub heartbeat: Duration,
}

impl Default for RaftTiming {
    fn default() -> Self {
        RaftTiming {
            election_min: Duration::from_millis(80),
            election_max: Duration::from_millis(160),
            heartbeat: Duration::from_millis(25),
        }
    }
}

/// SplitMix64 finalizer — the deterministic hash behind election jitter.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic election-timeout jitter: a pure function of the run
/// seed, the node id, and the per-node election attempt counter.
///
/// The jitter window (`election_max - election_min`) is divided into
/// `nodes` disjoint slots and node `i` always lands inside slot `i`, so
/// **two distinct nodes can never pick the same timeout** — candidate
/// ties cannot repeat forever regardless of seed (the liveness regression
/// the old thread-RNG jitter could only make improbable).
pub fn election_jitter(
    seed: u64,
    node: NodeId,
    nodes: usize,
    attempt: u64,
    span: Duration,
) -> Duration {
    let span_ns = span.as_nanos().max(1) as u64;
    let slot = (span_ns / nodes.max(1) as u64).max(1);
    let base = slot.saturating_mul(node as u64).min(span_ns - 1);
    let h = mix64(seed ^ mix64((node as u64) << 32 | attempt));
    Duration::from_nanos(base + h % slot)
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// Shared observable state of one node (what tests and the pipeline read).
#[derive(Debug)]
pub struct NodeView<T> {
    /// Committed entries in order.
    pub committed: RwLock<Vec<LogEntry<T>>>,
    /// Current term (best effort, for diagnostics).
    pub term: RwLock<u64>,
    /// Whether this node currently believes itself leader.
    pub is_leader: AtomicBool,
    /// Every term in which this node won an election — lets tests check
    /// the Election Safety property (at most one leader per term).
    /// Preserved across crash/restart so safety checks span incarnations.
    pub leader_terms: RwLock<Vec<u64>>,
    /// The node's raft commit index (includes leader no-ops).
    pub commit_index: AtomicU64,
    /// How many snapshots this node has installed from a leader.
    pub snapshot_installs: AtomicU64,
}

impl<T> Default for NodeView<T> {
    fn default() -> Self {
        NodeView {
            committed: RwLock::new(Vec::new()),
            term: RwLock::new(0),
            is_leader: AtomicBool::new(false),
            leader_terms: RwLock::new(Vec::new()),
            commit_index: AtomicU64::new(0),
            snapshot_installs: AtomicU64::new(0),
        }
    }
}

/// Shared handle to a node's durable store.
pub type SharedLogStore<T> = Arc<Mutex<Box<dyn LogStore<T>>>>;

struct Node<T> {
    id: NodeId,
    n: usize,
    term: u64,
    voted_for: Option<NodeId>,
    /// In-memory log suffix; absolute index of `log[i]` is
    /// `log_base + i + 1` (indices are 1-based, `log_base` = last index
    /// covered by the snapshot).
    log: Vec<Record<T>>,
    log_base: u64,
    snapshot: Option<SnapshotData<T>>,
    /// Every client proposal id present in `log` or `snapshot`, kept in
    /// sync incrementally so proposal dedup is O(1) instead of an
    /// O(log-length) scan per `Propose`. Survives compaction because ids
    /// only *move* from the log into the snapshot's committed prefix;
    /// conflict truncation and snapshot installs resync it explicitly.
    known_ids: HashSet<u64>,
    commit_index: u64,
    role: Role,
    votes: usize,
    next_index: Vec<u64>,
    match_index: Vec<u64>,
    leader_hint: Option<NodeId>,
    view: Arc<NodeView<T>>,
    subscribers: Vec<Sender<LogEntry<T>>>,
    store: SharedLogStore<T>,
    compact_to: Arc<AtomicU64>,
    seed: u64,
    election_attempt: u64,
    timing: RaftTiming,
    deadline: Instant,
}

impl<T: Clone + Send + Sync + 'static> Node<T> {
    fn last_log_index(&self) -> u64 {
        self.log_base + self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log
            .last()
            .map(|e| e.term)
            .or_else(|| self.snapshot.as_ref().map(|s| s.last_term))
            .unwrap_or(0)
    }

    fn term_at(&self, index: u64) -> u64 {
        if index == 0 {
            0
        } else if index == self.log_base {
            self.snapshot.as_ref().map_or(0, |s| s.last_term)
        } else if index < self.log_base {
            0 // compacted away; callers never compare below the snapshot
        } else {
            self.log.get((index - self.log_base - 1) as usize).map_or(0, |e| e.term)
        }
    }

    /// Records a client proposal id as present. No-ops (id 0) are not
    /// tracked — only client proposals are deduplicated.
    fn note_id(&mut self, id: u64) {
        if id != 0 {
            self.known_ids.insert(id);
        }
    }

    /// Drops the ids of truncated records from the dedup set — unless the
    /// same id still exists in the remaining log or the snapshot (a
    /// conflicting leader can re-ship the same proposal under a new term).
    fn forget_ids(&mut self, removed: &[Record<T>]) {
        for rec in removed {
            if rec.id == 0 {
                continue;
            }
            let still_present = self.log.iter().any(|e| e.id == rec.id)
                || self
                    .snapshot
                    .as_ref()
                    .is_some_and(|s| s.entries.iter().any(|e| e.id == rec.id));
            if !still_present {
                self.known_ids.remove(&rec.id);
            }
        }
    }

    /// Rebuilds the dedup set from scratch — used after a leader-shipped
    /// snapshot replaces local state wholesale.
    fn rebuild_known_ids(&mut self) {
        self.known_ids = known_ids_of(&self.log, self.snapshot.as_ref());
    }

    fn persist_hard_state(&self) {
        self.store
            .lock()
            .save_hard_state(HardState { term: self.term, voted_for: self.voted_for });
    }

    fn reset_election_deadline(&mut self) {
        self.election_attempt += 1;
        let span = self.timing.election_max - self.timing.election_min;
        let jitter = election_jitter(self.seed, self.id, self.n, self.election_attempt, span);
        self.deadline = Instant::now() + self.timing.election_min + jitter;
    }

    /// Adopts a higher term and reverts to follower. For followers and
    /// candidates this deliberately does NOT reset the election deadline:
    /// the timer only resets on granting a vote or on valid leader
    /// contact. Resetting on mere term observation would let a
    /// stale-logged candidate (which can never win) perpetually suppress
    /// healthy nodes' timeouts — a livelock the deterministic slotted
    /// jitter would otherwise never escape.
    ///
    /// A *deposed leader* is the exception: its deadline is stale from
    /// its leadership tenure (leaders use it as a heartbeat timer), so
    /// without a reset it would time out instantly and — often holding
    /// the longest log — steal the election back, resurrecting entries
    /// the deposing majority had already abandoned. It instead waits out
    /// a full fresh slot, giving the in-flight election time to finish.
    fn become_follower(&mut self, term: u64) {
        if self.role == Role::Leader {
            self.reset_election_deadline();
        }
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.persist_hard_state();
        self.view.is_leader.store(false, Ordering::Release);
        *self.view.term.write() = term;
    }

    fn become_leader(&mut self, net: &SimNet<RaftMsg<T>>) {
        self.role = Role::Leader;
        self.view.is_leader.store(true, Ordering::Release);
        self.view.leader_terms.write().push(self.term);
        prognosticator_obs::Registry::global().counter("raft.leader_wins").inc();
        self.next_index = vec![self.last_log_index() + 1; self.n];
        self.match_index = vec![0; self.n];
        // Commit-visibility no-op: a leader may only count replicas for
        // entries of its own term, so without this a fresh leader would
        // sit on the previous leader's committed-but-unannounced tail
        // until the next client proposal arrived.
        let noop = Record { term: self.term, id: 0, payload: None };
        self.store.lock().append(&noop);
        self.log.push(noop);
        self.match_index[self.id] = self.last_log_index();
        self.deadline = Instant::now(); // heartbeat immediately
        self.broadcast_append(net);
        if self.n == 1 {
            self.advance_commit();
        }
    }

    fn start_election(&mut self, net: &SimNet<RaftMsg<T>>) {
        prognosticator_obs::Registry::global().counter("raft.elections").inc();
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.persist_hard_state();
        *self.view.term.write() = self.term;
        self.votes = 1;
        self.view.is_leader.store(false, Ordering::Release);
        self.reset_election_deadline();
        for peer in 0..self.n {
            if peer != self.id {
                net.send(
                    self.id,
                    peer,
                    RaftMsg::RequestVote {
                        term: self.term,
                        candidate: self.id,
                        last_log_index: self.last_log_index(),
                        last_log_term: self.last_log_term(),
                    },
                );
            }
        }
        // Single-node cluster: win immediately.
        if self.votes * 2 > self.n {
            self.become_leader(net);
        }
    }

    fn broadcast_append(&mut self, net: &SimNet<RaftMsg<T>>) {
        for peer in 0..self.n {
            if peer == self.id {
                continue;
            }
            let next = self.next_index[peer];
            if next <= self.log_base {
                // The entries this follower needs are compacted away:
                // ship the snapshot instead of replaying the log.
                if let Some(snap) = &self.snapshot {
                    net.send(
                        self.id,
                        peer,
                        RaftMsg::InstallSnapshot {
                            term: self.term,
                            leader: self.id,
                            snapshot: snap.clone(),
                        },
                    );
                    continue;
                }
            }
            let prev_index = next - 1;
            let prev_term = self.term_at(prev_index);
            let skip = (prev_index - self.log_base) as usize;
            let entries: Vec<Record<T>> = self.log.iter().skip(skip).cloned().collect();
            net.send(
                self.id,
                peer,
                RaftMsg::AppendEntries {
                    term: self.term,
                    leader: self.id,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit: self.commit_index,
                },
            );
        }
        self.deadline = Instant::now() + self.timing.heartbeat;
    }

    fn advance_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        for n in (self.commit_index + 1..=self.last_log_index()).rev() {
            if self.term_at(n) != self.term {
                continue;
            }
            let replicas = self.match_index.iter().filter(|&&m| m >= n).count();
            if replicas * 2 > self.n {
                self.set_commit(n);
                break;
            }
        }
    }

    fn set_commit(&mut self, index: u64) {
        let index = index.min(self.last_log_index());
        while self.commit_index < index {
            self.commit_index += 1;
            debug_assert!(self.commit_index > self.log_base, "commit below snapshot base");
            let rec = self.log[(self.commit_index - self.log_base - 1) as usize].clone();
            // Leader no-ops advance the commit index but are invisible to
            // clients: only records carrying a payload are published.
            if let Some(payload) = rec.payload {
                let entry = LogEntry { term: rec.term, id: rec.id, payload };
                self.view.committed.write().push(entry.clone());
                self.subscribers.retain(|s| s.send(entry.clone()).is_ok());
            }
        }
        self.view.commit_index.store(self.commit_index, Ordering::Release);
    }

    /// Compacts the log up to `min(watermark, commit_index)`: persists a
    /// snapshot of the full committed payload prefix and drops the
    /// covered records. A failed durable install (injected disk fault)
    /// skips compaction — the log stays authoritative and we retry later.
    fn maybe_compact(&mut self) {
        let want = self.compact_to.load(Ordering::Acquire).min(self.commit_index);
        if want <= self.log_base {
            return;
        }
        let mut entries = self.snapshot.as_ref().map_or_else(Vec::new, |s| s.entries.clone());
        for rec in &self.log[..(want - self.log_base) as usize] {
            if let Some(p) = &rec.payload {
                entries.push(LogEntry { term: rec.term, id: rec.id, payload: p.clone() });
            }
        }
        let snap = SnapshotData { last_index: want, last_term: self.term_at(want), entries };
        if self.store.lock().install_snapshot(&snap).is_err() {
            return;
        }
        self.log.drain(..(want - self.log_base) as usize);
        self.log_base = want;
        self.snapshot = Some(snap);
    }

    /// Installs a leader-shipped snapshot: persists it, replaces the
    /// covered log prefix, publishes any newly-visible committed entries.
    fn apply_snapshot(&mut self, snap: SnapshotData<T>) {
        let keep_suffix = self.last_log_index() > snap.last_index
            && self.term_at(snap.last_index) == snap.last_term;
        {
            let mut store = self.store.lock();
            if store.install_snapshot(&snap).is_err() {
                return; // durable install failed; leader will retry
            }
            if !keep_suffix {
                store.truncate_from(snap.last_index + 1);
            }
        }
        if keep_suffix {
            let covered = (snap.last_index - self.log_base) as usize;
            self.log.drain(..covered);
        } else {
            self.log.clear();
        }
        self.log_base = snap.last_index;
        {
            let mut committed = self.view.committed.write();
            let old_len = committed.len();
            for e in snap.entries.iter().skip(old_len) {
                committed.push(e.clone());
                self.subscribers.retain(|s| s.send(e.clone()).is_ok());
            }
        }
        if snap.last_index > self.commit_index {
            self.commit_index = snap.last_index;
            self.view.commit_index.store(self.commit_index, Ordering::Release);
        }
        self.view.snapshot_installs.fetch_add(1, Ordering::AcqRel);
        self.snapshot = Some(snap);
        self.rebuild_known_ids();
    }

    fn handle(&mut self, msg: RaftMsg<T>, net: &SimNet<RaftMsg<T>>) {
        match msg {
            RaftMsg::RequestVote { term, candidate, last_log_index, last_log_term } => {
                if term > self.term {
                    self.become_follower(term);
                }
                let up_to_date = (last_log_term, last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(candidate));
                if granted {
                    self.voted_for = Some(candidate);
                    self.persist_hard_state();
                    self.reset_election_deadline();
                }
                net.send(self.id, candidate, RaftMsg::Vote { term: self.term, from: self.id, granted });
            }
            RaftMsg::Vote { term, granted, .. } => {
                if term > self.term {
                    self.become_follower(term);
                    return;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes += 1;
                    if self.votes * 2 > self.n {
                        self.become_leader(net);
                    }
                }
            }
            RaftMsg::AppendEntries { term, leader, prev_index, prev_term, entries, leader_commit } => {
                self.handle_append_entries(term, leader, prev_index, prev_term, entries, leader_commit, net);
            }
            RaftMsg::InstallSnapshot { term, leader, snapshot } => {
                if term < self.term {
                    net.send(
                        self.id,
                        leader,
                        RaftMsg::AppendResp { term: self.term, from: self.id, success: false, match_index: 0 },
                    );
                    return;
                }
                if term > self.term {
                    self.become_follower(term);
                } else {
                    self.role = Role::Follower;
                    self.view.is_leader.store(false, Ordering::Release);
                }
                self.reset_election_deadline(); // valid leader contact
                self.leader_hint = Some(leader);
                if snapshot.last_index > self.commit_index {
                    self.apply_snapshot(snapshot);
                }
                net.send(
                    self.id,
                    leader,
                    RaftMsg::AppendResp {
                        term: self.term,
                        from: self.id,
                        success: true,
                        match_index: self.last_log_index(),
                    },
                );
            }
            RaftMsg::AppendResp { term, from, success, match_index } => {
                if term > self.term {
                    self.become_follower(term);
                    return;
                }
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                if success {
                    self.match_index[from] = self.match_index[from].max(match_index);
                    self.next_index[from] = self.match_index[from] + 1;
                    self.advance_commit();
                } else {
                    // Back off (to the follower's hint) and retry at the
                    // next heartbeat.
                    self.next_index[from] = (match_index + 1).max(1);
                }
            }
            RaftMsg::Propose { id, payload } => {
                if self.role == Role::Leader {
                    // O(1) dedup against every id in the log or snapshot;
                    // retried proposals (client timeouts) are absorbed here.
                    let duplicate = self.known_ids.contains(&id);
                    if !duplicate {
                        let rec = Record { term: self.term, id, payload: Some(payload) };
                        self.note_id(id);
                        self.store.lock().append(&rec);
                        self.log.push(rec);
                        self.match_index[self.id] = self.last_log_index();
                        self.broadcast_append(net);
                        if self.n == 1 {
                            self.advance_commit();
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_append_entries(
        &mut self,
        term: u64,
        leader: NodeId,
        mut prev_index: u64,
        mut prev_term: u64,
        mut entries: Vec<Record<T>>,
        leader_commit: u64,
        net: &SimNet<RaftMsg<T>>,
    ) {
        if term < self.term {
            net.send(
                self.id,
                leader,
                RaftMsg::AppendResp { term: self.term, from: self.id, success: false, match_index: 0 },
            );
            return;
        }
        if term > self.term {
            self.become_follower(term);
        } else if self.role != Role::Leader {
            self.role = Role::Follower;
            self.view.is_leader.store(false, Ordering::Release);
        } else {
            return; // two leaders in one term cannot happen
        }
        self.reset_election_deadline(); // valid leader contact
        self.leader_hint = Some(leader);
        if prev_index < self.log_base {
            // The leader's window starts below our snapshot: everything
            // up to log_base is committed state, so skip the overlap.
            let skip = (self.log_base - prev_index) as usize;
            if entries.len() <= skip {
                net.send(
                    self.id,
                    leader,
                    RaftMsg::AppendResp {
                        term: self.term,
                        from: self.id,
                        success: true,
                        match_index: self.last_log_index(),
                    },
                );
                return;
            }
            entries.drain(..skip);
            prev_index = self.log_base;
            prev_term = self.term_at(self.log_base);
        }
        // Log matching check.
        let ok = prev_index <= self.last_log_index() && self.term_at(prev_index) == prev_term;
        if ok {
            // Truncate conflicts and append (persisting each mutation).
            let mut index = prev_index;
            for entry in entries {
                index += 1;
                let pos = (index - self.log_base - 1) as usize;
                if pos < self.log.len() {
                    if self.log[pos].term != entry.term {
                        debug_assert!(index > self.commit_index, "conflicting entry below commit index");
                        let removed = self.log.split_off(pos);
                        let mut store = self.store.lock();
                        store.truncate_from(index);
                        store.append(&entry);
                        drop(store);
                        self.note_id(entry.id);
                        self.log.push(entry);
                        // Forget truncated ids *after* the replacement is
                        // in place, so a re-shipped id is not dropped.
                        self.forget_ids(&removed);
                    }
                } else {
                    self.note_id(entry.id);
                    self.store.lock().append(&entry);
                    self.log.push(entry);
                }
            }
            self.set_commit(leader_commit.min(self.last_log_index()));
            net.send(
                self.id,
                leader,
                RaftMsg::AppendResp {
                    term: self.term,
                    from: self.id,
                    success: true,
                    match_index: self.last_log_index(),
                },
            );
        } else {
            net.send(
                self.id,
                leader,
                RaftMsg::AppendResp {
                    term: self.term,
                    from: self.id,
                    success: false,
                    match_index: prev_index.saturating_sub(1),
                },
            );
        }
    }
}

/// Aggregated durability counters for a whole cluster.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityReport {
    /// Merged per-store counters (fsyncs, appends, snapshot writes, ...).
    pub store: DurabilityStats,
    /// Total snapshots installed from a leader across all nodes.
    pub snapshot_installs: u64,
}

/// One node's seat in the cluster: everything that outlives the node
/// thread across crash/restart cycles.
struct Seat<T> {
    view: Arc<NodeView<T>>,
    store: SharedLogStore<T>,
    compact_to: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    subscribers: Vec<Sender<LogEntry<T>>>,
}

/// A running Raft cluster over a simulated network.
pub struct RaftCluster<T: Clone + Send + Sync + 'static> {
    net: Arc<SimNet<RaftMsg<T>>>,
    seats: Vec<Seat<T>>,
    timing: RaftTiming,
    seed: u64,
    next_id: AtomicU64,
}

impl<T: Clone + Send + Sync + 'static> RaftCluster<T> {
    /// Spawns `n` nodes with the given network fault model and timing,
    /// each persisting into a hermetic in-memory [`MemLogStore`].
    pub fn new(n: usize, net_config: NetConfig, timing: RaftTiming, seed: u64) -> Self {
        Self::with_subscribers(n, net_config, timing, seed, Vec::new())
    }

    /// Like [`RaftCluster::new`], additionally attaching a committed-entry
    /// subscriber channel to each node (index-aligned; missing = none).
    ///
    /// Restarted nodes re-deliver entries committed after their snapshot,
    /// so subscribers see at-least-once delivery across crashes.
    pub fn with_subscribers(
        n: usize,
        net_config: NetConfig,
        timing: RaftTiming,
        seed: u64,
        subscribers: Vec<Vec<Sender<LogEntry<T>>>>,
    ) -> Self {
        let stores = (0..n)
            .map(|_| Box::new(MemLogStore::new()) as Box<dyn LogStore<T>>)
            .collect();
        Self::with_log_stores(n, net_config, timing, seed, subscribers, stores)
    }

    /// Spawns `n` nodes over caller-provided durable stores (one per
    /// node). Each node recovers its term, vote, snapshot, and log from
    /// its store before joining the cluster, so a store carried over from
    /// a previous incarnation resumes where it crashed.
    pub fn with_log_stores(
        n: usize,
        net_config: NetConfig,
        timing: RaftTiming,
        seed: u64,
        mut subscribers: Vec<Vec<Sender<LogEntry<T>>>>,
        stores: Vec<Box<dyn LogStore<T>>>,
    ) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        assert_eq!(stores.len(), n, "one store per node");
        subscribers.resize_with(n, Vec::new);
        let mut inboxes = Vec::new();
        let mut rxs: Vec<Receiver<RaftMsg<T>>> = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel();
            inboxes.push(tx);
            rxs.push(rx);
        }
        let net = Arc::new(SimNet::new(inboxes, net_config, seed));
        // Resume client-id allocation past anything already durable, so
        // fresh proposals are never swallowed by leader-side dedup
        // against entries recovered from a previous incarnation.
        let max_recovered_id = stores
            .iter()
            .flat_map(|s| {
                let from_log = s.records().into_iter().map(|r| r.id);
                let from_snap = s
                    .snapshot()
                    .into_iter()
                    .flat_map(|snap| snap.entries.into_iter().map(|e| e.id));
                from_log.chain(from_snap).collect::<Vec<_>>()
            })
            .max()
            .unwrap_or(0);
        let mut seats = Vec::new();
        for ((id, rx), (subs, store)) in
            (0..n).zip(rxs).zip(subscribers.into_iter().zip(stores))
        {
            let store: SharedLogStore<T> = Arc::new(Mutex::new(store));
            let view = Arc::new(NodeView::default());
            let compact_to = Arc::new(AtomicU64::new(0));
            let shutdown = Arc::new(AtomicBool::new(false));
            let handle = spawn_node_thread(
                id,
                n,
                Arc::clone(&net),
                timing.clone(),
                seed,
                Arc::clone(&view),
                Arc::clone(&store),
                Arc::clone(&compact_to),
                Arc::clone(&shutdown),
                subs.clone(),
                rx,
            );
            seats.push(Seat { view, store, compact_to, shutdown, handle: Some(handle), subscribers: subs });
        }
        RaftCluster { net, seats, timing, seed, next_id: AtomicU64::new(max_recovered_id + 1) }
    }

    /// The simulated network (for partitions / fault injection).
    pub fn net(&self) -> &SimNet<RaftMsg<T>> {
        &self.net
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.seats.len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.seats.is_empty()
    }

    /// The observable state of `node` (shared with its thread).
    pub fn node_view(&self, node: NodeId) -> Arc<NodeView<T>> {
        Arc::clone(&self.seats[node].view)
    }

    /// The current leader, if any node believes it is one.
    pub fn leader(&self) -> Option<NodeId> {
        self.seats.iter().position(|s| s.view.is_leader.load(Ordering::Acquire))
    }

    /// Every node currently believing it is leader. Stale claims are
    /// included: an isolated old leader keeps claiming leadership until it
    /// reconnects and observes the higher term.
    pub fn current_leaders(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&n| self.seats[n].view.is_leader.load(Ordering::Acquire))
            .collect()
    }

    /// Waits until some node is leader.
    pub fn wait_for_leader(&self, timeout: Duration) -> Option<NodeId> {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if let Some(l) = self.leader() {
                return Some(l);
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        None
    }

    /// Broadcasts a proposal (assigning it a fresh id) to every node; the
    /// leader appends it. Returns the id.
    pub fn propose(&self, payload: T) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        self.propose_with_id(id, payload);
        id
    }

    /// Re-broadcasts a proposal with a known id (idempotent thanks to
    /// leader-side dedup).
    pub fn propose_with_id(&self, id: u64, payload: T) {
        for node in 0..self.len() {
            // "from" does not matter for client messages; use the target.
            self.net.send(node, node, RaftMsg::Propose { id, payload: payload.clone() });
        }
    }

    /// Allocates a fresh proposal id without broadcasting anything. Pair
    /// with [`RaftCluster::propose_id_until_committed`] when the caller
    /// wants to retry a proposal across timeouts: reusing the id keeps the
    /// retries idempotent (leader-side dedup), so a batch can never be
    /// committed twice by an impatient client.
    pub fn begin_proposal(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::AcqRel)
    }

    /// Re-broadcasts the proposal `id` until it commits somewhere or the
    /// timeout expires. Returns whether it committed. Safe to call
    /// repeatedly with the same id (and required to, when retrying).
    pub fn propose_id_until_committed(&self, id: u64, payload: &T, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.propose_with_id(id, payload.clone());
            let wait_until = (Instant::now() + Duration::from_millis(40)).min(deadline);
            while Instant::now() < wait_until {
                if self.proposal_committed(id) {
                    return true;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            if Instant::now() >= deadline {
                return false;
            }
        }
    }

    /// Whether some node has committed the proposal with this id.
    pub fn proposal_committed(&self, id: u64) -> bool {
        self.seats.iter().any(|s| s.view.committed.read().iter().any(|e| e.id == id))
    }

    /// Proposes and re-broadcasts until the entry commits on `observer`,
    /// or the timeout expires. Returns whether it committed.
    pub fn propose_until_committed(&self, payload: T, timeout: Duration) -> bool {
        let id = self.begin_proposal();
        self.propose_id_until_committed(id, &payload, timeout)
    }

    /// Snapshot of `node`'s committed log payloads.
    pub fn committed(&self, node: NodeId) -> Vec<LogEntry<T>> {
        self.seats[node].view.committed.read().clone()
    }

    /// Every `(node, term)` leadership claim observed so far — for
    /// checking the Election Safety property in tests. Spans restarts.
    pub fn leadership_claims(&self) -> Vec<(NodeId, u64)> {
        let mut out = Vec::new();
        for (node, seat) in self.seats.iter().enumerate() {
            for term in seat.view.leader_terms.read().iter() {
                out.push((node, *term));
            }
        }
        out
    }

    /// Waits until `node` has committed at least `count` entries.
    pub fn wait_for_committed(&self, node: NodeId, count: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.seats[node].view.committed.read().len() >= count {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// Requests every node compact its log up to `index` (clamped to each
    /// node's own commit index). Wire this to the pipeline's commit
    /// watermark; nodes compact asynchronously in their main loop.
    pub fn compact_before(&self, index: u64) {
        for seat in &self.seats {
            seat.compact_to.fetch_max(index, Ordering::AcqRel);
        }
    }

    /// The highest raft commit index any node has reached.
    pub fn max_commit_index(&self) -> u64 {
        self.seats.iter().map(|s| s.view.commit_index.load(Ordering::Acquire)).max().unwrap_or(0)
    }

    /// Merged durability counters across all nodes' stores.
    pub fn durability_stats(&self) -> DurabilityReport {
        let mut report = DurabilityReport::default();
        for seat in &self.seats {
            report.store = report.store.merge(&seat.store.lock().stats());
            report.snapshot_installs += seat.view.snapshot_installs.load(Ordering::Acquire);
        }
        report
    }

    /// Arms a one-shot injected disk fault on `node`'s durable store,
    /// firing on its next matching WAL operation. A no-op for memory
    /// stores (see [`LogStore::arm_disk_fault`]) — chaos plans call this
    /// unconditionally and only WAL-backed clusters actually feel it.
    pub fn arm_disk_fault(&self, node: NodeId, fault: crate::wal::DiskFault) {
        self.seats[node].store.lock().arm_disk_fault(fault);
    }

    /// Whether `node` is currently running (not crashed).
    pub fn is_running(&self, node: NodeId) -> bool {
        self.seats[node].handle.is_some()
    }

    /// Kills `node`: its thread exits and its volatile state is lost.
    /// The durable store survives in the seat for [`RaftCluster::restart`].
    pub fn crash(&mut self, node: NodeId) {
        let seat = &mut self.seats[node];
        seat.shutdown.store(true, Ordering::Release);
        if let Some(h) = seat.handle.take() {
            let _ = h.join();
        }
        seat.view.is_leader.store(false, Ordering::Release);
    }

    /// Restarts a crashed node from its durable store: term, vote,
    /// snapshot, and retained log are recovered; committed entries beyond
    /// the snapshot are re-published as the node rejoins and catches up.
    pub fn restart(&mut self, node: NodeId) {
        let n = self.len();
        let seat = &mut self.seats[node];
        assert!(seat.handle.is_none(), "restart of a running node {node}");
        let (tx, rx) = channel();
        self.net.set_inbox(node, tx);
        let old_terms = seat.view.leader_terms.read().clone();
        let view = Arc::new(NodeView::default());
        *view.leader_terms.write() = old_terms;
        seat.view = Arc::clone(&view);
        seat.shutdown = Arc::new(AtomicBool::new(false));
        seat.handle = Some(spawn_node_thread(
            node,
            n,
            Arc::clone(&self.net),
            self.timing.clone(),
            self.seed,
            view,
            Arc::clone(&seat.store),
            Arc::clone(&seat.compact_to),
            Arc::clone(&seat.shutdown),
            seat.subscribers.clone(),
            rx,
        ));
    }

    /// Stops all nodes and the network.
    pub fn shutdown(&mut self) {
        for seat in &mut self.seats {
            seat.shutdown.store(true, Ordering::Release);
        }
        for seat in &mut self.seats {
            if let Some(h) = seat.handle.take() {
                let _ = h.join();
            }
        }
    }
}

impl<T: Clone + Send + Sync + 'static> Drop for RaftCluster<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns one node thread, recovering its state from `store` first.
#[allow(clippy::too_many_arguments)]
fn spawn_node_thread<T: Clone + Send + Sync + 'static>(
    id: NodeId,
    n: usize,
    net: Arc<SimNet<RaftMsg<T>>>,
    timing: RaftTiming,
    seed: u64,
    view: Arc<NodeView<T>>,
    store: SharedLogStore<T>,
    compact_to: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
    subscribers: Vec<Sender<LogEntry<T>>>,
    rx: Receiver<RaftMsg<T>>,
) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("raft-node-{id}"))
        .spawn(move || {
            // Recovery: rebuild volatile state from the durable store.
            let (hard, snapshot, log) = {
                let s = store.lock();
                (s.hard_state(), s.snapshot(), s.records())
            };
            let log_base = snapshot.as_ref().map_or(0, |s| s.last_index);
            let commit_index = log_base;
            if let Some(snap) = &snapshot {
                *view.committed.write() = snap.entries.clone();
                view.commit_index.store(log_base, Ordering::Release);
            }
            *view.term.write() = hard.term;
            let known_ids = known_ids_of(&log, snapshot.as_ref());
            let mut node = Node {
                id,
                n,
                term: hard.term,
                voted_for: hard.voted_for,
                log,
                log_base,
                snapshot,
                known_ids,
                commit_index,
                role: Role::Follower,
                votes: 0,
                next_index: vec![1; n],
                match_index: vec![0; n],
                leader_hint: None,
                view,
                subscribers,
                store,
                compact_to,
                seed,
                election_attempt: 0,
                timing,
                deadline: Instant::now(),
            };
            node.reset_election_deadline();
            node_loop(&mut node, &net, &shutdown, rx);
        })
        .expect("spawn raft node")
}

/// Collects every client proposal id present in a log suffix plus the
/// snapshot's committed prefix (leader no-ops, id 0, are excluded).
fn known_ids_of<T>(log: &[Record<T>], snapshot: Option<&SnapshotData<T>>) -> HashSet<u64> {
    let mut ids: HashSet<u64> = log.iter().filter(|r| r.id != 0).map(|r| r.id).collect();
    if let Some(s) = snapshot {
        ids.extend(s.entries.iter().filter(|e| e.id != 0).map(|e| e.id));
    }
    ids
}

fn node_loop<T: Clone + Send + Sync + 'static>(
    node: &mut Node<T>,
    net: &SimNet<RaftMsg<T>>,
    shutdown: &AtomicBool,
    rx: Receiver<RaftMsg<T>>,
) {
    while !shutdown.load(Ordering::Acquire) {
        let now = Instant::now();
        let wait = node.deadline.saturating_duration_since(now).min(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(msg) => node.handle(msg, net),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        node.maybe_compact();
        if Instant::now() >= node.deadline {
            match node.role {
                Role::Leader => node.broadcast_append(net),
                Role::Follower | Role::Candidate => node.start_election(net),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, seed: u64) -> RaftCluster<u64> {
        RaftCluster::new(n, NetConfig::default(), RaftTiming::default(), seed)
    }

    #[test]
    fn elects_a_leader() {
        let c = cluster(3, 1);
        assert!(c.wait_for_leader(Duration::from_secs(5)).is_some());
    }

    #[test]
    fn single_node_cluster_commits_alone() {
        let c = cluster(1, 2);
        assert!(c.wait_for_leader(Duration::from_secs(5)).is_some());
        assert!(c.propose_until_committed(7, Duration::from_secs(5)));
        assert_eq!(c.committed(0).len(), 1);
        assert_eq!(c.committed(0)[0].payload, 7);
    }

    #[test]
    fn replicates_in_order_to_all_nodes() {
        let c = cluster(3, 3);
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        for i in 0..10u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(5)), "entry {i}");
        }
        for node in 0..3 {
            assert!(c.wait_for_committed(node, 10, Duration::from_secs(5)), "node {node}");
            let payloads: Vec<u64> = c.committed(node).iter().map(|e| e.payload).collect();
            assert_eq!(payloads, (0..10).collect::<Vec<_>>(), "node {node} order");
        }
    }

    #[test]
    fn commits_despite_message_loss() {
        let c = RaftCluster::new(
            3,
            NetConfig { drop_prob: 0.10, ..NetConfig::default() },
            RaftTiming::default(),
            4,
        );
        c.wait_for_leader(Duration::from_secs(10)).expect("leader despite loss");
        for i in 0..5u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(10)), "entry {i}");
        }
        assert!(c.wait_for_committed(0, 5, Duration::from_secs(10)));
    }

    #[test]
    fn survives_leader_isolation() {
        let c = cluster(3, 5);
        let first = c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        assert!(c.propose_until_committed(1, Duration::from_secs(5)));
        // Cut the leader off; the rest must elect a replacement and keep
        // committing.
        c.net().isolate(first);
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut second = None;
        while Instant::now() < deadline {
            if let Some(l) = (0..3).find(|&n| {
                n != first && c.seats[n].view.is_leader.load(Ordering::Acquire)
            }) {
                second = Some(l);
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let second = second.expect("new leader elected after isolation");
        assert_ne!(second, first);
        assert!(c.propose_until_committed(2, Duration::from_secs(10)));
        // Heal: the old leader catches up.
        c.net().reconnect(first);
        assert!(c.wait_for_committed(first, 2, Duration::from_secs(10)));
        let a: Vec<u64> = c.committed(first).iter().map(|e| e.payload).collect();
        let b: Vec<u64> = c.committed(second).iter().map(|e| e.payload).collect();
        assert_eq!(a, b[..a.len().min(b.len())].to_vec());
    }

    #[test]
    fn committed_prefixes_always_agree() {
        let c = cluster(5, 6);
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        for i in 0..20u64 {
            assert!(c.propose_until_committed(i, Duration::from_secs(5)));
        }
        for node in 0..5 {
            c.wait_for_committed(node, 20, Duration::from_secs(10));
        }
        let logs: Vec<Vec<u64>> =
            (0..5).map(|n| c.committed(n).iter().map(|e| e.payload).collect()).collect();
        for pair in logs.windows(2) {
            let min = pair[0].len().min(pair[1].len());
            assert_eq!(pair[0][..min], pair[1][..min], "prefix disagreement");
        }
    }

    #[test]
    fn election_safety_under_churn() {
        // Repeatedly isolate whoever is leader; across all the forced
        // elections, no term may ever have two distinct leaders.
        let c = cluster(5, 11);
        for round in 0..4 {
            let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
            assert!(c.propose_until_committed(round, Duration::from_secs(10)));
            c.net().isolate(leader);
            std::thread::sleep(Duration::from_millis(250));
            c.net().reconnect(leader);
        }
        let mut claims = c.leadership_claims();
        claims.sort_by_key(|&(_, term)| term);
        for pair in claims.windows(2) {
            if pair[0].1 == pair[1].1 {
                assert_eq!(
                    pair[0].0, pair[1].0,
                    "two different leaders in term {}",
                    pair[0].1
                );
            }
        }
        assert!(!claims.is_empty());
    }

    #[test]
    fn subscriber_stream_receives_commits() {
        let (tx, rx) = channel();
        let c = RaftCluster::with_subscribers(
            3,
            NetConfig::default(),
            RaftTiming::default(),
            7,
            vec![vec![tx]],
        );
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        assert!(c.propose_until_committed(99, Duration::from_secs(5)));
        let entry = rx.recv_timeout(Duration::from_secs(5)).expect("stream entry");
        assert_eq!(entry.payload, 99);
    }

    #[test]
    fn election_jitter_slots_are_disjoint() {
        // Two distinct nodes may never draw the same timeout: their
        // jitter slots are disjoint sub-ranges of the window, for every
        // seed and attempt. This is the "two nodes never tie forever"
        // regression guard.
        let span = Duration::from_millis(80);
        for seed in [0u64, 1, 7, 0xdead_beef] {
            for attempt in 0..50u64 {
                let a = election_jitter(seed, 0, 2, attempt, span);
                let b = election_jitter(seed, 1, 2, attempt, span);
                assert!(a < span && b < span, "jitter inside the window");
                assert!(
                    a < span / 2 && b >= span / 2,
                    "slots must be disjoint (seed {seed} attempt {attempt}: {a:?} vs {b:?})"
                );
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn election_jitter_is_deterministic_but_varies_by_attempt() {
        let span = Duration::from_millis(80);
        let a1 = election_jitter(42, 1, 3, 1, span);
        let a1_again = election_jitter(42, 1, 3, 1, span);
        assert_eq!(a1, a1_again, "pure function of (seed, node, attempt)");
        let distinct: std::collections::HashSet<_> =
            (0..20u64).map(|att| election_jitter(42, 1, 3, att, span)).collect();
        assert!(distinct.len() > 10, "attempts must actually vary the jitter");
    }

    #[test]
    fn proposal_dedup_survives_snapshot_compaction() {
        let c = cluster(3, 17);
        c.wait_for_leader(Duration::from_secs(5)).expect("leader");
        let id = c.begin_proposal();
        assert!(c.propose_id_until_committed(id, &41, Duration::from_secs(5)));
        // Compact the committed prefix everywhere, so the original record
        // leaves every node's in-memory log and only the snapshot's
        // committed prefix still knows the id.
        c.compact_before(c.max_commit_index());
        let deadline = Instant::now() + Duration::from_secs(10);
        while c.durability_stats().store.snapshots_written < 3 {
            assert!(Instant::now() < deadline, "compaction never ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        // A retried proposal with the same id must be absorbed, not
        // re-appended: the dedup set outlives the compacted log.
        c.propose_with_id(id, 41);
        assert!(c.propose_until_committed(99, Duration::from_secs(5)), "fresh entry");
        for node in 0..3 {
            assert!(c.wait_for_committed(node, 2, Duration::from_secs(10)), "node {node}");
            let ids: Vec<u64> = c.committed(node).iter().map(|e| e.id).collect();
            assert_eq!(
                ids.iter().filter(|&&i| i == id).count(),
                1,
                "node {node}: id {id} must appear exactly once in {ids:?}"
            );
        }
    }

    #[test]
    fn leader_reemerges_and_commits_after_each_isolation() {
        // Liveness soak: every time the leader is cut off, a replacement
        // must take over and commit fresh traffic within a bounded
        // window, and the healed ex-leader must converge before the next
        // round of churn.
        let c = cluster(5, 13);
        let mut committed = 0usize;
        for round in 0..6u64 {
            let leader = c.wait_for_leader(Duration::from_secs(10)).expect("leader");
            c.net().isolate(leader);
            let started = Instant::now();
            let new_leader = loop {
                if let Some(l) = (0..5).find(|&n| {
                    n != leader && c.seats[n].view.is_leader.load(Ordering::Acquire)
                }) {
                    break l;
                }
                assert!(
                    started.elapsed() < Duration::from_secs(10),
                    "no replacement leader within bound (round {round})"
                );
                std::thread::sleep(Duration::from_millis(10));
            };
            assert_ne!(new_leader, leader);
            assert!(
                c.propose_until_committed(round, Duration::from_secs(10)),
                "no commit under isolation (round {round})"
            );
            committed += 1;
            c.net().reconnect(leader);
            assert!(
                c.wait_for_committed(leader, committed, Duration::from_secs(10)),
                "healed ex-leader never caught up (round {round})"
            );
        }
        // All that churn must never have produced two leaders in a term.
        let mut claims = c.leadership_claims();
        claims.sort_by_key(|&(_, term)| term);
        for pair in claims.windows(2) {
            if pair[0].1 == pair[1].1 {
                assert_eq!(pair[0].0, pair[1].0, "split brain in term {}", pair[0].1);
            }
        }
    }

    #[test]
    fn two_node_cluster_elects_quickly() {
        // The classic pathological case for randomized timeouts: n = 2,
        // where repeated split votes are possible. Slotted deterministic
        // jitter guarantees the node-0 candidate always times out first.
        for seed in 0..6u64 {
            let c = cluster(2, seed);
            assert!(
                c.wait_for_leader(Duration::from_secs(5)).is_some(),
                "two-node cluster must elect (seed {seed})"
            );
        }
    }
}
