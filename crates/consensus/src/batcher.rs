//! Client-side batching: collect requests into fixed-interval batches,
//! plus the retry/quarantine policy applied when a cut batch cannot be
//! ordered.
//!
//! The paper's Client Request Dispatcher "receives transactions from
//! external clients and is responsible for generating batches … within a
//! certain time window" (§III-A, §III-C). This batcher is generic over the
//! request type so the consensus crate stays independent of the
//! transaction layer. [`RetryPolicy`] bounds how long the dispatcher keeps
//! re-proposing a batch through transient consensus failures (leader
//! changes, partitions), and [`Quarantine`] holds poison batches that
//! exhausted their retries so one stuck proposal cannot wedge the stream.

use prognosticator_obs::{Counter, Registry};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a bounded admission attempt ([`Batcher::try_push`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission<T> {
    /// The item was admitted; a batch may have been cut by the size cap
    /// (retrievable via [`Batcher::take_ready`]).
    Accepted,
    /// The item was refused: admitting it would exceed the queue cap.
    /// The item is handed back so the client can retry later; `reason` is
    /// deterministic (a pure function of the cap and queue length) so
    /// replicas replaying the same schedule reject identically.
    Rejected {
        /// The refused item, returned to the caller.
        item: T,
        /// Deterministic, human-readable rejection reason.
        reason: String,
        /// Transactions queued (buffered + cut-but-untaken) at rejection
        /// time — the same number embedded in `reason`, structured so
        /// clients can back off proportionally to queue pressure.
        depth: usize,
        /// The admission cap in force at rejection time.
        cap: usize,
    },
}

/// Bounded retry-with-backoff for transient consensus failures.
///
/// Attempt `0` is the initial proposal; each subsequent attempt waits
/// [`RetryPolicy::backoff`] first, doubling the delay up to the cap. After
/// `max_attempts` total attempts the batch is considered poison and should
/// be [`Quarantine`]d instead of retried forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total proposal attempts (≥ 1); the first is not a retry.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, straight to quarantine).
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The delay to wait before retry attempt `attempt` (1-based: attempt
    /// `1` is the first retry). Exponential, capped at `max_backoff`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let shift = attempt.saturating_sub(1).min(32) as u32;
        let grown = self
            .initial_backoff
            .checked_mul(1u32 << shift.min(31))
            .unwrap_or(self.max_backoff);
        grown.min(self.max_backoff)
    }
}

/// A batch that exhausted its retries, kept aside with its failure story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined<T> {
    /// The poison payload, preserved for inspection or resubmission.
    pub payload: T,
    /// How many proposal attempts were made before giving up.
    pub attempts: usize,
    /// Human-readable reason recorded at quarantine time.
    pub reason: String,
}

/// Holding area for poison batches: proposals that kept failing after
/// bounded retries. Quarantining instead of retrying forever keeps the
/// dispatcher live; operators (or tests) can inspect and drain the
/// quarantine to re-inject payloads once the fault is resolved.
#[derive(Debug)]
pub struct Quarantine<T> {
    entries: Vec<Quarantined<T>>,
}

impl<T> Default for Quarantine<T> {
    fn default() -> Self {
        Quarantine { entries: Vec::new() }
    }
}

impl<T> Quarantine<T> {
    /// An empty quarantine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a poison payload.
    pub fn admit(&mut self, payload: T, attempts: usize, reason: impl Into<String>) {
        self.entries.push(Quarantined { payload, attempts, reason: reason.into() });
    }

    /// Number of quarantined payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The quarantined entries, oldest first.
    pub fn entries(&self) -> &[Quarantined<T>] {
        &self.entries
    }

    /// Removes and returns every quarantined entry (for resubmission).
    pub fn drain(&mut self) -> Vec<Quarantined<T>> {
        std::mem::take(&mut self.entries)
    }
}

/// Accumulates items and cuts a batch when the window elapses or the batch
/// reaches its size cap.
///
/// With a queue cap ([`Batcher::with_queue_cap`]) the batcher also bounds
/// the total transactions it holds — buffered plus cut-but-untaken — and
/// [`Batcher::try_push`] deterministically rejects admissions beyond the
/// cap instead of growing without bound while the dispatcher cannot
/// propose (e.g. during leader churn).
#[derive(Debug)]
pub struct Batcher<T> {
    window: Duration,
    max_size: usize,
    queue_cap: Option<usize>,
    buffer: Vec<T>,
    /// Batches cut by the size cap under [`Batcher::try_push`], awaiting
    /// [`Batcher::take_ready`]. They still count against the queue cap.
    ready: VecDeque<Vec<T>>,
    window_start: Instant,
    /// Global-registry admission/cut counters, shared by every batcher in
    /// the process (the registry is process-wide by design).
    m_accepted: Arc<Counter>,
    m_rejected: Arc<Counter>,
    m_cuts: Arc<Counter>,
}

impl<T> Batcher<T> {
    /// Creates a batcher cutting batches every `window`, or earlier when
    /// `max_size` items accumulate.
    ///
    /// # Panics
    /// Panics if `max_size` is zero.
    pub fn new(window: Duration, max_size: usize) -> Self {
        assert!(max_size > 0, "batch size cap must be positive");
        let reg = Registry::global();
        Batcher {
            window,
            max_size,
            queue_cap: None,
            buffer: Vec::new(),
            ready: VecDeque::new(),
            window_start: Instant::now(),
            m_accepted: reg.counter("batcher.admitted"),
            m_rejected: reg.counter("batcher.rejected"),
            m_cuts: reg.counter("batcher.batches_cut"),
        }
    }

    /// Like [`Batcher::new`], additionally bounding the total queued
    /// transactions (buffered + cut-but-untaken) at `queue_cap`;
    /// [`Batcher::try_push`] rejects admissions beyond it.
    ///
    /// A cap below `max_size` is allowed: the size cutter then never
    /// fires (the buffer cannot reach `max_size`) and batches are cut
    /// only by the window ([`Batcher::poll`]) or [`Batcher::flush`] — the
    /// cap becomes the effective maximum batch size.
    ///
    /// # Panics
    /// Panics if `max_size` or `queue_cap` is zero (a zero cap would
    /// reject every stream).
    pub fn with_queue_cap(window: Duration, max_size: usize, queue_cap: usize) -> Self {
        assert!(queue_cap > 0, "queue cap must be positive");
        let mut b = Self::new(window, max_size);
        b.queue_cap = Some(queue_cap);
        b
    }

    /// Adds an item; returns a finished batch if the size cap was hit.
    /// Does not consult the queue cap — use [`Batcher::try_push`] for
    /// bounded admission.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.buffer.push(item);
        if self.buffer.len() >= self.max_size {
            return Some(self.cut());
        }
        None
    }

    /// Bounded admission: refuses the item (handing it back) when the
    /// queue is at its cap, otherwise admits it, moving any size-capped
    /// batch to the ready queue ([`Batcher::take_ready`]).
    pub fn try_push(&mut self, item: T) -> Admission<T> {
        if let Some(cap) = self.queue_cap {
            let queued = self.queued();
            if queued >= cap {
                self.m_rejected.inc();
                return Admission::Rejected {
                    item,
                    reason: format!("admission queue full: {queued} of {cap} transactions pending"),
                    depth: queued,
                    cap,
                };
            }
        }
        self.m_accepted.inc();
        self.buffer.push(item);
        if self.buffer.len() >= self.max_size {
            let batch = self.cut();
            self.ready.push_back(batch);
        }
        Admission::Accepted
    }

    /// Pops the oldest batch cut by [`Batcher::try_push`], if any.
    pub fn take_ready(&mut self) -> Option<Vec<T>> {
        self.ready.pop_front()
    }

    /// Total transactions held: buffered plus cut-but-untaken.
    pub fn queued(&self) -> usize {
        self.buffer.len() + self.ready.iter().map(Vec::len).sum::<usize>()
    }

    /// The configured admission cap, if bounded.
    pub fn queue_cap(&self) -> Option<usize> {
        self.queue_cap
    }

    /// Returns a finished batch if the window has elapsed (empty windows
    /// produce no batch).
    pub fn poll(&mut self) -> Option<Vec<T>> {
        if self.window_start.elapsed() >= self.window && !self.buffer.is_empty() {
            return Some(self.cut());
        }
        None
    }

    /// Flushes whatever is buffered (end of stream).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.cut())
        }
    }

    /// Items currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Time remaining in the current window.
    pub fn time_to_cut(&self) -> Duration {
        self.window.saturating_sub(self.window_start.elapsed())
    }

    fn cut(&mut self) -> Vec<T> {
        self.window_start = Instant::now();
        self.m_cuts.inc();
        std::mem::take(&mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_on_size_cap() {
        let mut b = Batcher::new(Duration::from_secs(60), 3);
        assert!(b.push(1).is_none());
        assert!(b.push(2).is_none());
        let batch = b.push(3).expect("size cap");
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn cuts_on_window() {
        let mut b = Batcher::new(Duration::from_millis(10), 1000);
        b.push(1);
        assert!(b.poll().is_none(), "window not elapsed yet");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.poll(), Some(vec![1]));
        assert!(b.poll().is_none(), "empty window produces nothing");
    }

    #[test]
    fn flush_drains() {
        let mut b = Batcher::new(Duration::from_secs(60), 10);
        assert_eq!(b.flush(), None);
        b.push(5);
        assert_eq!(b.flush(), Some(vec![5]));
    }

    #[test]
    fn time_to_cut_counts_down() {
        let b: Batcher<u8> = Batcher::new(Duration::from_secs(1), 10);
        assert!(b.time_to_cut() <= Duration::from_secs(1));
    }

    #[test]
    fn try_push_rejects_at_cap_and_recovers_after_drain() {
        // Window never fires, batches of 2, at most 4 queued transactions.
        let mut b = Batcher::with_queue_cap(Duration::from_secs(60), 2, 4);
        for i in 0..4 {
            assert_eq!(b.try_push(i), Admission::Accepted, "item {i} fits under the cap");
        }
        assert_eq!(b.queued(), 4, "two cut batches queued");
        match b.try_push(99) {
            Admission::Rejected { item, reason, depth, cap } => {
                assert_eq!(item, 99, "rejected item handed back");
                assert_eq!(reason, "admission queue full: 4 of 4 transactions pending");
                assert_eq!(depth, 4, "structured depth matches the reason string");
                assert_eq!(cap, 4, "structured cap matches the reason string");
            }
            Admission::Accepted => panic!("cap must reject"),
        }
        // Deterministic: the same state rejects with the same reason.
        let again = b.try_push(99);
        assert!(matches!(&again, Admission::Rejected { reason, .. }
            if reason == "admission queue full: 4 of 4 transactions pending"));
        // Draining the ready queue frees capacity.
        assert_eq!(b.take_ready(), Some(vec![0, 1]));
        assert_eq!(b.try_push(99), Admission::Accepted);
        assert_eq!(b.take_ready(), Some(vec![2, 3]));
        assert_eq!(b.take_ready(), None);
        assert_eq!(b.queued(), 1, "the late item is buffered");
    }

    #[test]
    fn try_push_without_cap_never_rejects() {
        let mut b = Batcher::new(Duration::from_secs(60), 2);
        assert_eq!(b.queue_cap(), None);
        for i in 0..100 {
            assert_eq!(b.try_push(i), Admission::Accepted);
        }
        assert_eq!(b.queued(), 100);
        let first = b.take_ready().expect("size cap cut batches");
        assert_eq!(first, vec![0, 1]);
    }

    #[test]
    fn queue_cap_below_batch_size_bounds_via_window_cuts() {
        // Cap 3 under a size cap of 10: the size cutter can never fire,
        // so admission rejects at 3 buffered and flush cuts the batch.
        let mut b = Batcher::with_queue_cap(Duration::from_secs(60), 10, 3);
        for i in 0..3u8 {
            assert_eq!(b.try_push(i), Admission::Accepted);
        }
        assert!(matches!(b.try_push(9), Admission::Rejected { item: 9, .. }));
        assert_eq!(b.flush(), Some(vec![0, 1, 2]));
        assert_eq!(b.try_push(9), Admission::Accepted, "drained queue re-admits");
    }

    #[test]
    #[should_panic(expected = "queue cap must be positive")]
    fn zero_queue_cap_is_rejected() {
        let _ = Batcher::<u8>::with_queue_cap(Duration::from_secs(1), 10, 0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45), "capped");
        assert_eq!(p.backoff(100), Duration::from_millis(45), "huge attempts stay capped");
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }

    #[test]
    fn quarantine_admits_and_drains() {
        let mut q: Quarantine<Vec<u8>> = Quarantine::new();
        assert!(q.is_empty());
        q.admit(vec![1, 2], 3, "batch timed out");
        q.admit(vec![3], 2, "leader unreachable");
        assert_eq!(q.len(), 2);
        assert_eq!(q.entries()[0].payload, vec![1, 2]);
        assert_eq!(q.entries()[0].attempts, 3);
        assert_eq!(q.entries()[1].reason, "leader unreachable");
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
