//! Client-side batching: collect requests into fixed-interval batches.
//!
//! The paper's Client Request Dispatcher "receives transactions from
//! external clients and is responsible for generating batches … within a
//! certain time window" (§III-A, §III-C). This batcher is generic over the
//! request type so the consensus crate stays independent of the
//! transaction layer.

use std::time::{Duration, Instant};

/// Accumulates items and cuts a batch when the window elapses or the batch
/// reaches its size cap.
#[derive(Debug)]
pub struct Batcher<T> {
    window: Duration,
    max_size: usize,
    buffer: Vec<T>,
    window_start: Instant,
}

impl<T> Batcher<T> {
    /// Creates a batcher cutting batches every `window`, or earlier when
    /// `max_size` items accumulate.
    ///
    /// # Panics
    /// Panics if `max_size` is zero.
    pub fn new(window: Duration, max_size: usize) -> Self {
        assert!(max_size > 0, "batch size cap must be positive");
        Batcher { window, max_size, buffer: Vec::new(), window_start: Instant::now() }
    }

    /// Adds an item; returns a finished batch if the size cap was hit.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.buffer.push(item);
        if self.buffer.len() >= self.max_size {
            return Some(self.cut());
        }
        None
    }

    /// Returns a finished batch if the window has elapsed (empty windows
    /// produce no batch).
    pub fn poll(&mut self) -> Option<Vec<T>> {
        if self.window_start.elapsed() >= self.window && !self.buffer.is_empty() {
            return Some(self.cut());
        }
        None
    }

    /// Flushes whatever is buffered (end of stream).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.cut())
        }
    }

    /// Items currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Time remaining in the current window.
    pub fn time_to_cut(&self) -> Duration {
        self.window.saturating_sub(self.window_start.elapsed())
    }

    fn cut(&mut self) -> Vec<T> {
        self.window_start = Instant::now();
        std::mem::take(&mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_on_size_cap() {
        let mut b = Batcher::new(Duration::from_secs(60), 3);
        assert!(b.push(1).is_none());
        assert!(b.push(2).is_none());
        let batch = b.push(3).expect("size cap");
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn cuts_on_window() {
        let mut b = Batcher::new(Duration::from_millis(10), 1000);
        b.push(1);
        assert!(b.poll().is_none(), "window not elapsed yet");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.poll(), Some(vec![1]));
        assert!(b.poll().is_none(), "empty window produces nothing");
    }

    #[test]
    fn flush_drains() {
        let mut b = Batcher::new(Duration::from_secs(60), 10);
        assert_eq!(b.flush(), None);
        b.push(5);
        assert_eq!(b.flush(), Some(vec![5]));
    }

    #[test]
    fn time_to_cut_counts_down() {
        let b: Batcher<u8> = Batcher::new(Duration::from_secs(1), 10);
        assert!(b.time_to_cut() <= Duration::from_secs(1));
    }
}
