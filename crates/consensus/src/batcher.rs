//! Client-side batching: collect requests into fixed-interval batches,
//! plus the retry/quarantine policy applied when a cut batch cannot be
//! ordered.
//!
//! The paper's Client Request Dispatcher "receives transactions from
//! external clients and is responsible for generating batches … within a
//! certain time window" (§III-A, §III-C). This batcher is generic over the
//! request type so the consensus crate stays independent of the
//! transaction layer. [`RetryPolicy`] bounds how long the dispatcher keeps
//! re-proposing a batch through transient consensus failures (leader
//! changes, partitions), and [`Quarantine`] holds poison batches that
//! exhausted their retries so one stuck proposal cannot wedge the stream.

use std::time::{Duration, Instant};

/// Bounded retry-with-backoff for transient consensus failures.
///
/// Attempt `0` is the initial proposal; each subsequent attempt waits
/// [`RetryPolicy::backoff`] first, doubling the delay up to the cap. After
/// `max_attempts` total attempts the batch is considered poison and should
/// be [`Quarantine`]d instead of retried forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total proposal attempts (≥ 1); the first is not a retry.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, straight to quarantine).
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The delay to wait before retry attempt `attempt` (1-based: attempt
    /// `1` is the first retry). Exponential, capped at `max_backoff`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let shift = attempt.saturating_sub(1).min(32) as u32;
        let grown = self
            .initial_backoff
            .checked_mul(1u32 << shift.min(31))
            .unwrap_or(self.max_backoff);
        grown.min(self.max_backoff)
    }
}

/// A batch that exhausted its retries, kept aside with its failure story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantined<T> {
    /// The poison payload, preserved for inspection or resubmission.
    pub payload: T,
    /// How many proposal attempts were made before giving up.
    pub attempts: usize,
    /// Human-readable reason recorded at quarantine time.
    pub reason: String,
}

/// Holding area for poison batches: proposals that kept failing after
/// bounded retries. Quarantining instead of retrying forever keeps the
/// dispatcher live; operators (or tests) can inspect and drain the
/// quarantine to re-inject payloads once the fault is resolved.
#[derive(Debug)]
pub struct Quarantine<T> {
    entries: Vec<Quarantined<T>>,
}

impl<T> Default for Quarantine<T> {
    fn default() -> Self {
        Quarantine { entries: Vec::new() }
    }
}

impl<T> Quarantine<T> {
    /// An empty quarantine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a poison payload.
    pub fn admit(&mut self, payload: T, attempts: usize, reason: impl Into<String>) {
        self.entries.push(Quarantined { payload, attempts, reason: reason.into() });
    }

    /// Number of quarantined payloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The quarantined entries, oldest first.
    pub fn entries(&self) -> &[Quarantined<T>] {
        &self.entries
    }

    /// Removes and returns every quarantined entry (for resubmission).
    pub fn drain(&mut self) -> Vec<Quarantined<T>> {
        std::mem::take(&mut self.entries)
    }
}

/// Accumulates items and cuts a batch when the window elapses or the batch
/// reaches its size cap.
#[derive(Debug)]
pub struct Batcher<T> {
    window: Duration,
    max_size: usize,
    buffer: Vec<T>,
    window_start: Instant,
}

impl<T> Batcher<T> {
    /// Creates a batcher cutting batches every `window`, or earlier when
    /// `max_size` items accumulate.
    ///
    /// # Panics
    /// Panics if `max_size` is zero.
    pub fn new(window: Duration, max_size: usize) -> Self {
        assert!(max_size > 0, "batch size cap must be positive");
        Batcher { window, max_size, buffer: Vec::new(), window_start: Instant::now() }
    }

    /// Adds an item; returns a finished batch if the size cap was hit.
    pub fn push(&mut self, item: T) -> Option<Vec<T>> {
        self.buffer.push(item);
        if self.buffer.len() >= self.max_size {
            return Some(self.cut());
        }
        None
    }

    /// Returns a finished batch if the window has elapsed (empty windows
    /// produce no batch).
    pub fn poll(&mut self) -> Option<Vec<T>> {
        if self.window_start.elapsed() >= self.window && !self.buffer.is_empty() {
            return Some(self.cut());
        }
        None
    }

    /// Flushes whatever is buffered (end of stream).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        if self.buffer.is_empty() {
            None
        } else {
            Some(self.cut())
        }
    }

    /// Items currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }

    /// Time remaining in the current window.
    pub fn time_to_cut(&self) -> Duration {
        self.window.saturating_sub(self.window_start.elapsed())
    }

    fn cut(&mut self) -> Vec<T> {
        self.window_start = Instant::now();
        std::mem::take(&mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_on_size_cap() {
        let mut b = Batcher::new(Duration::from_secs(60), 3);
        assert!(b.push(1).is_none());
        assert!(b.push(2).is_none());
        let batch = b.push(3).expect("size cap");
        assert_eq!(batch, vec![1, 2, 3]);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn cuts_on_window() {
        let mut b = Batcher::new(Duration::from_millis(10), 1000);
        b.push(1);
        assert!(b.poll().is_none(), "window not elapsed yet");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.poll(), Some(vec![1]));
        assert!(b.poll().is_none(), "empty window produces nothing");
    }

    #[test]
    fn flush_drains() {
        let mut b = Batcher::new(Duration::from_secs(60), 10);
        assert_eq!(b.flush(), None);
        b.push(5);
        assert_eq!(b.flush(), Some(vec![5]));
    }

    #[test]
    fn time_to_cut_counts_down() {
        let b: Batcher<u8> = Batcher::new(Duration::from_secs(1), 10);
        assert!(b.time_to_cut() <= Duration::from_secs(1));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(45),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45), "capped");
        assert_eq!(p.backoff(100), Duration::from_millis(45), "huge attempts stay capped");
    }

    #[test]
    fn no_retries_policy_is_single_attempt() {
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }

    #[test]
    fn quarantine_admits_and_drains() {
        let mut q: Quarantine<Vec<u8>> = Quarantine::new();
        assert!(q.is_empty());
        q.admit(vec![1, 2], 3, "batch timed out");
        q.admit(vec![3], 2, "leader unreachable");
        assert_eq!(q.len(), 2);
        assert_eq!(q.entries()[0].payload, vec![1, 2]);
        assert_eq!(q.entries()[0].attempts, 3);
        assert_eq!(q.entries()[1].reason, "leader unreachable");
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert!(q.is_empty());
    }
}
