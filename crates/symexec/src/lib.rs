#![warn(missing_docs)]
//! Symbolic execution of transaction IR programs into *transaction
//! profiles* — the offline half of Prognosticator (paper §II–III.B).
//!
//! The entry point is [`analyze`] (or [`profile_program`] with default
//! optimizations): it explores every feasible execution path of a
//! [`prognosticator_txir::Program`] with symbolic inputs and produces a
//! [`Profile`] — a tree of path-set conditions whose leaves carry
//! read/write-set templates — plus [`AnalysisStats`] matching the columns
//! of the paper's Table I.
//!
//! ```
//! use prognosticator_txir::{ProgramBuilder, InputBound, Expr};
//! use prognosticator_symexec::{profile_program, TxClass};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new("transfer");
//! let acct = b.table("accounts");
//! let from = b.input("from", InputBound::int(0, 999));
//! let to = b.input("to", InputBound::int(0, 999));
//! let bal = b.var("bal");
//! b.get(bal, Expr::key(acct, vec![Expr::input(from)]));
//! b.put(Expr::key(acct, vec![Expr::input(from)]), Expr::var(bal).sub(Expr::lit(1)));
//! b.put(Expr::key(acct, vec![Expr::input(to)]), Expr::lit(1));
//! let program = b.build();
//!
//! let analysis = profile_program(&program)?;
//! assert_eq!(analysis.profile.class(), TxClass::Independent);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod explorer;
pub mod profile;
pub mod relevance;
pub mod rws;
pub mod solver;
pub mod specialize;
pub mod sym;

pub use codec::{decode_profile, encode_profile, DecodeError};
pub use explorer::{
    analyze, profile_program, Analysis, AnalysisStats, ExploreError, ExplorerConfig,
};
pub use profile::{PredictError, Profile, ProfileNode};
pub use relevance::Relevance;
pub use rws::{PivotResolver, Prediction, RwsEntry, RwsTemplate, TxClass};
pub use solver::{Sat, Solver};
pub use specialize::{
    apply_narrowing, fingerprint_inputs, predict_specialized, CachedPrediction,
    ProfileSpecialization, ProgSpecialization, SpecOutcome, SpecializationSet,
};
pub use sym::{ConcreteEnv, KeyTemplate, LoopVarId, PivotId, SymExpr};
