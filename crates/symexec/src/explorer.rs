//! The symbolic-execution engine: DFS path exploration with sibling
//! merging, concolic treatment of irrelevant data, and loop summarization.
//!
//! This module plays the role JPF + Symbolic PathFinder play in the paper
//! (§III-B): it executes a [`Program`] with symbolic inputs, forks at
//! branches whose condition is genuinely symbolic, prunes infeasible paths
//! through the [`Solver`], and assembles the [`Profile`] tree. Three
//! optimizations — individually switchable for the Table I ablation — keep
//! the state space manageable:
//!
//! * **relevance** (`ExplorerConfig::relevance`): concretize irrelevant
//!   inputs and store reads so conditions over them never fork;
//! * **merge** (`ExplorerConfig::merge`): after exploring both sides of a
//!   fork depth-first, collapse them when they produced identical subtrees
//!   (the paper's "redundant path" pruning);
//! * **loop summarization** (`ExplorerConfig::summarize_loops`): replace a
//!   uniform input-bounded loop by a single symbolic [`RwsEntry::Range`]
//!   instead of unrolling it (how `newOrder` yields one key-set).

use crate::profile::{Profile, ProfileNode};
use crate::relevance::{self, Relevance};
use crate::rws::{RwsEntry, RwsTemplate};
use crate::solver::{Sat, Solver};
use crate::sym::{KeyTemplate, LoopVarId, PivotId, SymExpr};
use prognosticator_txir::{
    EvalError, Expr, InputBound, Program, Stmt, UnOp, Value, VarId,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of one analysis run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorerConfig {
    /// Concolic irrelevant-variable optimization (paper: Soot pre-pass).
    pub relevance: bool,
    /// Sibling-subtree pruning after DFS returns (paper: merging).
    pub merge: bool,
    /// Summarize uniform symbolic-bound loops into `Range` entries.
    pub summarize_loops: bool,
    /// Abort exploration after this many symbolic states. The paper caps
    /// analysis time the same way and falls back to reconnaissance.
    pub max_states: u64,
    /// Abort exploration after this wall-clock budget.
    pub time_budget: Duration,
    /// Maximum iterations a concretely-bounded loop may unroll.
    pub max_concrete_iters: i64,
    /// Maximum path-constraint depth (bounds DFS recursion; exceeding it
    /// aborts the analysis like the state cap — relevant for unoptimized
    /// runs where pivot-bounded loops fork without limit).
    pub max_path_depth: u32,
    /// Enumeration limit handed to the solver.
    pub solver_enum_limit: u128,
    /// When > 0, a summarized loop whose *end bound* depends on a pivot is
    /// **widened**: the pivot-dependent bound is replaced by this constant
    /// hull, so the `Range` template predicts the full static span and
    /// drops its pivot dependency (the paper's §III-B over-approximation —
    /// a state-bounded scan becomes an independent transaction at the
    /// price of a loose RWS). Sound only when the dynamic trip count never
    /// exceeds the hull: the RWS-soundness oracle checks that empirically,
    /// and the engine's execution scope check turns a violation into a
    /// deterministic failure. `0` (the default) disables widening.
    pub widen_loop_hull: i64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            relevance: true,
            merge: true,
            summarize_loops: true,
            max_states: 1 << 22,
            time_budget: Duration::from_secs(60),
            max_concrete_iters: 4096,
            max_path_depth: 4096,
            solver_enum_limit: crate::solver::DEFAULT_ENUM_LIMIT,
            widen_loop_hull: 0,
        }
    }
}

impl ExplorerConfig {
    /// All optimizations enabled (the paper's "optimized" column).
    pub fn optimized() -> Self {
        Self::default()
    }

    /// All optimizations disabled (the paper's "unoptimized" column):
    /// every store read is symbolic, every symbolic branch forks, loops
    /// unroll, and nothing is merged.
    pub fn unoptimized() -> Self {
        ExplorerConfig {
            relevance: false,
            merge: false,
            summarize_loops: false,
            ..Self::default()
        }
    }
}

/// Statistics of one analysis run (the raw material of Table I).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisStats {
    /// Symbolic states created (initial + 2 per fork + summarization
    /// trials).
    pub states_explored: u64,
    /// Execution-path partitions before merging.
    pub paths: u64,
    /// Sibling subtrees collapsed by merging.
    pub merged: u64,
    /// Maximum path-constraint depth reached.
    pub max_depth: u32,
    /// Loops summarized into `Range` entries.
    pub loop_summarizations: u64,
    /// Summarized loops whose pivot-dependent end bound was widened to the
    /// configured static hull (`ExplorerConfig::widen_loop_hull`).
    pub loops_widened: u64,
    /// Infeasible branches pruned by the solver.
    pub pruned_infeasible: u64,
    /// Peak estimated bytes of live symbolic states during DFS.
    pub peak_live_bytes: usize,
    /// Estimated bytes of the final profile.
    pub profile_bytes: usize,
    /// Wall-clock analysis time.
    pub duration: Duration,
}

/// The outcome of a successful analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The transaction profile.
    pub profile: Profile,
    /// Run statistics.
    pub stats: AnalysisStats,
}

/// Errors aborting an analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// The state cap was exceeded; per the paper the transaction should be
    /// treated as dependent and key-sets obtained by reconnaissance.
    StateLimit(u64),
    /// The wall-clock budget was exceeded (same fallback as `StateLimit`).
    TimeBudget(Duration),
    /// A loop exceeded the concrete unrolling cap.
    LoopTooLong(i64),
    /// The path-constraint depth cap was exceeded (same reconnaissance
    /// fallback as `StateLimit`).
    DepthLimit(u32),
    /// The program used a construct the engine does not support
    /// symbolically (e.g. a symbolic loop *start*).
    Unsupported(&'static str),
    /// Evaluation failed (malformed program).
    Eval(EvalError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimit(n) => write!(f, "state limit exceeded ({n} states)"),
            ExploreError::TimeBudget(d) => write!(f, "time budget exceeded ({d:?})"),
            ExploreError::LoopTooLong(n) => write!(f, "concrete loop exceeds {n} iterations"),
            ExploreError::DepthLimit(d) => write!(f, "path depth limit exceeded ({d})"),
            ExploreError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            ExploreError::Eval(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ExploreError {
    fn from(e: EvalError) -> Self {
        ExploreError::Eval(e)
    }
}

/// Analyzes `program` with `config`, producing its profile and stats.
///
/// # Errors
/// See [`ExploreError`]; on `StateLimit`/`TimeBudget` the caller should
/// fall back to reconnaissance (the paper does the same).
pub fn analyze(program: &Program, config: &ExplorerConfig) -> Result<Analysis, ExploreError> {
    let start = Instant::now();
    let relevance = if config.relevance { Some(relevance::analyze(program)) } else { None };
    let bounds: Vec<InputBound> = program.inputs().iter().map(|s| s.bound.clone()).collect();
    let solver = Solver::new(bounds.clone()).with_enum_limit(config.solver_enum_limit);
    let mut ctx = Ctx {
        config,
        relevance,
        solver,
        bounds,
        pivot_ids: HashMap::new(),
        pivots: Vec::new(),
        loop_sites: HashMap::new(),
        stats: AnalysisStats::default(),
        live_bytes: 0,
        deadline: start + config.time_budget,
    };
    let machine = Machine {
        frames: vec![CFrame::Block { stmts: program.body(), idx: 0 }],
        vars: vec![SymExpr::Const(Value::Unit); program.var_count()],
        path: Vec::new(),
        reads: Vec::new(),
        writes: Vec::new(),
    };
    ctx.stats.states_explored = 1;
    let root = run(machine, &mut ctx)?;
    let mut stats = ctx.stats;
    let profile = Profile::new(program.name().to_owned(), root, ctx.pivots);
    stats.profile_bytes = profile.approx_size();
    stats.duration = start.elapsed();
    Ok(Analysis { profile, stats })
}

/// Convenience: analyze with all optimizations on.
///
/// # Errors
/// See [`analyze`].
pub fn profile_program(program: &Program) -> Result<Analysis, ExploreError> {
    analyze(program, &ExplorerConfig::optimized())
}

struct Ctx<'p> {
    config: &'p ExplorerConfig,
    relevance: Option<Relevance>,
    solver: Solver,
    bounds: Vec<InputBound>,
    /// Dedup: pivot key template → id (stable across paths).
    pivot_ids: HashMap<KeyTemplate, PivotId>,
    pivots: Vec<KeyTemplate>,
    /// Stable loop-variable ids per loop site (keyed by stmt address).
    loop_sites: HashMap<usize, LoopVarId>,
    stats: AnalysisStats,
    live_bytes: usize,
    deadline: Instant,
}

impl<'p> Ctx<'p> {
    fn pivot_for(&mut self, kt: &KeyTemplate) -> PivotId {
        if let Some(id) = self.pivot_ids.get(kt) {
            return *id;
        }
        let id = PivotId(self.pivots.len() as u32);
        self.pivot_ids.insert(kt.clone(), id);
        self.pivots.push(kt.clone());
        id
    }

    fn loop_var_for(&mut self, site: &Stmt) -> LoopVarId {
        let key = site as *const Stmt as usize;
        let next = LoopVarId(self.loop_sites.len() as u32);
        *self.loop_sites.entry(key).or_insert(next)
    }

    fn input_is_relevant(&self, i: usize) -> bool {
        self.relevance.as_ref().is_none_or(|r| r.input_is_relevant(i))
    }

    fn var_is_relevant(&self, v: VarId) -> bool {
        self.relevance.as_ref().is_none_or(|r| r.var_is_relevant(v))
    }

    fn check_budget(&self) -> Result<(), ExploreError> {
        if self.stats.states_explored > self.config.max_states {
            return Err(ExploreError::StateLimit(self.stats.states_explored));
        }
        if Instant::now() > self.deadline {
            return Err(ExploreError::TimeBudget(self.config.time_budget));
        }
        Ok(())
    }

    fn check_depth(&self, depth: usize) -> Result<(), ExploreError> {
        if depth as u32 > self.config.max_path_depth {
            return Err(ExploreError::DepthLimit(self.config.max_path_depth));
        }
        Ok(())
    }

    /// Deterministic concrete representative of an irrelevant input.
    fn representative(&self, i: usize) -> Value {
        match &self.bounds[i] {
            InputBound::Int { lo, .. } => Value::Int(*lo),
            InputBound::Choice(vs) => vs.first().cloned().unwrap_or(Value::Unit),
            InputBound::IntList { len_lo, elem_lo, .. } => {
                Value::list(vec![Value::Int(*elem_lo); *len_lo])
            }
            InputBound::Str => Value::str(""),
        }
    }
}

/// A control frame of a symbolic machine.
#[derive(Debug, Clone)]
enum CFrame<'p> {
    /// Executing a statement block.
    Block { stmts: &'p [Stmt], idx: usize },
    /// A loop with concrete bounds, unrolled iteration by iteration.
    ConcreteLoop { var: VarId, next: i64, end: i64, body: &'p [Stmt] },
    /// A loop with a symbolic end bound, forked on the guard each
    /// iteration (the unoptimized fallback).
    GuardLoop { var: VarId, next: i64, to: SymExpr, body: &'p [Stmt] },
}

/// One symbolic state: control stack + symbolic store + path constraint +
/// accumulated RWS.
#[derive(Debug, Clone)]
struct Machine<'p> {
    frames: Vec<CFrame<'p>>,
    vars: Vec<SymExpr>,
    path: Vec<SymExpr>,
    reads: Vec<RwsEntry>,
    writes: Vec<RwsEntry>,
}

impl<'p> Machine<'p> {
    fn approx_size(&self) -> usize {
        self.vars.iter().map(SymExpr::approx_size).sum::<usize>()
            + self.path.iter().map(SymExpr::approx_size).sum::<usize>()
            + self.reads.iter().map(RwsEntry::approx_size).sum::<usize>()
            + self.writes.iter().map(RwsEntry::approx_size).sum::<usize>()
            + self.frames.len() * std::mem::size_of::<CFrame<'_>>()
    }

    fn push_read(&mut self, e: RwsEntry) {
        if !self.reads.contains(&e) {
            self.reads.push(e);
        }
    }

    fn push_write(&mut self, e: RwsEntry) {
        if !self.writes.contains(&e) {
            self.writes.push(e);
        }
    }

    fn finish(self) -> RwsTemplate {
        RwsTemplate { reads: self.reads, writes: self.writes }
    }
}

enum Step<'p> {
    /// Keep stepping this machine.
    Continue,
    /// The machine finished one execution path.
    Done,
    /// The machine forked on `cond`. The machines are boxed so the
    /// no-data `Continue`/`Done` steps (the common case) stay small.
    Fork { cond: SymExpr, then_m: Box<Machine<'p>>, else_m: Box<Machine<'p>> },
}

/// Runs a machine to completion, returning the profile subtree below it.
fn run<'p>(machine: Machine<'p>, ctx: &mut Ctx<'p>) -> Result<ProfileNode, ExploreError> {
    let my_bytes = machine.approx_size();
    ctx.live_bytes += my_bytes;
    ctx.stats.peak_live_bytes = ctx.stats.peak_live_bytes.max(ctx.live_bytes);
    let result = run_inner(machine, ctx);
    ctx.live_bytes = ctx.live_bytes.saturating_sub(my_bytes);
    result
}

fn run_inner<'p>(
    mut machine: Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<ProfileNode, ExploreError> {
    loop {
        ctx.check_budget()?;
        ctx.check_depth(machine.path.len())?;
        match step(&mut machine, ctx)? {
            Step::Continue => {}
            Step::Done => {
                ctx.stats.paths += 1;
                ctx.stats.max_depth = ctx.stats.max_depth.max(machine.path.len() as u32);
                return Ok(ProfileNode::Leaf(machine.finish()));
            }
            Step::Fork { cond, then_m, else_m } => {
                ctx.stats.states_explored += 2;
                // Depth-first: finish the then-subtree before the else one,
                // so redundant siblings can be discarded immediately.
                let then_tree = run(*then_m, ctx)?;
                let else_tree = run(*else_m, ctx)?;
                if ctx.config.merge && then_tree == else_tree {
                    ctx.stats.merged += 1;
                    return Ok(then_tree);
                }
                return Ok(ProfileNode::Branch {
                    cond,
                    then: Box::new(then_tree),
                    els: Box::new(else_tree),
                });
            }
        }
    }
}

/// Executes one statement (or loop-control action) of `machine`.
fn step<'p>(machine: &mut Machine<'p>, ctx: &mut Ctx<'p>) -> Result<Step<'p>, ExploreError> {
    let Some(frame) = machine.frames.last_mut() else { return Ok(Step::Done) };
    match frame {
        CFrame::Block { stmts, idx } => {
            if *idx >= stmts.len() {
                machine.frames.pop();
                return Ok(Step::Continue);
            }
            let stmt = &stmts[*idx];
            *idx += 1;
            exec_stmt(stmt, machine, ctx)
        }
        CFrame::ConcreteLoop { var, next, end, body } => {
            if *next < *end {
                let (var, i, body) = (*var, *next, *body);
                *next += 1;
                machine.vars[var.0] = SymExpr::int(i);
                machine.frames.push(CFrame::Block { stmts: body, idx: 0 });
            } else {
                machine.frames.pop();
            }
            Ok(Step::Continue)
        }
        CFrame::GuardLoop { var, next, to, body } => {
            let cond = SymExpr::bin(
                prognosticator_txir::BinOp::Lt,
                SymExpr::int(*next),
                to.clone(),
            );
            match cond.as_const() {
                Some(Value::Bool(true)) => {
                    let (var, i, body) = (*var, *next, *body);
                    *next += 1;
                    machine.vars[var.0] = SymExpr::int(i);
                    machine.frames.push(CFrame::Block { stmts: body, idx: 0 });
                    Ok(Step::Continue)
                }
                Some(Value::Bool(false)) => {
                    machine.frames.pop();
                    Ok(Step::Continue)
                }
                Some(other) => Err(ExploreError::Eval(EvalError::TypeMismatch {
                    expected: "bool",
                    got: other.clone(),
                })),
                None => {
                    // Fork on the guard.
                    let (var, i, body) = (*var, *next, *body);
                    fork_on(machine, ctx, cond, move |m| {
                        // then: enter the body with var = i, bump counter.
                        if let Some(CFrame::GuardLoop { next, .. }) = m.frames.last_mut() {
                            *next = i + 1;
                        }
                        m.vars[var.0] = SymExpr::int(i);
                        m.frames.push(CFrame::Block { stmts: body, idx: 0 });
                    }, |m| {
                        // else: exit the loop.
                        m.frames.pop();
                    })
                }
            }
        }
    }
}

/// Builds the fork step for `cond`, applying the continuation closures to
/// the respective machines, and pruning infeasible sides via the solver.
fn fork_on<'p>(
    machine: &mut Machine<'p>,
    ctx: &mut Ctx<'p>,
    cond: SymExpr,
    then_k: impl FnOnce(&mut Machine<'p>),
    else_k: impl FnOnce(&mut Machine<'p>),
) -> Result<Step<'p>, ExploreError> {
    let neg = SymExpr::un(UnOp::Not, cond.clone());

    let mut then_path = machine.path.clone();
    then_path.push(cond.clone());
    let then_sat = ctx.solver.check(&then_path) == Sat::Sat;

    let mut else_path = machine.path.clone();
    else_path.push(neg.clone());
    let else_sat = ctx.solver.check(&else_path) == Sat::Sat;

    match (then_sat, else_sat) {
        (true, true) => {
            let mut then_m = machine.clone();
            then_m.path = then_path;
            then_k(&mut then_m);
            let mut else_m = std::mem::replace(machine, Machine {
                frames: Vec::new(),
                vars: Vec::new(),
                path: Vec::new(),
                reads: Vec::new(),
                writes: Vec::new(),
            });
            else_m.path = else_path;
            else_k(&mut else_m);
            Ok(Step::Fork { cond, then_m: Box::new(then_m), else_m: Box::new(else_m) })
        }
        (true, false) => {
            ctx.stats.pruned_infeasible += 1;
            machine.path = then_path;
            then_k(machine);
            Ok(Step::Continue)
        }
        (false, true) => {
            ctx.stats.pruned_infeasible += 1;
            machine.path = else_path;
            else_k(machine);
            Ok(Step::Continue)
        }
        (false, false) => {
            // The whole path is infeasible (can only happen through solver
            // over-approximation upstream); treat as a dead end with an
            // empty continuation — finish the path as-is.
            ctx.stats.pruned_infeasible += 2;
            machine.frames.clear();
            Ok(Step::Continue)
        }
    }
}

fn exec_stmt<'p>(
    stmt: &'p Stmt,
    machine: &mut Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<Step<'p>, ExploreError> {
    match stmt {
        Stmt::Assign(v, e) => {
            machine.vars[v.0] = sym_eval(e, machine, ctx)?;
            Ok(Step::Continue)
        }
        Stmt::Get(v, key_expr) => {
            let kt = eval_key(key_expr, machine, ctx)?;
            machine.push_read(RwsEntry::Single(kt.clone()));
            if ctx.var_is_relevant(*v) {
                // The value read may influence keys/paths: a pivot.
                let p = ctx.pivot_for(&kt);
                machine.vars[v.0] = SymExpr::Pivot(p);
            } else {
                // Concolic: irrelevant store reads become a deterministic
                // placeholder so conditions over them never fork.
                machine.vars[v.0] = SymExpr::Const(Value::Unit);
            }
            Ok(Step::Continue)
        }
        Stmt::Put(key_expr, val_expr) => {
            let kt = eval_key(key_expr, machine, ctx)?;
            // Evaluate the value for error detection, then discard: values
            // written do not affect the RWS.
            let _ = sym_eval(val_expr, machine, ctx)?;
            machine.push_write(RwsEntry::Single(kt));
            Ok(Step::Continue)
        }
        Stmt::If(cond_expr, then_b, else_b) => {
            let cond = sym_eval(cond_expr, machine, ctx)?;
            match cond.as_const() {
                Some(Value::Bool(true)) => {
                    machine.frames.push(CFrame::Block { stmts: then_b, idx: 0 });
                    Ok(Step::Continue)
                }
                Some(Value::Bool(false)) => {
                    machine.frames.push(CFrame::Block { stmts: else_b, idx: 0 });
                    Ok(Step::Continue)
                }
                Some(other) => Err(ExploreError::Eval(EvalError::TypeMismatch {
                    expected: "bool",
                    got: other.clone(),
                })),
                None => fork_on(
                    machine,
                    ctx,
                    cond,
                    |m| m.frames.push(CFrame::Block { stmts: then_b, idx: 0 }),
                    |m| m.frames.push(CFrame::Block { stmts: else_b, idx: 0 }),
                ),
            }
        }
        Stmt::For { var, from, to, body } => {
            let from_s = sym_eval(from, machine, ctx)?;
            let to_s = sym_eval(to, machine, ctx)?;
            let Some(from_c) = from_s.as_const().and_then(Value::as_int) else {
                return Err(ExploreError::Unsupported("symbolic loop start"));
            };
            if let Some(to_c) = to_s.as_const().and_then(Value::as_int) {
                if to_c.saturating_sub(from_c) > ctx.config.max_concrete_iters {
                    return Err(ExploreError::LoopTooLong(ctx.config.max_concrete_iters));
                }
                machine.frames.push(CFrame::ConcreteLoop {
                    var: *var,
                    next: from_c,
                    end: to_c,
                    body,
                });
                return Ok(Step::Continue);
            }
            // Symbolic end bound.
            if ctx.config.summarize_loops {
                if let Some(()) = try_summarize(stmt, from_c, &to_s, machine, ctx)? {
                    return Ok(Step::Continue);
                }
            }
            machine.frames.push(CFrame::GuardLoop { var: *var, next: from_c, to: to_s, body });
            Ok(Step::Continue)
        }
        Stmt::SetField(v, field, e) => {
            let val = sym_eval(e, machine, ctx)?;
            let base = std::mem::replace(&mut machine.vars[v.0], SymExpr::Const(Value::Unit));
            machine.vars[v.0] = SymExpr::set_field(base, *field, val)?;
            Ok(Step::Continue)
        }
        Stmt::Emit(e) => {
            // Emitted values do not affect the RWS; evaluate for error
            // detection only.
            let _ = sym_eval(e, machine, ctx)?;
            Ok(Step::Continue)
        }
    }
}

/// Attempts to summarize the loop `stmt` (with concrete start `from_c` and
/// symbolic end `to_s`). Returns `Ok(Some(()))` and updates `machine` on
/// success, `Ok(None)` when the loop is not uniform.
fn try_summarize<'p>(
    stmt: &'p Stmt,
    from_c: i64,
    to_s: &SymExpr,
    machine: &mut Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<Option<()>, ExploreError> {
    let Stmt::For { var, body, .. } = stmt else { unreachable!("caller matched For") };
    let lv = ctx.loop_var_for(stmt);

    // Loop-carried safety: a variable both assigned in the body and read
    // before its (unconditional) first write carries state across
    // iterations — only safe if the trial run leaves it unchanged.
    let assigned = assigned_vars_block(body);
    let rbw = read_before_write(body);

    // Trial: symbolically execute the body once with var = LoopVar(lv).
    let mut trial = Machine {
        frames: vec![CFrame::Block { stmts: body, idx: 0 }],
        vars: machine.vars.clone(),
        path: machine.path.clone(),
        reads: Vec::new(),
        writes: Vec::new(),
    };
    trial.vars[var.0] = SymExpr::LoopVar(lv);
    let initial_vars = trial.vars.clone();
    ctx.stats.states_explored += 1;

    // The trial must collapse to a single leaf: run it through the same
    // engine; a Branch result means per-iteration control flow survives
    // and the loop is not uniform.
    let trial_result = run_trial(trial, ctx)?;
    let Some((final_vars, reads, writes)) = trial_result else { return Ok(None) };

    // Safety checks. A loop-carried variable only endangers the RWS when
    // it is *relevant* (can flow into key identities): e.g. `total +=
    // price*qty` in TPC-C newOrder is carried but value-only, so the loop
    // still summarizes (its post-loop value becomes an opaque placeholder).
    for v in &assigned {
        if *v == *var {
            continue;
        }
        let carried = rbw.contains(v);
        let changed = final_vars[v.0] != initial_vars[v.0];
        if carried && changed && ctx.var_is_relevant(*v) {
            return Ok(None); // genuine loop-carried dependency on the RWS
        }
    }
    // Variables assigned in the body whose final value references the loop
    // variable are only meaningful inside an iteration; if such a variable
    // is read later in the program and is relevant, give up.
    let later = stmts_after(machine);
    for v in &assigned {
        if final_vars[v.0].mentions_loop_var() && ctx.var_is_relevant(*v) {
            let read_later = later.iter().any(|s| stmt_reads_var(s, *v));
            if read_later {
                return Ok(None);
            }
        }
    }

    // Commit: record the Range entries and advance past the loop. A
    // pivot-dependent end bound is widened to the configured static hull
    // (over-approximating the span, dropping the pivot dependency); the
    // trip count is then the workload's responsibility to keep under the
    // hull, and the runtime adaptation layer narrows the slack back.
    let to_committed = if ctx.config.widen_loop_hull > 0 && to_s.mentions_pivot() {
        ctx.stats.loops_widened += 1;
        SymExpr::int(ctx.config.widen_loop_hull)
    } else {
        to_s.clone()
    };
    if !reads.is_empty() {
        machine.push_read(RwsEntry::Range {
            loop_var: lv,
            from: SymExpr::int(from_c),
            to: to_committed.clone(),
            entries: reads,
        });
    }
    if !writes.is_empty() {
        machine.push_write(RwsEntry::Range {
            loop_var: lv,
            from: SymExpr::int(from_c),
            to: to_committed,
            entries: writes,
        });
    }
    for v in &assigned {
        let carried = rbw.contains(v) && final_vars[v.0] != initial_vars[v.0];
        machine.vars[v.0] = if carried || final_vars[v.0].mentions_loop_var() {
            // Iteration-dependent value: opaque after the loop (it cannot
            // reach a key, per the checks above).
            SymExpr::Const(Value::Unit)
        } else {
            final_vars[v.0].clone()
        };
    }
    machine.vars[var.0] = SymExpr::Const(Value::Unit);
    ctx.stats.loop_summarizations += 1;
    Ok(Some(()))
}

/// A converged trial outcome: (final variable state, reads, writes).
type TrialState = (Vec<SymExpr>, Vec<RwsEntry>, Vec<RwsEntry>);

/// Runs a trial machine for summarization; returns the final variable
/// state and collected RWS if the body collapsed to a single leaf, `None`
/// otherwise. Forks inside the trial are explored like normal states but
/// must merge away.
fn run_trial<'p>(
    machine: Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<Option<TrialState>, ExploreError> {
    // Reuse the main engine: if the body's exploration yields a Leaf, the
    // iteration is uniform. We additionally need the final vars, which the
    // tree does not carry — so run a dedicated linear execution that fails
    // on any surviving fork.
    let mut m = machine;
    loop {
        ctx.check_budget()?;
        match step(&mut m, ctx)? {
            Step::Continue => {}
            Step::Done => return Ok(Some((m.vars, m.reads, m.writes))),
            Step::Fork { cond, then_m, else_m } => {
                // A surviving fork: only acceptable if both sides converge
                // to identical leaves *and* identical final vars; that is
                // exactly "both sides do the same thing", so explore the
                // then-side and compare with the else-side.
                let t = run_trial(*then_m, ctx)?;
                let e = run_trial(*else_m, ctx)?;
                let _ = cond;
                return match (t, e) {
                    (Some(a), Some(b)) if a == b => Ok(Some(a)),
                    _ => Ok(None),
                };
            }
        }
    }
}

fn assigned_vars_block(block: &[Stmt]) -> Vec<VarId> {
    let mut out = Vec::new();
    for s in block {
        s.visit(&mut |st| {
            let v = match st {
                Stmt::Assign(v, _) | Stmt::Get(v, _) | Stmt::SetField(v, _, _) => *v,
                Stmt::For { var, .. } => *var,
                _ => return,
            };
            if !out.contains(&v) {
                out.push(v);
            }
        });
    }
    out
}

/// Variables read before being definitely written. Writes inside nested
/// control flow are definite *within* that block (so they mask reads that
/// follow them there) but not for statements after the block, since the
/// block may not execute; a `For` additionally initializes its own
/// induction variable before its body runs.
fn read_before_write(block: &[Stmt]) -> Vec<VarId> {
    let mut rbw: Vec<VarId> = Vec::new();
    rbw_scan(block, Vec::new(), &mut rbw);
    rbw
}

/// Scans `block` with the incoming definitely-written set; returns the
/// definitely-written set after the block's straight-line statements.
fn rbw_scan(block: &[Stmt], mut written: Vec<VarId>, rbw: &mut Vec<VarId>) -> Vec<VarId> {
    let note_reads = |e: &Expr, written: &[VarId], rbw: &mut Vec<VarId>| {
        for v in e.vars() {
            if !written.contains(&v) && !rbw.contains(&v) {
                rbw.push(v);
            }
        }
    };
    for s in block {
        match s {
            Stmt::Assign(v, e) => {
                note_reads(e, &written, rbw);
                if !written.contains(v) {
                    written.push(*v);
                }
            }
            Stmt::Get(v, key) => {
                note_reads(key, &written, rbw);
                if !written.contains(v) {
                    written.push(*v);
                }
            }
            Stmt::Put(k, val) => {
                note_reads(k, &written, rbw);
                note_reads(val, &written, rbw);
            }
            Stmt::SetField(v, _, e) => {
                note_reads(e, &written, rbw);
                // SetField reads the old record value too.
                if !written.contains(v) && !rbw.contains(v) {
                    rbw.push(*v);
                }
            }
            Stmt::Emit(e) => note_reads(e, &written, rbw),
            Stmt::If(c, t, e) => {
                note_reads(c, &written, rbw);
                // Branch-local writes mask branch-local reads, but are not
                // definite for what follows the If.
                let _ = rbw_scan(t, written.clone(), rbw);
                let _ = rbw_scan(e, written.clone(), rbw);
            }
            Stmt::For { var, from, to, body } => {
                note_reads(from, &written, rbw);
                note_reads(to, &written, rbw);
                // The loop initializes its induction variable before the
                // body runs; body writes are not definite after the loop.
                let mut inner = written.clone();
                if !inner.contains(var) {
                    inner.push(*var);
                }
                let _ = rbw_scan(body, inner, rbw);
            }
        }
    }
    written
}

fn stmt_exprs(stmt: &Stmt) -> Vec<&Expr> {
    match stmt {
        Stmt::Assign(_, e) | Stmt::Emit(e) | Stmt::SetField(_, _, e) => vec![e],
        Stmt::Get(_, k) => vec![k],
        Stmt::Put(k, v) => vec![k, v],
        Stmt::If(c, _, _) => vec![c],
        Stmt::For { from, to, .. } => vec![from, to],
    }
}

fn stmt_reads_var(stmt: &Stmt, v: VarId) -> bool {
    let mut found = false;
    stmt.visit(&mut |st| {
        for e in stmt_exprs(st) {
            if e.vars().contains(&v) {
                found = true;
            }
        }
        if let Stmt::SetField(target, _, _) = st {
            if *target == v {
                found = true;
            }
        }
    });
    found
}

/// Statements remaining after the machine's current position (for
/// read-later checks). Conservative: includes every pending statement.
fn stmts_after<'p>(machine: &Machine<'p>) -> Vec<&'p Stmt> {
    let mut out = Vec::new();
    for frame in &machine.frames {
        match frame {
            CFrame::Block { stmts, idx } => out.extend(stmts.iter().skip(*idx)),
            CFrame::ConcreteLoop { body, .. } | CFrame::GuardLoop { body, .. } => {
                out.extend(body.iter())
            }
        }
    }
    out
}

fn eval_key<'p>(
    key_expr: &Expr,
    machine: &Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<KeyTemplate, ExploreError> {
    let Expr::Key(table, parts) = key_expr else {
        return Err(ExploreError::Unsupported("GET/PUT expects a key constructor"));
    };
    let mut sym_parts = Vec::with_capacity(parts.len());
    for p in parts {
        sym_parts.push(sym_eval(p, machine, ctx)?);
    }
    Ok(KeyTemplate::new(*table, sym_parts))
}

/// Symbolic expression evaluation against the machine's symbolic store.
fn sym_eval<'p>(
    expr: &Expr,
    machine: &Machine<'p>,
    ctx: &mut Ctx<'p>,
) -> Result<SymExpr, ExploreError> {
    Ok(match expr {
        Expr::Const(v) => SymExpr::Const(v.clone()),
        Expr::Input(i) => {
            if *i >= ctx.bounds.len() {
                return Err(ExploreError::Eval(EvalError::InputOutOfRange(*i)));
            }
            if ctx.input_is_relevant(*i) {
                SymExpr::Input(*i)
            } else {
                SymExpr::Const(ctx.representative(*i))
            }
        }
        Expr::Var(v) => machine.vars[v.0].clone(),
        Expr::Field(e, idx) => SymExpr::field(sym_eval(e, machine, ctx)?, *idx)?,
        Expr::Bin(op, a, b) => {
            SymExpr::bin(*op, sym_eval(a, machine, ctx)?, sym_eval(b, machine, ctx)?)
        }
        Expr::Un(op, e) => SymExpr::un(*op, sym_eval(e, machine, ctx)?),
        Expr::Key(..) => return Err(ExploreError::Unsupported("key in value position")),
        Expr::MakeRecord(fields) => {
            let mut out = Vec::with_capacity(fields.len());
            let mut all_const = true;
            for f in fields {
                let s = sym_eval(f, machine, ctx)?;
                all_const &= s.is_const();
                out.push(s);
            }
            if all_const {
                SymExpr::Const(Value::record(
                    out.into_iter()
                        .map(|s| s.as_const().cloned().expect("checked const"))
                        .collect(),
                ))
            } else {
                SymExpr::Record(out)
            }
        }
        Expr::ListIndex(l, i) => {
            let list = sym_eval(l, machine, ctx)?;
            let idx = sym_eval(i, machine, ctx)?;
            match (&list, &idx) {
                // A concrete list during SE is always a concolic
                // *representative* of an irrelevant list input (the IR has
                // no list literals), so any element stands in for any
                // other: clamp out-of-range indices — which arise when an
                // unrolled path assumes more iterations than the
                // representative's minimum length — instead of erroring.
                (SymExpr::Const(Value::List(items)), SymExpr::Const(Value::Int(n)))
                    if !items.is_empty() =>
                {
                    let i = (*n).clamp(0, items.len() as i64 - 1) as usize;
                    SymExpr::Const(items[i].clone())
                }
                (SymExpr::Const(Value::List(items)), _) if !items.is_empty() => {
                    SymExpr::Const(items[0].clone())
                }
                (SymExpr::Input(i), _) => SymExpr::InputIndex(*i, Box::new(idx)),
                _ => return Err(ExploreError::Unsupported("indexing a non-list value")),
            }
        }
        Expr::ListLen(l) => {
            let list = sym_eval(l, machine, ctx)?;
            match &list {
                SymExpr::Const(Value::List(items)) => SymExpr::int(items.len() as i64),
                SymExpr::Input(i) => SymExpr::InputLen(*i),
                _ => return Err(ExploreError::Unsupported("length of a non-list value")),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rws::TxClass;
    use prognosticator_txir::{Expr, InputBound, Key, ProgramBuilder, TableId};

    #[test]
    fn straight_line_independent_tx() {
        let mut b = ProgramBuilder::new("simple");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let amt = b.input("amt", InputBound::int(0, 100));
        let v = b.var("v");
        let key = Expr::key(t, vec![Expr::input(id)]);
        b.get(v, key.clone());
        b.put(key, Expr::var(v).add(Expr::input(amt)));
        let p = b.build();

        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.class(), TxClass::Independent);
        assert_eq!(a.profile.partition_count(), 1);
        assert_eq!(a.profile.unique_key_sets(), 1);
        let pred = a.profile.predict_direct(&[Value::Int(4), Value::Int(10)]).unwrap();
        assert_eq!(pred.reads, vec![Key::of_ints(TableId(0), &[4])]);
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(0), &[4])]);
    }

    #[test]
    fn branch_on_relevant_input_forks() {
        let mut b = ProgramBuilder::new("branchy");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 10));
        b.if_(
            Expr::input(x).gt(Expr::lit(5)),
            |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(0)),
            |b| b.put(Expr::key(t, vec![Expr::lit(2)]), Expr::lit(0)),
        );
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.partition_count(), 2);
        assert_eq!(a.profile.unique_key_sets(), 2);
        assert_eq!(a.profile.depth(), 1);
        let pred = a.profile.predict_direct(&[Value::Int(6)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(0), &[1])]);
        let pred = a.profile.predict_direct(&[Value::Int(5)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(0), &[2])]);
    }

    #[test]
    fn same_rws_branches_merge() {
        // newOrder pattern: both arms write the same key.
        let mut b = ProgramBuilder::new("mergy");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 10));
        let key = Expr::key(t, vec![Expr::lit(1)]);
        b.if_(
            Expr::input(x).gt(Expr::lit(5)),
            |b| b.put(key.clone(), Expr::lit(0)),
            |b| b.put(key.clone(), Expr::lit(1)),
        );
        let p = b.build();
        // Even with relevance disabled, merging collapses the two paths.
        let cfg = ExplorerConfig { relevance: false, ..ExplorerConfig::optimized() };
        let a = analyze(&p, &cfg).unwrap();
        assert_eq!(a.profile.partition_count(), 1);
        assert_eq!(a.stats.merged, 1);
        // With relevance, the branch never forks at all.
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.partition_count(), 1);
        assert_eq!(a.stats.states_explored, 1);
    }

    #[test]
    fn infeasible_branch_pruned() {
        let mut b = ProgramBuilder::new("infeasible");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 5));
        b.if_(
            Expr::input(x).gt(Expr::lit(10)), // never true for x ∈ [0,5]
            |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(0)),
            |b| b.put(Expr::key(t, vec![Expr::lit(2)]), Expr::lit(0)),
        );
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.partition_count(), 1);
        assert!(a.stats.pruned_infeasible >= 1);
        let pred = a.profile.predict_direct(&[Value::Int(0)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(0), &[2])]);
    }

    #[test]
    fn pivot_detected_for_state_dependent_key() {
        // v = GET(t(id)); PUT(u(v.0 + 1), 0) — dependent transaction.
        let mut b = ProgramBuilder::new("dep");
        let t = b.table("t");
        let u = b.table("u");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.put(Expr::key(u, vec![Expr::var(v).field(0).add(Expr::lit(1))]), Expr::lit(0));
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.class(), TxClass::Dependent);
        assert_eq!(a.profile.pivot_specs().len(), 1);
        assert_eq!(a.profile.indirect_keys(), 1);

        let mut resolver = |k: &Key| {
            assert_eq!(k, &Key::of_ints(TableId(0), &[3]));
            Value::record(vec![Value::Int(41)])
        };
        let pred = a.profile.predict(&[Value::Int(3)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[42])]);
        assert_eq!(pred.pivot_observations.len(), 1);
    }

    #[test]
    fn concrete_loop_unrolls() {
        let mut b = ProgramBuilder::new("cloop");
        let t = b.table("t");
        let i = b.var("i");
        b.for_(i, Expr::lit(0), Expr::lit(3), |b| {
            b.put(Expr::key(t, vec![Expr::var(i)]), Expr::lit(0));
        });
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.partition_count(), 1);
        let pred = a.profile.predict_direct(&[]).unwrap();
        assert_eq!(pred.writes.len(), 3);
    }

    #[test]
    fn symbolic_loop_summarizes() {
        // for i in 0..n { PUT(t(xs[i])) } — the newOrder shape.
        let mut b = ProgramBuilder::new("sloop");
        let t = b.table("t");
        let n = b.input("n", InputBound::int(1, 5));
        let xs = b.input("xs", InputBound::int_list(1, 5, 0, 100));
        let i = b.var("i");
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.put(Expr::key(t, vec![Expr::input(xs).index(Expr::var(i))]), Expr::lit(0));
        });
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.stats.loop_summarizations, 1);
        assert_eq!(a.profile.partition_count(), 1);
        assert_eq!(a.profile.class(), TxClass::Independent);

        let xs_v = Value::list(vec![Value::Int(7), Value::Int(9), Value::Int(11)]);
        let pred = a.profile.predict_direct(&[Value::Int(3), xs_v]).unwrap();
        assert_eq!(
            pred.writes,
            vec![
                Key::of_ints(TableId(0), &[7]),
                Key::of_ints(TableId(0), &[9]),
                Key::of_ints(TableId(0), &[11]),
            ]
        );
    }

    #[test]
    fn pivot_bounded_loop_widens_to_static_hull() {
        // w = GET(ctrl(0)); for i in 0..w.0 { r = GET(t(i)); PUT(t(i), r.0+1) }
        // — a watermark-bounded scan. Without widening the summarized
        // Range's end bound mentions the watermark pivot (DT); with
        // widening the bound becomes the static hull, the pivot
        // dependency disappears, and the scan classifies as IT with a
        // full-span (over-approximating) prediction.
        let build = || {
            let mut b = ProgramBuilder::new("scan");
            let ctrl = b.table("ctrl");
            let t = b.table("t");
            let w = b.var("w");
            let r = b.var("r");
            let i = b.var("i");
            b.get(w, Expr::key(ctrl, vec![Expr::lit(0)]));
            b.for_(i, Expr::lit(0), Expr::var(w).field(0), |b| {
                b.get(r, Expr::key(t, vec![Expr::var(i)]));
                b.put(
                    Expr::key(t, vec![Expr::var(i)]),
                    Expr::var(r).field(0).add(Expr::lit(1)),
                );
            });
            b.build()
        };

        let exact = analyze(&build(), &ExplorerConfig::optimized()).unwrap();
        assert_eq!(exact.profile.class(), TxClass::Dependent);
        assert_eq!(exact.stats.loops_widened, 0);

        let cfg = ExplorerConfig { widen_loop_hull: 8, ..ExplorerConfig::optimized() };
        let wide = analyze(&build(), &cfg).unwrap();
        assert_eq!(wide.stats.loops_widened, 1);
        assert_eq!(wide.stats.loop_summarizations, 1);
        assert_eq!(wide.profile.class(), TxClass::Independent);
        let pred = wide.profile.predict_direct(&[]).unwrap();
        assert_eq!(pred.writes.len(), 8, "writes cover the full hull");
        assert_eq!(pred.reads.len(), 9, "ctrl read plus the full hull");
    }

    #[test]
    fn symbolic_loop_without_summarization_forks() {
        let mut b = ProgramBuilder::new("sloop2");
        let t = b.table("t");
        let n = b.input("n", InputBound::int(1, 3));
        let i = b.var("i");
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.put(Expr::key(t, vec![Expr::var(i)]), Expr::lit(0));
        });
        let p = b.build();
        let cfg = ExplorerConfig { summarize_loops: false, merge: false, ..Default::default() };
        let a = analyze(&p, &cfg).unwrap();
        // n ∈ {1,2,3} → three distinct paths (plus pruned guard exits).
        assert_eq!(a.profile.partition_count(), 3);
        // Each path predicts the right number of writes.
        let pred = a.profile.predict_direct(&[Value::Int(2)]).unwrap();
        assert_eq!(pred.writes.len(), 2);
    }

    #[test]
    fn accumulator_loop_does_not_summarize() {
        // acc += i is loop-carried; with a store access keyed by acc the
        // loop must not summarize (and the key depends on the iteration).
        let mut b = ProgramBuilder::new("acc");
        let t = b.table("t");
        let n = b.input("n", InputBound::int(1, 3));
        let i = b.var("i");
        let acc = b.var("acc");
        b.assign(acc, Expr::lit(0));
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.assign(acc, Expr::var(acc).add(Expr::lit(1)));
        });
        b.put(Expr::key(t, vec![Expr::var(acc)]), Expr::lit(0));
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.stats.loop_summarizations, 0);
        // Unrolled: keys t(1), t(2), t(3) depending on n.
        assert_eq!(a.profile.partition_count(), 3);
        let pred = a.profile.predict_direct(&[Value::Int(2)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(0), &[2])]);
    }

    #[test]
    fn state_limit_enforced() {
        let mut b = ProgramBuilder::new("boom");
        let t = b.table("t");
        let mut last = b.input("x0", InputBound::int(0, 1));
        // 12 independent branches, each writing a distinct key → 2^12 paths.
        for k in 1..12 {
            let x = b.input(&format!("x{k}"), InputBound::int(0, 1));
            last = x;
        }
        for k in 0..12usize {
            b.if_(
                Expr::input(k).eq(Expr::lit(1)),
                |bb| bb.put(Expr::key(t, vec![Expr::lit(2 * k as i64)]), Expr::lit(0)),
                |bb| bb.put(Expr::key(t, vec![Expr::lit(2 * k as i64 + 1)]), Expr::lit(0)),
            );
        }
        let _ = last;
        let p = b.build();
        let cfg = ExplorerConfig { max_states: 100, ..Default::default() };
        let err = analyze(&p, &cfg).unwrap_err();
        assert!(matches!(err, ExploreError::StateLimit(_)));
        // With an adequate budget it completes with 4096 partitions.
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.partition_count(), 1 << 12);
    }

    #[test]
    fn unoptimized_explores_more_states() {
        let mut b = ProgramBuilder::new("cmp");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let qty = b.input("qty", InputBound::int(0, 9));
        let item = b.var("item");
        let key = Expr::key(t, vec![Expr::input(id)]);
        b.get(item, key.clone());
        b.if_(
            Expr::var(item).field(0).le(Expr::input(qty)),
            |b| b.put(key.clone(), Expr::lit(1)),
            |b| b.put(key.clone(), Expr::lit(2)),
        );
        let p = b.build();
        let opt = analyze(&p, &ExplorerConfig::optimized()).unwrap();
        let unopt = analyze(&p, &ExplorerConfig::unoptimized()).unwrap();
        assert!(unopt.stats.states_explored > opt.stats.states_explored);
        assert_eq!(opt.profile.partition_count(), 1);
        // Unoptimized: the pivot condition forks and nothing merges.
        assert_eq!(unopt.profile.partition_count(), 2);
        // Both still classify correctly w.r.t. writes.
        assert_eq!(opt.profile.class(), TxClass::Independent);
    }

    #[test]
    fn read_only_classification() {
        let mut b = ProgramBuilder::new("rot");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.emit(Expr::var(v));
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.class(), TxClass::ReadOnly);
    }

    #[test]
    fn pivot_branch_condition_profiles() {
        // delivery pattern: branch on a value read from the store.
        let mut b = ProgramBuilder::new("dlv");
        let t = b.table("cursor");
        let u = b.table("orders");
        let id = b.input("id", InputBound::int(0, 9));
        let c = b.var("c");
        b.get(c, Expr::key(t, vec![Expr::input(id)]));
        b.if_(
            Expr::var(c).field(0).ne(Expr::lit(0)),
            |b| b.put(Expr::key(u, vec![Expr::var(c).field(0)]), Expr::lit(0)),
            |_| {},
        );
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.profile.class(), TxClass::Dependent);
        assert_eq!(a.profile.partition_count(), 2);
        assert!(a.profile.root().has_pivot_condition());

        // Prediction with a resolver returning a non-zero cursor.
        let mut resolver = |k: &Key| {
            if k.table == TableId(0) {
                Value::record(vec![Value::Int(42)])
            } else {
                Value::Unit
            }
        };
        let pred = a.profile.predict(&[Value::Int(1)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[42])]);
        // And with a zero cursor: no writes.
        let mut resolver = |_: &Key| Value::record(vec![Value::Int(0)]);
        let pred = a.profile.predict(&[Value::Int(1)], Some(&mut resolver)).unwrap();
        assert!(pred.writes.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let mut b = ProgramBuilder::new("stats");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 1));
        b.if_(
            Expr::input(x).eq(Expr::lit(0)),
            |b| b.put(Expr::key(t, vec![Expr::lit(0)]), Expr::lit(0)),
            |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(0)),
        );
        let p = b.build();
        let a = profile_program(&p).unwrap();
        assert_eq!(a.stats.states_explored, 3); // root + 2 fork children
        assert_eq!(a.stats.paths, 2);
        assert!(a.stats.peak_live_bytes > 0);
        assert!(a.stats.profile_bytes > 0);
        assert_eq!(a.stats.max_depth, 1);
    }
}
