//! Symbolic expressions: the symbolic-store values of the SE engine.

use prognosticator_txir::interp::apply_bin;
use prognosticator_txir::{BinOp, EvalError, Key, TableId, UnOp, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a *pivot*: a data item read from the store during symbolic
/// execution whose value influences the transaction's key-set or control
/// flow (paper §III-B). Transactions with pivots are *dependent* (DT).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PivotId(pub u32);

impl fmt::Display for PivotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a summarized loop's induction variable. Stable per loop
/// site so that RWS templates from sibling paths compare equal.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LoopVarId(pub u32);

impl fmt::Display for LoopVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A symbolic expression over transaction inputs and pivot values.
///
/// This is the symbolic store's value universe: program variables map to
/// `SymExpr`s during exploration. `Const` leaves make the representation
/// uniformly *concolic* — concretized (irrelevant) data is just a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymExpr {
    /// A concrete value.
    Const(Value),
    /// The i-th transaction input (symbolic).
    Input(usize),
    /// Element of a list-typed input at a (possibly symbolic) index.
    InputIndex(usize, Box<SymExpr>),
    /// Length of a list-typed input.
    InputLen(usize),
    /// The value of a pivot item (unknown until the store is consulted).
    Pivot(PivotId),
    /// Positional field of a record-valued expression.
    Field(Box<SymExpr>, usize),
    /// Binary operation.
    Bin(BinOp, Box<SymExpr>, Box<SymExpr>),
    /// Unary operation.
    Un(UnOp, Box<SymExpr>),
    /// Record construction.
    Record(Vec<SymExpr>),
    /// Functional field update of a record-valued expression whose arity is
    /// unknown (e.g. a pivot value): `SetField(base, i, v)` equals `base`
    /// with field `i` replaced by `v`.
    SetField(Box<SymExpr>, usize, Box<SymExpr>),
    /// The induction variable of a summarized loop.
    LoopVar(LoopVarId),
}

impl SymExpr {
    /// A concrete integer.
    pub fn int(v: i64) -> SymExpr {
        SymExpr::Const(Value::Int(v))
    }

    /// A concrete boolean.
    pub fn bool(b: bool) -> SymExpr {
        SymExpr::Const(Value::Bool(b))
    }

    /// Whether this expression is fully concrete.
    pub fn is_const(&self) -> bool {
        matches!(self, SymExpr::Const(_))
    }

    /// The concrete value, if fully concrete.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            SymExpr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Smart binary constructor with constant folding and light
    /// simplification. Folding keeps concolic states small (the symbolic
    /// store only grows where genuine symbolism exists).
    pub fn bin(op: BinOp, a: SymExpr, b: SymExpr) -> SymExpr {
        if let (SymExpr::Const(x), SymExpr::Const(y)) = (&a, &b) {
            if let Ok(v) = apply_bin(op, x.clone(), y.clone()) {
                return SymExpr::Const(v);
            }
        }
        // x + 0, x - 0, x * 1 → x ; x && true → x ; x || false → x
        match (op, &a, &b) {
            (BinOp::Add | BinOp::Sub, _, SymExpr::Const(Value::Int(0))) => return a,
            (BinOp::Add, SymExpr::Const(Value::Int(0)), _) => return b,
            (BinOp::Mul, _, SymExpr::Const(Value::Int(1))) => return a,
            (BinOp::Mul, SymExpr::Const(Value::Int(1)), _) => return b,
            (BinOp::And, _, SymExpr::Const(Value::Bool(true))) => return a,
            (BinOp::And, SymExpr::Const(Value::Bool(true)), _) => return b,
            (BinOp::Or, _, SymExpr::Const(Value::Bool(false))) => return a,
            (BinOp::Or, SymExpr::Const(Value::Bool(false)), _) => return b,
            _ => {}
        }
        SymExpr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Smart unary constructor with constant folding and double-negation /
    /// comparison-flip simplification.
    pub fn un(op: UnOp, e: SymExpr) -> SymExpr {
        match (op, e) {
            (UnOp::Not, SymExpr::Const(Value::Bool(b))) => SymExpr::bool(!b),
            (UnOp::Neg, SymExpr::Const(Value::Int(i))) if i != i64::MIN => SymExpr::int(-i),
            (UnOp::Not, SymExpr::Un(UnOp::Not, inner)) => *inner,
            (UnOp::Not, SymExpr::Bin(cmp, a, b)) if cmp.negated().is_some() => {
                SymExpr::Bin(cmp.negated().expect("checked"), a, b)
            }
            (op, e) => SymExpr::Un(op, Box::new(e)),
        }
    }

    /// Smart field access: projects through `Record`, `Const(Record)` and
    /// `SetField`; a `Const(Unit)` placeholder (concretized irrelevant store
    /// read) projects to integer 0, deterministically.
    pub fn field(e: SymExpr, idx: usize) -> Result<SymExpr, EvalError> {
        match e {
            SymExpr::Const(Value::Record(r)) => r
                .get(idx)
                .cloned()
                .map(SymExpr::Const)
                .ok_or(EvalError::FieldOutOfRange { index: idx, len: r.len() }),
            SymExpr::Record(fields) => {
                let len = fields.len();
                fields
                    .into_iter()
                    .nth(idx)
                    .ok_or(EvalError::FieldOutOfRange { index: idx, len })
            }
            SymExpr::SetField(base, f, v) => {
                if f == idx {
                    Ok(*v)
                } else {
                    SymExpr::field(*base, idx)
                }
            }
            SymExpr::Const(Value::Unit) => Ok(SymExpr::int(0)),
            SymExpr::Const(other) => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            sym => Ok(SymExpr::Field(Box::new(sym), idx)),
        }
    }

    /// Smart record-field update: rebuilds `Record`/`Const(Record)` bases in
    /// place, otherwise produces a symbolic [`SymExpr::SetField`].
    pub fn set_field(base: SymExpr, idx: usize, v: SymExpr) -> Result<SymExpr, EvalError> {
        match base {
            SymExpr::Const(Value::Record(r)) => {
                if idx >= r.len() {
                    return Err(EvalError::FieldOutOfRange { index: idx, len: r.len() });
                }
                let mut fields: Vec<SymExpr> =
                    r.iter().cloned().map(SymExpr::Const).collect();
                fields[idx] = v;
                Ok(SymExpr::Record(fields))
            }
            SymExpr::Record(mut fields) => {
                if idx >= fields.len() {
                    return Err(EvalError::FieldOutOfRange { index: idx, len: fields.len() });
                }
                fields[idx] = v;
                Ok(SymExpr::Record(fields))
            }
            SymExpr::Const(other) if !matches!(other, Value::Unit) => {
                Err(EvalError::TypeMismatch { expected: "record", got: other })
            }
            base => Ok(SymExpr::SetField(Box::new(base), idx, Box::new(v))),
        }
    }

    /// Visits every sub-expression in pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SymExpr)) {
        f(self);
        match self {
            SymExpr::Const(_)
            | SymExpr::Input(_)
            | SymExpr::InputLen(_)
            | SymExpr::Pivot(_)
            | SymExpr::LoopVar(_) => {}
            SymExpr::InputIndex(_, e) | SymExpr::Field(e, _) | SymExpr::Un(_, e) => e.visit(f),
            SymExpr::Bin(_, a, b) | SymExpr::SetField(a, _, b) => {
                a.visit(f);
                b.visit(f);
            }
            SymExpr::Record(es) => {
                for e in es {
                    e.visit(f);
                }
            }
        }
    }

    /// Whether any sub-expression references a pivot.
    pub fn mentions_pivot(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, SymExpr::Pivot(_)) {
                found = true;
            }
        });
        found
    }

    /// Pivots referenced by this expression (deduplicated).
    pub fn pivots(&self) -> Vec<PivotId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let SymExpr::Pivot(p) = e {
                if !out.contains(p) {
                    out.push(*p);
                }
            }
        });
        out
    }

    /// Input indices referenced by this expression (deduplicated).
    pub fn input_refs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            let i = match e {
                SymExpr::Input(i) | SymExpr::InputIndex(i, _) | SymExpr::InputLen(i) => *i,
                _ => return,
            };
            if !out.contains(&i) {
                out.push(i);
            }
        });
        out
    }

    /// Whether any sub-expression references a loop variable.
    pub fn mentions_loop_var(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, SymExpr::LoopVar(_)) {
                found = true;
            }
        });
        found
    }

    /// A coarse heap-footprint estimate in bytes (Table I memory column).
    pub fn approx_size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            n += std::mem::size_of::<SymExpr>();
            if let SymExpr::Const(v) = e {
                n += v.approx_size();
            }
        });
        n
    }

    /// Evaluates this expression with concrete inputs and an assignment of
    /// pivot values and loop variables.
    ///
    /// # Errors
    /// Fails on type mismatches, missing pivots, or out-of-range accesses —
    /// indicating that the caller's environment does not match the profile.
    pub fn eval(&self, env: &ConcreteEnv<'_>) -> Result<Value, EvalError> {
        match self {
            SymExpr::Const(v) => Ok(v.clone()),
            SymExpr::Input(i) => {
                env.inputs.get(*i).cloned().ok_or(EvalError::InputOutOfRange(*i))
            }
            SymExpr::InputIndex(i, idx) => {
                let list = env.inputs.get(*i).cloned().ok_or(EvalError::InputOutOfRange(*i))?;
                let idx = match idx.eval(env)? {
                    Value::Int(v) => v,
                    other => return Err(EvalError::TypeMismatch { expected: "int", got: other }),
                };
                match list {
                    Value::List(items) => {
                        if idx < 0 || idx as usize >= items.len() {
                            Err(EvalError::IndexOutOfRange { index: idx, len: items.len() })
                        } else {
                            Ok(items[idx as usize].clone())
                        }
                    }
                    other => Err(EvalError::TypeMismatch { expected: "list", got: other }),
                }
            }
            SymExpr::InputLen(i) => {
                match env.inputs.get(*i).ok_or(EvalError::InputOutOfRange(*i))? {
                    Value::List(items) => Ok(Value::Int(items.len() as i64)),
                    other => {
                        Err(EvalError::TypeMismatch { expected: "list", got: other.clone() })
                    }
                }
            }
            SymExpr::Pivot(p) => (env.pivot)(*p),
            SymExpr::Field(e, idx) => match e.eval(env)? {
                Value::Record(r) => r
                    .get(*idx)
                    .cloned()
                    .ok_or(EvalError::FieldOutOfRange { index: *idx, len: r.len() }),
                // A pivot read of an absent key yields Unit; projecting a
                // field of it mirrors the concolic placeholder rule.
                Value::Unit => Ok(Value::Int(0)),
                other => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            },
            SymExpr::SetField(base, idx, v) => match base.eval(env)? {
                Value::Record(r) => {
                    if *idx >= r.len() {
                        return Err(EvalError::FieldOutOfRange { index: *idx, len: r.len() });
                    }
                    let mut fields = r.as_ref().clone();
                    fields[*idx] = v.eval(env)?;
                    Ok(Value::record(fields))
                }
                other => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            },
            SymExpr::Bin(op, a, b) => apply_bin(*op, a.eval(env)?, b.eval(env)?),
            SymExpr::Un(op, e) => match (op, e.eval(env)?) {
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Neg, Value::Int(i)) => {
                    i.checked_neg().map(Value::Int).ok_or(EvalError::Overflow)
                }
                (UnOp::Not, other) => Err(EvalError::TypeMismatch { expected: "bool", got: other }),
                (UnOp::Neg, other) => Err(EvalError::TypeMismatch { expected: "int", got: other }),
            },
            SymExpr::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    vals.push(f.eval(env)?);
                }
                Ok(Value::record(vals))
            }
            SymExpr::LoopVar(l) => (env.loop_var)(*l),
        }
    }
}

impl fmt::Display for SymExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExpr::Const(v) => write!(f, "{v}"),
            SymExpr::Input(i) => write!(f, "in{i}"),
            SymExpr::InputIndex(i, idx) => write!(f, "in{i}[{idx}]"),
            SymExpr::InputLen(i) => write!(f, "len(in{i})"),
            SymExpr::Pivot(p) => write!(f, "{p}"),
            SymExpr::Field(e, i) => write!(f, "{e}.{i}"),
            SymExpr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            SymExpr::Un(op, e) => write!(f, "{op}{e}"),
            SymExpr::Record(es) => {
                write!(f, "{{")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            SymExpr::SetField(base, i, v) => write!(f, "{base}[.{i}={v}]"),
            SymExpr::LoopVar(l) => write!(f, "{l}"),
        }
    }
}

/// Environment for concrete instantiation of symbolic expressions.
pub struct ConcreteEnv<'a> {
    /// Concrete transaction inputs.
    pub inputs: &'a [Value],
    /// Resolves a pivot's observed value.
    pub pivot: &'a dyn Fn(PivotId) -> Result<Value, EvalError>,
    /// Resolves a summarized loop variable's current value.
    pub loop_var: &'a dyn Fn(LoopVarId) -> Result<Value, EvalError>,
}

impl<'a> ConcreteEnv<'a> {
    /// An environment with inputs only; pivot or loop-var references fail.
    pub fn inputs_only(inputs: &'a [Value]) -> Self {
        ConcreteEnv {
            inputs,
            pivot: &|p| {
                Err(EvalError::TypeMismatch {
                    expected: "resolved pivot",
                    got: Value::str(&format!("{p}")),
                })
            },
            loop_var: &|l| {
                Err(EvalError::TypeMismatch {
                    expected: "bound loop variable",
                    got: Value::str(&format!("{l}")),
                })
            },
        }
    }
}

/// A symbolic database key: table plus symbolic parts. The unit the RWS
/// templates are made of.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeyTemplate {
    /// Table of the key.
    pub table: TableId,
    /// Symbolic key parts.
    pub parts: Vec<SymExpr>,
}

impl KeyTemplate {
    /// Builds a template.
    pub fn new(table: TableId, parts: Vec<SymExpr>) -> Self {
        KeyTemplate { table, parts }
    }

    /// Whether every part is concrete.
    pub fn is_concrete(&self) -> bool {
        self.parts.iter().all(SymExpr::is_const)
    }

    /// Whether any part depends on a pivot (an *indirect* key, paper §III-B).
    pub fn is_indirect(&self) -> bool {
        self.parts.iter().any(SymExpr::mentions_pivot)
    }

    /// Whether any part depends on a loop variable.
    pub fn mentions_loop_var(&self) -> bool {
        self.parts.iter().any(SymExpr::mentions_loop_var)
    }

    /// Instantiates the template into a concrete [`Key`].
    ///
    /// # Errors
    /// Fails if a referenced pivot or loop variable is unresolved in `env`.
    pub fn instantiate(&self, env: &ConcreteEnv<'_>) -> Result<Key, EvalError> {
        let mut parts = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            parts.push(p.eval(env)?);
        }
        Ok(Key::new(self.table, parts))
    }

    /// Pivots mentioned anywhere in the template.
    pub fn pivots(&self) -> Vec<PivotId> {
        let mut out = Vec::new();
        for p in &self.parts {
            for pv in p.pivots() {
                if !out.contains(&pv) {
                    out.push(pv);
                }
            }
        }
        out
    }
}

impl fmt::Display for KeyTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table)?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let e = SymExpr::bin(BinOp::Add, SymExpr::int(2), SymExpr::int(3));
        assert_eq!(e, SymExpr::int(5));
        let e = SymExpr::bin(BinOp::Lt, SymExpr::int(2), SymExpr::int(3));
        assert_eq!(e, SymExpr::bool(true));
    }

    #[test]
    fn identity_simplification() {
        let x = SymExpr::Input(0);
        assert_eq!(SymExpr::bin(BinOp::Add, x.clone(), SymExpr::int(0)), x);
        assert_eq!(SymExpr::bin(BinOp::Mul, SymExpr::int(1), x.clone()), x);
        assert_eq!(SymExpr::bin(BinOp::And, x.clone(), SymExpr::bool(true)), x);
    }

    #[test]
    fn negation_pushing() {
        let cmp = SymExpr::bin(BinOp::Lt, SymExpr::Input(0), SymExpr::int(3));
        let neg = SymExpr::un(UnOp::Not, cmp);
        match neg {
            SymExpr::Bin(BinOp::Ge, _, _) => {}
            other => panic!("expected flipped comparison, got {other:?}"),
        }
        let dbl = SymExpr::un(UnOp::Not, SymExpr::un(UnOp::Not, SymExpr::Input(1)));
        assert_eq!(dbl, SymExpr::Input(1));
    }

    #[test]
    fn field_projection() {
        let rec = SymExpr::Record(vec![SymExpr::int(1), SymExpr::Input(0)]);
        assert_eq!(SymExpr::field(rec, 1).unwrap(), SymExpr::Input(0));
        let unit = SymExpr::Const(Value::Unit);
        assert_eq!(SymExpr::field(unit, 3).unwrap(), SymExpr::int(0));
        let piv = SymExpr::Pivot(PivotId(0));
        assert!(matches!(SymExpr::field(piv, 0).unwrap(), SymExpr::Field(..)));
    }

    #[test]
    fn pivot_and_input_detection() {
        let e = SymExpr::bin(
            BinOp::Add,
            SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(2))), 0),
            SymExpr::Input(3),
        );
        assert!(e.mentions_pivot());
        assert_eq!(e.pivots(), vec![PivotId(2)]);
        assert_eq!(e.input_refs(), vec![3]);
        assert!(!SymExpr::Input(0).mentions_pivot());
    }

    #[test]
    fn eval_with_env() {
        let e = SymExpr::bin(
            BinOp::Mul,
            SymExpr::Input(0),
            SymExpr::bin(BinOp::Add, SymExpr::Pivot(PivotId(0)), SymExpr::int(1)),
        );
        let inputs = vec![Value::Int(3)];
        let env = ConcreteEnv {
            inputs: &inputs,
            pivot: &|_| Ok(Value::Int(4)),
            loop_var: &|_| Ok(Value::Int(0)),
        };
        assert_eq!(e.eval(&env).unwrap(), Value::Int(15));
    }

    #[test]
    fn inputs_only_env_rejects_pivots() {
        let inputs = vec![Value::Int(1)];
        let env = ConcreteEnv::inputs_only(&inputs);
        assert!(SymExpr::Pivot(PivotId(0)).eval(&env).is_err());
        assert!(SymExpr::LoopVar(LoopVarId(0)).eval(&env).is_err());
        assert_eq!(SymExpr::Input(0).eval(&env).unwrap(), Value::Int(1));
    }

    #[test]
    fn key_template_instantiation() {
        let kt = KeyTemplate::new(
            TableId(1),
            vec![SymExpr::Input(0), SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 1)],
        );
        assert!(!kt.is_concrete());
        assert!(kt.is_indirect());
        assert_eq!(kt.pivots(), vec![PivotId(0)]);
        let inputs = vec![Value::Int(9)];
        let env = ConcreteEnv {
            inputs: &inputs,
            pivot: &|_| Ok(Value::record(vec![Value::Int(0), Value::Int(7)])),
            loop_var: &|_| Ok(Value::Int(0)),
        };
        let k = kt.instantiate(&env).unwrap();
        assert_eq!(k, Key::new(TableId(1), vec![Value::Int(9), Value::Int(7)]));
    }

    #[test]
    fn list_input_eval() {
        let e = SymExpr::InputIndex(0, Box::new(SymExpr::LoopVar(LoopVarId(0))));
        let inputs = vec![Value::list(vec![Value::Int(5), Value::Int(6)])];
        let env = ConcreteEnv {
            inputs: &inputs,
            pivot: &|_| Ok(Value::Unit),
            loop_var: &|_| Ok(Value::Int(1)),
        };
        assert_eq!(e.eval(&env).unwrap(), Value::Int(6));
        let len = SymExpr::InputLen(0);
        assert_eq!(len.eval(&env).unwrap(), Value::Int(2));
    }

    #[test]
    fn display_is_nonempty() {
        let e = SymExpr::bin(BinOp::Add, SymExpr::Input(0), SymExpr::Pivot(PivotId(1)));
        assert!(!format!("{e}").is_empty());
        let kt = KeyTemplate::new(TableId(0), vec![SymExpr::int(1)]);
        assert_eq!(format!("{kt}"), "t0(1)");
    }
}
