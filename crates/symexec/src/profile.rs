//! Transaction profiles: the offline artifact of symbolic execution.
//!
//! A profile is the paper's set of `<PSC_i, RWS_i>` pairs encoded as a
//! binary decision tree (§III-B): internal nodes carry path-set conditions
//! (symbolic predicates over inputs and pivots), leaves carry
//! [`RwsTemplate`]s. At run time, [`Profile::predict`] walks the tree in
//! O(depth) and instantiates the leaf's template into the concrete key-set
//! of a transaction instance.

use crate::rws::{Instantiator, Prediction, PivotResolver, RwsTemplate, TxClass};
use crate::sym::{KeyTemplate, SymExpr};
use prognosticator_txir::{EvalError, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A node of the profile tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileNode {
    /// A path partition: all executions reaching here share this RWS.
    Leaf(RwsTemplate),
    /// A path-set condition splitting the partition.
    Branch {
        /// The condition (over inputs and possibly pivots).
        cond: SymExpr,
        /// Subtree when `cond` holds.
        then: Box<ProfileNode>,
        /// Subtree when `cond` does not hold.
        els: Box<ProfileNode>,
    },
}

impl ProfileNode {
    /// Number of leaves.
    pub fn leaf_count(&self) -> u64 {
        match self {
            ProfileNode::Leaf(_) => 1,
            ProfileNode::Branch { then, els, .. } => then.leaf_count() + els.leaf_count(),
        }
    }

    /// Maximum branch depth (a leaf-only tree has depth 0).
    pub fn depth(&self) -> u32 {
        match self {
            ProfileNode::Leaf(_) => 0,
            ProfileNode::Branch { then, els, .. } => 1 + then.depth().max(els.depth()),
        }
    }

    /// Visits every leaf template.
    pub fn visit_leaves<'a>(&'a self, f: &mut impl FnMut(&'a RwsTemplate)) {
        match self {
            ProfileNode::Leaf(t) => f(t),
            ProfileNode::Branch { then, els, .. } => {
                then.visit_leaves(f);
                els.visit_leaves(f);
            }
        }
    }

    /// Whether any branch condition mentions a pivot (an *indirect* PSC:
    /// these profiles cannot be predicted client-side, §III-C
    /// optimizations).
    pub fn has_pivot_condition(&self) -> bool {
        match self {
            ProfileNode::Leaf(_) => false,
            ProfileNode::Branch { cond, then, els } => {
                cond.mentions_pivot() || then.has_pivot_condition() || els.has_pivot_condition()
            }
        }
    }

    /// Rough heap-size estimate in bytes (Table I memory column).
    pub fn approx_size(&self) -> usize {
        match self {
            ProfileNode::Leaf(t) => std::mem::size_of::<Self>() + t.approx_size(),
            ProfileNode::Branch { cond, then, els } => {
                std::mem::size_of::<Self>() + cond.approx_size() + then.approx_size() + els.approx_size()
            }
        }
    }
}

/// Errors raised when predicting from a profile.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// The prediction requires reading pivots but no resolver was supplied
    /// (the transaction instance is dependent; run the *prepare indirect
    /// keys* phase with a store snapshot).
    NeedsStore,
    /// Instantiation failed (profile/input mismatch — a profiler bug or
    /// out-of-bounds inputs).
    Eval(EvalError),
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::NeedsStore => {
                write!(f, "prediction needs a pivot resolver (dependent transaction)")
            }
            PredictError::Eval(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl Error for PredictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PredictError::Eval(e) => Some(e),
            PredictError::NeedsStore => None,
        }
    }
}

impl From<EvalError> for PredictError {
    fn from(e: EvalError) -> Self {
        // The instantiator signals a missing resolver with a sentinel
        // TypeMismatch; fold it into the dedicated variant.
        if let EvalError::TypeMismatch { expected, .. } = &e {
            if expected.contains("pivot resolver") {
                return PredictError::NeedsStore;
            }
        }
        PredictError::Eval(e)
    }
}

/// The complete offline profile of one transaction program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    program_name: String,
    root: ProfileNode,
    /// Pivot key templates, indexed by [`crate::sym::PivotId`].
    pivots: Vec<KeyTemplate>,
    class: TxClass,
}

impl Profile {
    /// Assembles a profile (used by the explorer).
    pub(crate) fn new(program_name: String, root: ProfileNode, pivots: Vec<KeyTemplate>) -> Self {
        let mut writes = false;
        let mut indirect = false;
        root.visit_leaves(&mut |t| {
            writes |= !t.is_read_only();
            indirect |= t.has_indirect();
        });
        indirect |= root.has_pivot_condition();
        let class = if !writes {
            TxClass::ReadOnly
        } else if indirect {
            TxClass::Dependent
        } else {
            TxClass::Independent
        };
        Profile { program_name, root, pivots, class }
    }

    /// Name of the profiled program.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// The transaction classification (ROT / IT / DT).
    pub fn class(&self) -> TxClass {
        self.class
    }

    /// The root of the PSC tree.
    pub fn root(&self) -> &ProfileNode {
        &self.root
    }

    /// Pivot key templates (indexed by pivot id).
    pub fn pivot_specs(&self) -> &[KeyTemplate] {
        &self.pivots
    }

    /// Number of `<PSC, RWS>` partitions (leaves).
    pub fn partition_count(&self) -> u64 {
        self.root.leaf_count()
    }

    /// Number of *distinct* RWS templates across partitions — the paper's
    /// "unique key-sets" column of Table I.
    pub fn unique_key_sets(&self) -> u64 {
        let mut set: HashSet<&RwsTemplate> = HashSet::new();
        self.root.visit_leaves(&mut |t| {
            set.insert(t);
        });
        set.len() as u64
    }

    /// Maximum PSC-tree depth.
    pub fn depth(&self) -> u32 {
        self.root.depth()
    }

    /// The paper's "indirect keys" metric: how many distinct data items
    /// must be consulted during the *prepare indirect keys* phase — i.e.
    /// the number of pivot key templates (TPC-C delivery: 10 district
    /// cursors + 10 order records = 20, matching Table I).
    pub fn indirect_keys(&self) -> u64 {
        self.pivots.len() as u64
    }

    /// The largest number of pivot-dependent key entries any single
    /// partition predicts (a complementary indirection measure).
    pub fn max_indirect_entries(&self) -> u64 {
        let mut max = 0;
        self.root.visit_leaves(&mut |t| {
            max = max.max(t.indirect_count());
        });
        max
    }

    /// Rough profile size in bytes. Each pivot template is charged its
    /// struct size plus its parts — charging the parts alone made a
    /// profile with N constant-part pivots (whose `Const` parts fold to
    /// the node size) appear barely larger than one with none, while
    /// [`Profile::max_indirect_entries`] reported its indirection; the
    /// two metrics now move together.
    pub fn approx_size(&self) -> usize {
        self.root.approx_size()
            + self
                .pivots
                .iter()
                .map(|kt| {
                    std::mem::size_of::<KeyTemplate>()
                        + kt.parts.iter().map(SymExpr::approx_size).sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Predicts the concrete key-set of a transaction instance.
    ///
    /// For independent transactions `resolver` may be `None` (pure
    /// client-side prediction). Dependent instances need a resolver reading
    /// the *prepare indirect keys* snapshot; every pivot consulted is
    /// recorded in [`Prediction::pivot_observations`] for execution-time
    /// validation.
    ///
    /// # Errors
    /// [`PredictError::NeedsStore`] if a pivot is required but no resolver
    /// was given; [`PredictError::Eval`] on profile/input mismatch.
    pub fn predict(
        &self,
        inputs: &[Value],
        mut resolver: Option<&mut dyn PivotResolver>,
    ) -> Result<Prediction, PredictError> {
        let mut inst = Instantiator {
            inputs,
            pivot_specs: &self.pivots,
            resolver: resolver.take().map(|r| r as &mut dyn PivotResolver),
            cache: Default::default(),
            observations: Vec::new(),
        };
        let mut loop_env = Vec::new();
        // Walk the PSC tree.
        let mut node = &self.root;
        loop {
            match node {
                ProfileNode::Branch { cond, then, els } => {
                    let v = inst.eval(cond, &mut loop_env)?;
                    match v {
                        Value::Bool(true) => node = then,
                        Value::Bool(false) => node = els,
                        other => {
                            return Err(PredictError::Eval(EvalError::TypeMismatch {
                                expected: "bool",
                                got: other,
                            }))
                        }
                    }
                }
                ProfileNode::Leaf(template) => {
                    let mut prediction = Prediction::default();
                    for e in &template.reads {
                        inst.expand(e, &mut loop_env, false, &mut prediction)?;
                    }
                    for e in &template.writes {
                        inst.expand(e, &mut loop_env, true, &mut prediction)?;
                    }
                    for (k, v) in inst.observations {
                        if !prediction.pivot_observations.iter().any(|(pk, _)| pk == &k) {
                            prediction.pivot_observations.push((k, v));
                        }
                    }
                    return Ok(prediction);
                }
            }
        }
    }

    /// Predicts without consulting any store; succeeds only when the chosen
    /// path and its RWS are direct (functions of the inputs alone).
    ///
    /// # Errors
    /// Same as [`Profile::predict`]; [`PredictError::NeedsStore`] marks the
    /// instance as dependent.
    pub fn predict_direct(&self, inputs: &[Value]) -> Result<Prediction, PredictError> {
        self.predict(inputs, None)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile {} [{}]: {} partitions, {} unique key-sets, depth {}, {} pivots",
            self.program_name,
            self.class,
            self.partition_count(),
            self.unique_key_sets(),
            self.depth(),
            self.pivots.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rws::RwsEntry;
    use crate::sym::PivotId;
    use prognosticator_txir::{BinOp, Key, TableId};

    fn single(table: u16, part: SymExpr) -> RwsEntry {
        RwsEntry::Single(KeyTemplate::new(TableId(table), vec![part]))
    }

    fn leaf(reads: Vec<RwsEntry>, writes: Vec<RwsEntry>) -> ProfileNode {
        ProfileNode::Leaf(RwsTemplate { reads, writes })
    }

    #[test]
    fn classify_read_only() {
        let p = Profile::new(
            "rot".into(),
            leaf(vec![single(0, SymExpr::Input(0))], vec![]),
            vec![],
        );
        assert_eq!(p.class(), TxClass::ReadOnly);
        assert_eq!(p.partition_count(), 1);
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn classify_independent_and_predict() {
        let root = ProfileNode::Branch {
            cond: SymExpr::bin(BinOp::Gt, SymExpr::Input(0), SymExpr::int(5)),
            then: Box::new(leaf(vec![], vec![single(1, SymExpr::Input(0))])),
            els: Box::new(leaf(vec![], vec![single(2, SymExpr::Input(0))])),
        };
        let p = Profile::new("it".into(), root, vec![]);
        assert_eq!(p.class(), TxClass::Independent);
        assert_eq!(p.unique_key_sets(), 2);
        assert_eq!(p.depth(), 1);

        let pred = p.predict_direct(&[Value::Int(9)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[9])]);
        let pred = p.predict_direct(&[Value::Int(3)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(2), &[3])]);
    }

    #[test]
    fn classify_dependent_and_needs_store() {
        let piv = KeyTemplate::new(TableId(0), vec![SymExpr::Input(0)]);
        let root = leaf(
            vec![single(0, SymExpr::Input(0))],
            vec![single(1, SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0))],
        );
        let p = Profile::new("dt".into(), root, vec![piv]);
        assert_eq!(p.class(), TxClass::Dependent);
        assert_eq!(p.indirect_keys(), 1);

        let err = p.predict_direct(&[Value::Int(1)]).unwrap_err();
        assert_eq!(err, PredictError::NeedsStore);

        let mut resolver = |_: &Key| Value::record(vec![Value::Int(7)]);
        let pred = p.predict(&[Value::Int(1)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[7])]);
        assert_eq!(pred.pivot_observations.len(), 1);
        assert!(pred.is_dependent());
    }

    #[test]
    fn pivot_condition_makes_dependent() {
        let piv = KeyTemplate::new(TableId(0), vec![SymExpr::int(1)]);
        let root = ProfileNode::Branch {
            cond: SymExpr::bin(
                BinOp::Ne,
                SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
                SymExpr::int(0),
            ),
            then: Box::new(leaf(vec![], vec![single(1, SymExpr::Input(0))])),
            els: Box::new(leaf(vec![], vec![single(2, SymExpr::Input(0))])),
        };
        let p = Profile::new("dt2".into(), root.clone(), vec![piv]);
        assert_eq!(p.class(), TxClass::Dependent);
        assert!(root.has_pivot_condition());

        // Traversal resolves the pivot through the resolver.
        let mut resolver = |_: &Key| Value::record(vec![Value::Int(5)]);
        let pred = p.predict(&[Value::Int(3)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[3])]);
    }

    #[test]
    fn unique_key_sets_dedupes() {
        let same = leaf(vec![], vec![single(1, SymExpr::Input(0))]);
        let root = ProfileNode::Branch {
            cond: SymExpr::bin(BinOp::Gt, SymExpr::Input(0), SymExpr::int(5)),
            then: Box::new(same.clone()),
            els: Box::new(same),
        };
        let p = Profile::new("dup".into(), root, vec![]);
        assert_eq!(p.partition_count(), 2);
        assert_eq!(p.unique_key_sets(), 1);
    }

    #[test]
    fn display_and_size() {
        let p = Profile::new(
            "d".into(),
            leaf(vec![single(0, SymExpr::Input(0))], vec![]),
            vec![],
        );
        assert!(format!("{p}").contains("ROT"));
        assert!(p.approx_size() > 0);
    }

    #[test]
    fn empty_input_program_predicts_constant_keys() {
        // A program with no inputs at all: every key template is constant,
        // so prediction from an empty input slice must succeed and be
        // exact on every call.
        let p = Profile::new(
            "noinput".into(),
            leaf(
                vec![single(0, SymExpr::int(3))],
                vec![single(1, SymExpr::int(4))],
            ),
            vec![],
        );
        let pred = p.predict_direct(&[]).unwrap();
        assert_eq!(pred.reads, vec![Key::of_ints(TableId(0), &[3])]);
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[4])]);
        assert_eq!(pred.key_set().len(), 2);
        assert!(!pred.is_dependent());
    }

    #[test]
    fn empty_rws_program_predicts_nothing() {
        // Degenerate but legal: a program that touches no data at all.
        // The prediction must be empty — and classified read-only, since
        // there is nothing to write.
        let p = Profile::new("nop".into(), leaf(vec![], vec![]), vec![]);
        assert_eq!(p.class(), TxClass::ReadOnly);
        let pred = p.predict_direct(&[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(pred.reads.is_empty());
        assert!(pred.writes.is_empty());
        assert!(pred.key_set().is_empty());
    }

    #[test]
    fn pivot_condition_at_max_depth_resolves_or_demands_store() {
        // Build a comb of depth 6 whose five outer conditions are pure
        // input predicates and whose *deepest* branch consults a pivot.
        // The pivot must only force NeedsStore when the walk actually
        // reaches it; shallower paths stay client-side predictable.
        let piv = KeyTemplate::new(TableId(9), vec![SymExpr::int(0)]);
        let mut node = ProfileNode::Branch {
            cond: SymExpr::bin(
                BinOp::Gt,
                SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
                SymExpr::int(0),
            ),
            then: Box::new(leaf(vec![], vec![single(7, SymExpr::Input(0))])),
            els: Box::new(leaf(vec![], vec![single(8, SymExpr::Input(0))])),
        };
        for level in (1..6u16).rev() {
            node = ProfileNode::Branch {
                cond: SymExpr::bin(
                    BinOp::Gt,
                    SymExpr::Input(0),
                    SymExpr::int(i64::from(level)),
                ),
                then: Box::new(leaf(vec![], vec![single(level, SymExpr::Input(0))])),
                els: Box::new(node),
            };
        }
        let p = Profile::new("deep".into(), node, vec![piv]);
        assert_eq!(p.depth(), 6);
        assert_eq!(p.class(), TxClass::Dependent);

        // Input 9 exits at depth 1 without ever consulting the pivot.
        let pred = p.predict_direct(&[Value::Int(9)]).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[9])]);
        assert!(!pred.is_dependent());

        // Input 0 falls through every level to the pivot condition.
        assert_eq!(p.predict_direct(&[Value::Int(0)]).unwrap_err(), PredictError::NeedsStore);
        let mut resolver = |_: &Key| Value::record(vec![Value::Int(1)]);
        let pred = p.predict(&[Value::Int(0)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(7), &[0])]);
        assert_eq!(pred.pivot_observations.len(), 1, "the consulted pivot is recorded");
        assert!(pred.is_dependent());
    }

    #[test]
    fn indirect_key_templates_expand_to_pivot_directed_keys() {
        // An indirect template: the write key's partition column is a
        // pivot field plus an input offset. The instantiated key must
        // follow whatever the resolver reports, and each pivot is read
        // exactly once (cached across template positions).
        let piv = KeyTemplate::new(TableId(0), vec![SymExpr::Input(0)]);
        let indirect = SymExpr::bin(
            BinOp::Add,
            SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
            SymExpr::Input(1),
        );
        let root = leaf(
            vec![single(2, indirect.clone())],
            vec![single(3, indirect)],
        );
        let p = Profile::new("indirect".into(), root, vec![piv]);
        assert_eq!(p.class(), TxClass::Dependent);
        assert_eq!(p.indirect_keys(), 1);
        assert_eq!(p.max_indirect_entries(), 2);

        let mut reads = 0;
        let mut resolver = |k: &Key| {
            reads += 1;
            assert_eq!(k, &Key::of_ints(TableId(0), &[5]));
            Value::record(vec![Value::Int(40)])
        };
        let pred = p.predict(&[Value::Int(5), Value::Int(2)], Some(&mut resolver)).unwrap();
        assert_eq!(pred.reads, vec![Key::of_ints(TableId(2), &[42])]);
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(3), &[42])]);
        assert_eq!(reads, 1, "pivot resolved once, then cached");
    }

    #[test]
    fn pivot_bounded_range_counts_indirection_and_size_consistently() {
        // Regression for the indirect-entry accounting: a range whose
        // *bound* consults a pivot but whose body is direct used to report
        // max_indirect_entries() == 0 even though is_indirect() (and the
        // Dependent classification) said otherwise, and approx_size()
        // charged the pivot template nothing beyond its folded parts.
        let piv = KeyTemplate::new(TableId(0), vec![SymExpr::int(0)]);
        let body = RwsEntry::Single(KeyTemplate::new(
            TableId(4),
            vec![SymExpr::LoopVar(crate::sym::LoopVarId(0))],
        ));
        let entry = RwsEntry::Range {
            loop_var: crate::sym::LoopVarId(0),
            from: SymExpr::int(0),
            to: SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
            entries: vec![body],
        };
        assert!(entry.is_indirect(), "pivot-bounded range is indirect");
        assert_eq!(entry.indirect_count(), 1, "the pivot bound is a store consultation");

        let with_pivot = Profile::new(
            "cursor_scan".into(),
            leaf(vec![], vec![entry]),
            vec![piv],
        );
        assert_eq!(with_pivot.class(), TxClass::Dependent);
        assert_eq!(
            with_pivot.max_indirect_entries(),
            1,
            "classification and the indirection metric agree"
        );

        // A profile identical except for the pivot templates must be
        // strictly smaller: the pivot template's own footprint counts.
        let without_pivot = Profile::new(
            "cursor_scan_no_piv".into(),
            leaf(
                vec![],
                vec![RwsEntry::Range {
                    loop_var: crate::sym::LoopVarId(0),
                    from: SymExpr::int(0),
                    to: SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
                    entries: vec![RwsEntry::Single(KeyTemplate::new(
                        TableId(4),
                        vec![SymExpr::LoopVar(crate::sym::LoopVarId(0))],
                    ))],
                }],
            ),
            vec![],
        );
        assert!(
            with_pivot.approx_size()
                >= without_pivot.approx_size() + std::mem::size_of::<KeyTemplate>(),
            "each pivot template is charged at least its struct size: {} vs {}",
            with_pivot.approx_size(),
            without_pivot.approx_size(),
        );
    }

    #[test]
    fn range_templates_expand_with_pivot_bounds() {
        // A summarized loop whose exclusive upper bound comes from a pivot
        // (TPC-C delivery shape): the expansion must cover exactly
        // [0, pivot) and stay empty when the pivot reports zero.
        let piv = KeyTemplate::new(TableId(0), vec![SymExpr::int(0)]);
        let body = RwsEntry::Single(KeyTemplate::new(
            TableId(4),
            vec![
                SymExpr::Input(0),
                SymExpr::bin(
                    BinOp::Add,
                    SymExpr::LoopVar(crate::sym::LoopVarId(0)),
                    SymExpr::int(10),
                ),
            ],
        ));
        let root = leaf(
            vec![],
            vec![RwsEntry::Range {
                loop_var: crate::sym::LoopVarId(0),
                from: SymExpr::int(0),
                to: SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
                entries: vec![body],
            }],
        );
        let p = Profile::new("ranged".into(), root, vec![piv]);
        assert_eq!(p.class(), TxClass::Dependent);

        let mut resolver = |_: &Key| Value::record(vec![Value::Int(3)]);
        let pred = p.predict(&[Value::Int(7)], Some(&mut resolver)).unwrap();
        let expect: Vec<Key> =
            (0..3).map(|i| Key::of_ints(TableId(4), &[7, 10 + i])).collect();
        assert_eq!(pred.writes, expect);

        let mut empty = |_: &Key| Value::record(vec![Value::Int(0)]);
        let pred = p.predict(&[Value::Int(7)], Some(&mut empty)).unwrap();
        assert!(pred.writes.is_empty(), "zero-length range expands to nothing");
        assert_eq!(pred.pivot_observations.len(), 1, "the bound pivot is still observed");
    }
}
