//! A compact, self-contained binary codec for transaction profiles.
//!
//! In the paper's architecture the SE engine runs once, offline, at the
//! client, and "the Client Request Dispatcher sends the transaction
//! requests enriched with this information to the System Replicas"
//! (§III-A). That requires profiles to cross process boundaries; this
//! module provides a dependency-free, versioned wire format (the offline
//! crate set has no serde *format* crate, so the encoding is hand-rolled
//! and covered by round-trip property tests).

use crate::profile::{Profile, ProfileNode};
use crate::rws::{RwsEntry, RwsTemplate};
use crate::sym::{KeyTemplate, LoopVarId, PivotId, SymExpr};
use prognosticator_txir::{BinOp, TableId, UnOp, Value};
use std::fmt;

/// Format version tag (first byte of every encoded profile).
pub const CODEC_VERSION: u8 = 1;

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended prematurely.
    UnexpectedEof,
    /// Unknown tag byte at the given offset.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Unsupported format version.
    BadVersion(u8),
    /// A length prefix exceeded sanity limits.
    LengthOverflow,
    /// Embedded string was not UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadTag { what, tag } => write!(f, "bad tag {tag:#x} while decoding {what}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            DecodeError::LengthOverflow => write!(f, "length prefix exceeds sanity limit"),
            DecodeError::BadUtf8 => write!(f, "embedded string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

const MAX_LEN: usize = 1 << 24;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// LEB128-style variable-length unsigned integer.
    fn uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }
    /// Zig-zag signed integer.
    fn ivarint(&mut self, v: i64) {
        self.uvarint(((v << 1) ^ (v >> 63)) as u64);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.uvarint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }
    fn uvarint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::LengthOverflow);
            }
        }
    }
    fn ivarint(&mut self) -> Result<i64, DecodeError> {
        let v = self.uvarint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.uvarint()? as usize;
        if n > MAX_LEN {
            return Err(DecodeError::LengthOverflow);
        }
        Ok(n)
    }
    fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.len()?;
        let end = self.pos.checked_add(n).ok_or(DecodeError::LengthOverflow)?;
        let s = self.buf.get(self.pos..end).ok_or(DecodeError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }
}

fn write_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Unit => w.u8(0),
        Value::Bool(b) => {
            w.u8(1);
            w.u8(u8::from(*b));
        }
        Value::Int(i) => {
            w.u8(2);
            w.ivarint(*i);
        }
        Value::Str(s) => {
            w.u8(3);
            w.bytes(s.as_bytes());
        }
        Value::Record(fields) => {
            w.u8(4);
            w.uvarint(fields.len() as u64);
            for f in fields.iter() {
                write_value(w, f);
            }
        }
        Value::List(items) => {
            w.u8(5);
            w.uvarint(items.len() as u64);
            for i in items.iter() {
                write_value(w, i);
            }
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    Ok(match r.u8()? {
        0 => Value::Unit,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.ivarint()?),
        3 => Value::Str(
            std::str::from_utf8(r.bytes()?).map_err(|_| DecodeError::BadUtf8)?.into(),
        ),
        4 => {
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(read_value(r)?);
            }
            Value::record(fields)
        }
        5 => {
            let n = r.len()?;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(read_value(r)?);
            }
            Value::list(items)
        }
        tag => return Err(DecodeError::BadTag { what: "value", tag }),
    })
}

fn bin_op_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn bin_op_of(code: u8) -> Result<BinOp, DecodeError> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        tag => return Err(DecodeError::BadTag { what: "binop", tag }),
    })
}

fn write_expr(w: &mut Writer, e: &SymExpr) {
    match e {
        SymExpr::Const(v) => {
            w.u8(0);
            write_value(w, v);
        }
        SymExpr::Input(i) => {
            w.u8(1);
            w.uvarint(*i as u64);
        }
        SymExpr::InputIndex(i, idx) => {
            w.u8(2);
            w.uvarint(*i as u64);
            write_expr(w, idx);
        }
        SymExpr::InputLen(i) => {
            w.u8(3);
            w.uvarint(*i as u64);
        }
        SymExpr::Pivot(p) => {
            w.u8(4);
            w.uvarint(u64::from(p.0));
        }
        SymExpr::Field(e, idx) => {
            w.u8(5);
            write_expr(w, e);
            w.uvarint(*idx as u64);
        }
        SymExpr::Bin(op, a, b) => {
            w.u8(6);
            w.u8(bin_op_code(*op));
            write_expr(w, a);
            write_expr(w, b);
        }
        SymExpr::Un(op, e) => {
            w.u8(7);
            w.u8(match op {
                UnOp::Not => 0,
                UnOp::Neg => 1,
            });
            write_expr(w, e);
        }
        SymExpr::Record(fields) => {
            w.u8(8);
            w.uvarint(fields.len() as u64);
            for f in fields {
                write_expr(w, f);
            }
        }
        SymExpr::SetField(base, idx, v) => {
            w.u8(9);
            write_expr(w, base);
            w.uvarint(*idx as u64);
            write_expr(w, v);
        }
        SymExpr::LoopVar(l) => {
            w.u8(10);
            w.uvarint(u64::from(l.0));
        }
    }
}

fn read_expr(r: &mut Reader<'_>) -> Result<SymExpr, DecodeError> {
    Ok(match r.u8()? {
        0 => SymExpr::Const(read_value(r)?),
        1 => SymExpr::Input(r.uvarint()? as usize),
        2 => {
            let i = r.uvarint()? as usize;
            SymExpr::InputIndex(i, Box::new(read_expr(r)?))
        }
        3 => SymExpr::InputLen(r.uvarint()? as usize),
        4 => SymExpr::Pivot(PivotId(r.uvarint()? as u32)),
        5 => {
            let e = read_expr(r)?;
            SymExpr::Field(Box::new(e), r.uvarint()? as usize)
        }
        6 => {
            let op = bin_op_of(r.u8()?)?;
            let a = read_expr(r)?;
            let b = read_expr(r)?;
            SymExpr::Bin(op, Box::new(a), Box::new(b))
        }
        7 => {
            let op = match r.u8()? {
                0 => UnOp::Not,
                1 => UnOp::Neg,
                tag => return Err(DecodeError::BadTag { what: "unop", tag }),
            };
            SymExpr::Un(op, Box::new(read_expr(r)?))
        }
        8 => {
            let n = r.len()?;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(read_expr(r)?);
            }
            SymExpr::Record(fields)
        }
        9 => {
            let base = read_expr(r)?;
            let idx = r.uvarint()? as usize;
            let v = read_expr(r)?;
            SymExpr::SetField(Box::new(base), idx, Box::new(v))
        }
        10 => SymExpr::LoopVar(LoopVarId(r.uvarint()? as u32)),
        tag => return Err(DecodeError::BadTag { what: "expr", tag }),
    })
}

fn write_key_template(w: &mut Writer, kt: &KeyTemplate) {
    w.uvarint(u64::from(kt.table.0));
    w.uvarint(kt.parts.len() as u64);
    for p in &kt.parts {
        write_expr(w, p);
    }
}

fn read_key_template(r: &mut Reader<'_>) -> Result<KeyTemplate, DecodeError> {
    let table = TableId(r.uvarint()? as u16);
    let n = r.len()?;
    let mut parts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        parts.push(read_expr(r)?);
    }
    Ok(KeyTemplate::new(table, parts))
}

fn write_entry(w: &mut Writer, e: &RwsEntry) {
    match e {
        RwsEntry::Single(kt) => {
            w.u8(0);
            write_key_template(w, kt);
        }
        RwsEntry::Range { loop_var, from, to, entries } => {
            w.u8(1);
            w.uvarint(u64::from(loop_var.0));
            write_expr(w, from);
            write_expr(w, to);
            w.uvarint(entries.len() as u64);
            for e in entries {
                write_entry(w, e);
            }
        }
    }
}

fn read_entry(r: &mut Reader<'_>) -> Result<RwsEntry, DecodeError> {
    Ok(match r.u8()? {
        0 => RwsEntry::Single(read_key_template(r)?),
        1 => {
            let loop_var = LoopVarId(r.uvarint()? as u32);
            let from = read_expr(r)?;
            let to = read_expr(r)?;
            let n = r.len()?;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                entries.push(read_entry(r)?);
            }
            RwsEntry::Range { loop_var, from, to, entries }
        }
        tag => return Err(DecodeError::BadTag { what: "rws entry", tag }),
    })
}

fn write_template(w: &mut Writer, t: &RwsTemplate) {
    w.uvarint(t.reads.len() as u64);
    for e in &t.reads {
        write_entry(w, e);
    }
    w.uvarint(t.writes.len() as u64);
    for e in &t.writes {
        write_entry(w, e);
    }
}

fn read_template(r: &mut Reader<'_>) -> Result<RwsTemplate, DecodeError> {
    let nr = r.len()?;
    let mut reads = Vec::with_capacity(nr.min(1024));
    for _ in 0..nr {
        reads.push(read_entry(r)?);
    }
    let nw = r.len()?;
    let mut writes = Vec::with_capacity(nw.min(1024));
    for _ in 0..nw {
        writes.push(read_entry(r)?);
    }
    Ok(RwsTemplate { reads, writes })
}

fn write_node(w: &mut Writer, node: &ProfileNode) {
    match node {
        ProfileNode::Leaf(t) => {
            w.u8(0);
            write_template(w, t);
        }
        ProfileNode::Branch { cond, then, els } => {
            w.u8(1);
            write_expr(w, cond);
            write_node(w, then);
            write_node(w, els);
        }
    }
}

fn read_node(r: &mut Reader<'_>, depth: u32) -> Result<ProfileNode, DecodeError> {
    if depth > 10_000 {
        return Err(DecodeError::LengthOverflow);
    }
    Ok(match r.u8()? {
        0 => ProfileNode::Leaf(read_template(r)?),
        1 => {
            let cond = read_expr(r)?;
            let then = read_node(r, depth + 1)?;
            let els = read_node(r, depth + 1)?;
            ProfileNode::Branch { cond, then: Box::new(then), els: Box::new(els) }
        }
        tag => return Err(DecodeError::BadTag { what: "profile node", tag }),
    })
}

/// Encodes a profile to bytes.
pub fn encode_profile(profile: &Profile) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(256) };
    w.u8(CODEC_VERSION);
    w.bytes(profile.program_name().as_bytes());
    w.uvarint(profile.pivot_specs().len() as u64);
    for kt in profile.pivot_specs() {
        write_key_template(&mut w, kt);
    }
    write_node(&mut w, profile.root());
    w.buf
}

/// Decodes a profile from bytes.
///
/// # Errors
/// Returns a [`DecodeError`] on malformed or truncated input; trailing
/// bytes are rejected.
pub fn decode_profile(bytes: &[u8]) -> Result<Profile, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let version = r.u8()?;
    if version != CODEC_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let name = std::str::from_utf8(r.bytes()?)
        .map_err(|_| DecodeError::BadUtf8)?
        .to_owned();
    let n = r.len()?;
    let mut pivots = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        pivots.push(read_key_template(&mut r)?);
    }
    let root = read_node(&mut r, 0)?;
    if r.pos != bytes.len() {
        return Err(DecodeError::BadTag { what: "trailing bytes", tag: bytes[r.pos] });
    }
    Ok(Profile::new(name, root, pivots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{analyze, ExplorerConfig};
    use prognosticator_txir::{Expr, InputBound, ProgramBuilder};

    fn roundtrip(profile: &Profile) {
        let bytes = encode_profile(profile);
        let back = decode_profile(&bytes).expect("decodes");
        assert_eq!(profile, &back);
        assert_eq!(profile.class(), back.class());
    }

    #[test]
    fn roundtrips_simple_profiles() {
        let mut b = ProgramBuilder::new("simple");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.put(Expr::key(t, vec![Expr::input(id)]), Expr::var(v).add(Expr::lit(1)));
        let a = analyze(&b.build(), &ExplorerConfig::optimized()).expect("analyzes");
        roundtrip(&a.profile);
    }

    #[test]
    fn roundtrips_branchy_and_dependent_profiles() {
        let mut b = ProgramBuilder::new("dep");
        let t = b.table("t");
        let u = b.table("u");
        let id = b.input("id", InputBound::int(0, 9));
        let n = b.input("n", InputBound::int(1, 4));
        let v = b.var("v");
        let i = b.var("i");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.if_(
            Expr::var(v).gt(Expr::lit(5)),
            |b| b.put(Expr::key(u, vec![Expr::var(v)]), Expr::lit(1)),
            |b| {
                b.for_(i, Expr::lit(0), Expr::input(n), |b| {
                    b.put(Expr::key(u, vec![Expr::var(i)]), Expr::lit(0));
                });
            },
        );
        let a = analyze(&b.build(), &ExplorerConfig::optimized()).expect("analyzes");
        assert!(a.profile.partition_count() >= 2);
        roundtrip(&a.profile);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(decode_profile(&[]), Err(DecodeError::UnexpectedEof));
        assert_eq!(decode_profile(&[9]), Err(DecodeError::BadVersion(9)));
        // Corrupt every byte of a valid encoding; decoding must never
        // panic, only error or produce *some* profile.
        let mut b = ProgramBuilder::new("x");
        let t = b.table("t");
        b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(2));
        let a = analyze(&b.build(), &ExplorerConfig::optimized()).expect("analyzes");
        let bytes = encode_profile(&a.profile);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0xff;
            let _ = decode_profile(&corrupt); // must not panic
        }
        // Truncations likewise.
        for i in 0..bytes.len() {
            let _ = decode_profile(&bytes[..i]);
        }
    }

    #[test]
    fn varint_edges() {
        let mut w = Writer { buf: Vec::new() };
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 300, -300] {
            w.ivarint(v);
        }
        let mut r = Reader { buf: &w.buf, pos: 0 };
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 300, -300] {
            assert_eq!(r.ivarint().unwrap(), v);
        }
    }
}
