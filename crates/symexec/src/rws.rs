//! Read/write-set templates and their concrete instantiation (prediction).

use crate::sym::{ConcreteEnv, KeyTemplate, LoopVarId, PivotId, SymExpr};
use prognosticator_txir::{EvalError, Key, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// One entry of a read- or write-set template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RwsEntry {
    /// A single (possibly symbolic, possibly indirect) key.
    Single(KeyTemplate),
    /// A summarized loop: for `loop_var` in `from..to`, every nested entry
    /// is accessed once per iteration. Produced by loop summarization
    /// (§III-B "exploring and merging execution paths"): this is what lets
    /// TPC-C `newOrder` collapse to a single key-set.
    Range {
        /// The summarized induction variable.
        loop_var: LoopVarId,
        /// Inclusive start (symbolic over inputs).
        from: SymExpr,
        /// Exclusive end (symbolic over inputs).
        to: SymExpr,
        /// Per-iteration entries (may reference `loop_var`).
        entries: Vec<RwsEntry>,
    },
}

impl RwsEntry {
    /// Whether this entry (or any nested entry) depends on a pivot. A
    /// `Range` is indirect when its body is, but also when either *bound*
    /// consults a pivot — the expansion length itself then needs the
    /// store, so the instance cannot be predicted client-side.
    pub fn is_indirect(&self) -> bool {
        match self {
            RwsEntry::Single(kt) => kt.is_indirect(),
            RwsEntry::Range { from, to, entries, .. } => {
                from.mentions_pivot()
                    || to.mentions_pivot()
                    || entries.iter().any(RwsEntry::is_indirect)
            }
        }
    }

    /// Number of template positions that need the store to instantiate
    /// (the Table I "indirect keys" metric counts template positions, not
    /// expansions). A `Range` counts its body once plus each *bound* that
    /// consults a pivot — a pivot-bounded range needs the store for its
    /// expansion length even when its body is direct, and
    /// [`RwsEntry::is_indirect`] already classifies it as indirect;
    /// counting zero positions for it understated every pivot-bounded
    /// scan (TPC-C delivery's district cursors).
    pub fn indirect_count(&self) -> u64 {
        match self {
            RwsEntry::Single(kt) => u64::from(kt.is_indirect()),
            RwsEntry::Range { from, to, entries, .. } => {
                u64::from(from.mentions_pivot())
                    + u64::from(to.mentions_pivot())
                    + entries.iter().map(RwsEntry::indirect_count).sum::<u64>()
            }
        }
    }

    /// Pivots mentioned anywhere in the entry.
    pub fn pivots(&self) -> Vec<PivotId> {
        let mut out = Vec::new();
        self.collect_pivots(&mut out);
        out
    }

    fn collect_pivots(&self, out: &mut Vec<PivotId>) {
        match self {
            RwsEntry::Single(kt) => {
                for p in kt.pivots() {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
            }
            RwsEntry::Range { from, to, entries, .. } => {
                for p in from.pivots().into_iter().chain(to.pivots()) {
                    if !out.contains(&p) {
                        out.push(p);
                    }
                }
                for e in entries {
                    e.collect_pivots(out);
                }
            }
        }
    }

    /// Rough heap-size estimate in bytes.
    pub fn approx_size(&self) -> usize {
        match self {
            RwsEntry::Single(kt) => {
                std::mem::size_of::<Self>()
                    + kt.parts.iter().map(SymExpr::approx_size).sum::<usize>()
            }
            RwsEntry::Range { from, to, entries, .. } => {
                std::mem::size_of::<Self>()
                    + from.approx_size()
                    + to.approx_size()
                    + entries.iter().map(RwsEntry::approx_size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for RwsEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RwsEntry::Single(kt) => write!(f, "{kt}"),
            RwsEntry::Range { loop_var, from, to, entries } => {
                write!(f, "for {loop_var} in {from}..{to} {{")?;
                for (i, e) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The read/write-set template of one execution-path partition (one profile
/// leaf): the `RWS_i` of a `<PSC_i, RWS_i>` pair in the paper's terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RwsTemplate {
    /// Read-set entries, deduplicated, program order.
    pub reads: Vec<RwsEntry>,
    /// Write-set entries, deduplicated, program order.
    pub writes: Vec<RwsEntry>,
}

impl RwsTemplate {
    /// Whether the path writes nothing.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }

    /// Whether any entry is indirect (pivot-dependent).
    pub fn has_indirect(&self) -> bool {
        self.reads.iter().chain(&self.writes).any(RwsEntry::is_indirect)
    }

    /// Indirect-entry count (see [`RwsEntry::indirect_count`]).
    pub fn indirect_count(&self) -> u64 {
        self.reads.iter().chain(&self.writes).map(RwsEntry::indirect_count).sum()
    }

    /// All pivots referenced by the template.
    pub fn pivots(&self) -> Vec<PivotId> {
        let mut out = Vec::new();
        for e in self.reads.iter().chain(&self.writes) {
            e.collect_pivots(&mut out);
        }
        out
    }

    /// Rough heap-size estimate in bytes.
    pub fn approx_size(&self) -> usize {
        self.reads.iter().chain(&self.writes).map(RwsEntry::approx_size).sum()
    }
}

/// Classification of a transaction program, derived from its profile
/// (paper §III-C): read-only (ROT), independent (IT) or dependent (DT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxClass {
    /// Never writes; executed lock-less against a snapshot.
    ReadOnly,
    /// Key-set is a function of the inputs alone.
    Independent,
    /// Key-set depends on database state (has pivots); requires the
    /// *prepare indirect keys* phase and validation at execution time.
    Dependent,
}

impl fmt::Display for TxClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxClass::ReadOnly => "ROT",
            TxClass::Independent => "IT",
            TxClass::Dependent => "DT",
        })
    }
}

/// The concrete key-set predicted for one transaction instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prediction {
    /// Concrete keys predicted to be read (deduplicated).
    pub reads: Vec<Key>,
    /// Concrete keys predicted to be written (deduplicated).
    pub writes: Vec<Key>,
    /// Pivot observations made while predicting: `(key, value at
    /// prediction time)`. Workers re-read these at execution time and abort
    /// the transaction if any changed (the paper's DT validation).
    pub pivot_observations: Vec<(Key, Value)>,
}

impl Prediction {
    /// Deduplicated union of reads and writes — the keys to lock.
    pub fn key_set(&self) -> Vec<Key> {
        let mut out = self.reads.clone();
        for k in &self.writes {
            if !out.contains(k) {
                out.push(k.clone());
            }
        }
        out
    }

    /// Whether any pivot was consulted (i.e. this instance is dependent).
    pub fn is_dependent(&self) -> bool {
        !self.pivot_observations.is_empty()
    }

    fn push_read(&mut self, k: Key) {
        if !self.reads.contains(&k) {
            self.reads.push(k);
        }
    }

    fn push_write(&mut self, k: Key) {
        if !self.writes.contains(&k) {
            self.writes.push(k);
        }
    }
}

/// Resolves pivot keys against a store snapshot during prediction — the
/// *prepare indirect keys* phase reads through this.
pub trait PivotResolver {
    /// Reads the current snapshot value of `key` (`Value::Unit` if absent).
    fn read(&mut self, key: &Key) -> Value;
}

impl<F: FnMut(&Key) -> Value> PivotResolver for F {
    fn read(&mut self, key: &Key) -> Value {
        self(key)
    }
}

/// Expands a leaf's template into a concrete [`Prediction`].
///
/// `pivot_specs[p]` gives the key template of pivot `p`. Pivot values are
/// fetched through `resolver` (at most once per concrete key) and recorded
/// as observations. If `resolver` is `None`, any pivot reference fails —
/// used for pure client-side prediction of independent transactions.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn instantiate_template<'a>(
    template: &RwsTemplate,
    inputs: &'a [Value],
    pivot_specs: &'a [KeyTemplate],
    resolver: Option<&'a mut dyn PivotResolver>,
    prediction: &mut Prediction,
) -> Result<(), EvalError> {
    let mut cx = Instantiator {
        inputs,
        pivot_specs,
        resolver,
        cache: HashMap::new(),
        observations: Vec::new(),
    };
    let mut loop_env = Vec::new();
    for e in &template.reads {
        cx.expand(e, &mut loop_env, false, prediction)?;
    }
    for e in &template.writes {
        cx.expand(e, &mut loop_env, true, prediction)?;
    }
    for (k, v) in cx.observations {
        if !prediction.pivot_observations.iter().any(|(pk, _)| pk == &k) {
            prediction.pivot_observations.push((k, v));
        }
    }
    Ok(())
}

/// Evaluates a symbolic expression during prediction, resolving pivots via
/// the resolver. Shared with profile-tree condition evaluation.
pub(crate) struct Instantiator<'a> {
    pub inputs: &'a [Value],
    pub pivot_specs: &'a [KeyTemplate],
    pub resolver: Option<&'a mut dyn PivotResolver>,
    /// Cache of pivot values by concrete key.
    pub cache: HashMap<Key, Value>,
    pub observations: Vec<(Key, Value)>,
}

impl<'a> Instantiator<'a> {
    /// Evaluates `expr` with loop bindings `loop_env` (innermost last).
    pub fn eval(
        &mut self,
        expr: &SymExpr,
        loop_env: &mut Vec<(LoopVarId, i64)>,
    ) -> Result<Value, EvalError> {
        // The ConcreteEnv closure API cannot re-enter `self` mutably, so
        // walk the expression here for the pivot/loop cases and delegate
        // pure parts to SymExpr::eval.
        match expr {
            SymExpr::Pivot(p) => self.pivot_value(*p, loop_env),
            SymExpr::Field(e, idx) => match self.eval(e, loop_env)? {
                Value::Record(r) => r
                    .get(*idx)
                    .cloned()
                    .ok_or(EvalError::FieldOutOfRange { index: *idx, len: r.len() }),
                Value::Unit => Ok(Value::Int(0)),
                other => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            },
            SymExpr::Bin(op, a, b) => {
                let av = self.eval(a, loop_env)?;
                let bv = self.eval(b, loop_env)?;
                prognosticator_txir::interp::apply_bin(*op, av, bv)
            }
            SymExpr::Un(op, e) => {
                let v = self.eval(e, loop_env)?;
                match (op, v) {
                    (prognosticator_txir::UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (prognosticator_txir::UnOp::Neg, Value::Int(i)) => {
                        i.checked_neg().map(Value::Int).ok_or(EvalError::Overflow)
                    }
                    (_, other) => {
                        Err(EvalError::TypeMismatch { expected: "bool/int", got: other })
                    }
                }
            }
            SymExpr::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    vals.push(self.eval(f, loop_env)?);
                }
                Ok(Value::record(vals))
            }
            SymExpr::SetField(base, idx, v) => match self.eval(base, loop_env)? {
                Value::Record(r) => {
                    if *idx >= r.len() {
                        return Err(EvalError::FieldOutOfRange { index: *idx, len: r.len() });
                    }
                    let mut fields = r.as_ref().clone();
                    fields[*idx] = self.eval(v, loop_env)?;
                    Ok(Value::record(fields))
                }
                other => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            },
            SymExpr::InputIndex(i, idx) => {
                let idxv = self.eval(idx, loop_env)?;
                let env = ConcreteEnv::inputs_only(self.inputs);
                SymExpr::InputIndex(*i, Box::new(SymExpr::Const(idxv))).eval(&env)
            }
            SymExpr::LoopVar(l) => loop_env
                .iter()
                .rev()
                .find(|(lv, _)| lv == l)
                .map(|(_, v)| Value::Int(*v))
                .ok_or(EvalError::TypeMismatch {
                    expected: "bound loop variable",
                    got: Value::str(&format!("{l}")),
                }),
            other => {
                let env = ConcreteEnv::inputs_only(self.inputs);
                other.eval(&env)
            }
        }
    }

    fn pivot_value(
        &mut self,
        p: PivotId,
        loop_env: &mut Vec<(LoopVarId, i64)>,
    ) -> Result<Value, EvalError> {
        let spec = self.pivot_specs.get(p.0 as usize).cloned().ok_or(
            EvalError::TypeMismatch {
                expected: "known pivot",
                got: Value::str(&format!("{p}")),
            },
        )?;
        let mut parts = Vec::with_capacity(spec.parts.len());
        for part in &spec.parts {
            parts.push(self.eval(part, loop_env)?);
        }
        let key = Key::new(spec.table, parts);
        if let Some(v) = self.cache.get(&key) {
            return Ok(v.clone());
        }
        let resolver = self.resolver.as_mut().ok_or(EvalError::TypeMismatch {
            expected: "pivot resolver (dependent transaction)",
            got: Value::str(&format!("{p}")),
        })?;
        let v = resolver.read(&key);
        self.cache.insert(key.clone(), v.clone());
        self.observations.push((key, v.clone()));
        Ok(v)
    }

    pub(crate) fn expand(
        &mut self,
        entry: &RwsEntry,
        loop_env: &mut Vec<(LoopVarId, i64)>,
        is_write: bool,
        prediction: &mut Prediction,
    ) -> Result<(), EvalError> {
        match entry {
            RwsEntry::Single(kt) => {
                let mut parts = Vec::with_capacity(kt.parts.len());
                for p in &kt.parts {
                    parts.push(self.eval(p, loop_env)?);
                }
                let key = Key::new(kt.table, parts);
                if is_write {
                    prediction.push_write(key);
                } else {
                    prediction.push_read(key);
                }
                Ok(())
            }
            RwsEntry::Range { loop_var, from, to, entries } => {
                let from = match self.eval(from, loop_env)? {
                    Value::Int(i) => i,
                    other => return Err(EvalError::TypeMismatch { expected: "int", got: other }),
                };
                let to = match self.eval(to, loop_env)? {
                    Value::Int(i) => i,
                    other => return Err(EvalError::TypeMismatch { expected: "int", got: other }),
                };
                for i in from..to {
                    loop_env.push((*loop_var, i));
                    for e in entries {
                        self.expand(e, loop_env, is_write, prediction)?;
                    }
                    loop_env.pop();
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_txir::TableId;

    fn direct(table: u16, part: SymExpr) -> RwsEntry {
        RwsEntry::Single(KeyTemplate::new(TableId(table), vec![part]))
    }

    #[test]
    fn tx_class_display() {
        assert_eq!(TxClass::ReadOnly.to_string(), "ROT");
        assert_eq!(TxClass::Independent.to_string(), "IT");
        assert_eq!(TxClass::Dependent.to_string(), "DT");
    }

    #[test]
    fn instantiate_direct_template() {
        let t = RwsTemplate {
            reads: vec![direct(0, SymExpr::Input(0))],
            writes: vec![direct(1, SymExpr::bin(
                prognosticator_txir::BinOp::Add,
                SymExpr::Input(0),
                SymExpr::int(1),
            ))],
        };
        assert!(!t.has_indirect());
        let mut pred = Prediction::default();
        instantiate_template(&t, &[Value::Int(4)], &[], None, &mut pred).unwrap();
        assert_eq!(pred.reads, vec![Key::of_ints(TableId(0), &[4])]);
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[5])]);
        assert!(!pred.is_dependent());
        assert_eq!(pred.key_set().len(), 2);
    }

    #[test]
    fn instantiate_range_template() {
        let lv = LoopVarId(0);
        let t = RwsTemplate {
            reads: vec![RwsEntry::Range {
                loop_var: lv,
                from: SymExpr::int(0),
                to: SymExpr::Input(0),
                entries: vec![direct(2, SymExpr::LoopVar(lv))],
            }],
            writes: vec![],
        };
        let mut pred = Prediction::default();
        instantiate_template(&t, &[Value::Int(3)], &[], None, &mut pred).unwrap();
        assert_eq!(
            pred.reads,
            vec![
                Key::of_ints(TableId(2), &[0]),
                Key::of_ints(TableId(2), &[1]),
                Key::of_ints(TableId(2), &[2]),
            ]
        );
        assert!(t.is_read_only());
    }

    #[test]
    fn instantiate_pivot_template_records_observation() {
        // pivot p0 = GET(t0(in0)); write t1(p0.0 + 1)
        let p0_spec = KeyTemplate::new(TableId(0), vec![SymExpr::Input(0)]);
        let t = RwsTemplate {
            reads: vec![direct(0, SymExpr::Input(0))],
            writes: vec![direct(
                1,
                SymExpr::bin(
                    prognosticator_txir::BinOp::Add,
                    SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0),
                    SymExpr::int(1),
                ),
            )],
        };
        assert!(t.has_indirect());
        assert_eq!(t.indirect_count(), 1);
        assert_eq!(t.pivots(), vec![PivotId(0)]);

        let mut pred = Prediction::default();
        let mut resolver = |k: &Key| {
            assert_eq!(k, &Key::of_ints(TableId(0), &[7]));
            Value::record(vec![Value::Int(41)])
        };
        instantiate_template(
            &t,
            &[Value::Int(7)],
            std::slice::from_ref(&p0_spec),
            Some(&mut resolver),
            &mut pred,
        )
        .unwrap();
        assert_eq!(pred.writes, vec![Key::of_ints(TableId(1), &[42])]);
        assert!(pred.is_dependent());
        assert_eq!(pred.pivot_observations.len(), 1);
    }

    #[test]
    fn pivot_without_resolver_fails() {
        let p0_spec = KeyTemplate::new(TableId(0), vec![SymExpr::int(1)]);
        let t = RwsTemplate {
            reads: vec![],
            writes: vec![direct(1, SymExpr::Pivot(PivotId(0)))],
        };
        let mut pred = Prediction::default();
        let err =
            instantiate_template(&t, &[], std::slice::from_ref(&p0_spec), None, &mut pred);
        assert!(err.is_err());
    }

    #[test]
    fn pivot_cache_reads_once() {
        let p0_spec = KeyTemplate::new(TableId(0), vec![SymExpr::int(1)]);
        let t = RwsTemplate {
            reads: vec![
                direct(1, SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0)),
                direct(2, SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0)),
            ],
            writes: vec![],
        };
        let mut count = 0;
        let mut resolver = |_: &Key| {
            count += 1;
            Value::record(vec![Value::Int(5)])
        };
        let mut pred = Prediction::default();
        instantiate_template(
            &t,
            &[],
            std::slice::from_ref(&p0_spec),
            Some(&mut resolver),
            &mut pred,
        )
        .unwrap();
        assert_eq!(count, 1);
        assert_eq!(pred.pivot_observations.len(), 1);
        assert_eq!(pred.reads.len(), 2);
    }

    #[test]
    fn display_entries() {
        let e = RwsEntry::Range {
            loop_var: LoopVarId(1),
            from: SymExpr::int(0),
            to: SymExpr::Input(0),
            entries: vec![direct(0, SymExpr::LoopVar(LoopVarId(1)))],
        };
        assert!(format!("{e}").contains(".."));
    }
}
