//! Irrelevant-variable analysis (the paper's Soot-based optimization).
//!
//! A variable or input is **relevant** when information can flow from it —
//! explicitly through assignments, or implicitly through control flow —
//! into the *identity* of a key passed to GET/PUT (paper §III-B, "avoiding
//! irrelevant paths"). Everything else is *irrelevant* and is concretized
//! during symbolic execution (concolic execution), so branches that depend
//! only on irrelevant data follow a single path.
//!
//! The analysis is a conservative backward fixpoint:
//!
//! * **seed** — variables/inputs appearing in any GET/PUT key expression,
//!   and the bounds of any loop whose body performs a store access (the
//!   iteration count decides *which* keys are touched);
//! * **explicit flow** — if `v` is relevant and `v = e`, everything `e`
//!   reads is relevant;
//! * **implicit flow** — if a branch (or loop) assigns a relevant variable,
//!   the branch condition (loop bounds) is relevant;
//! * **access-shape flow** — if the two arms of a branch perform
//!   syntactically different store accesses, the condition is relevant
//!   (this is what keeps TPC-C `delivery`'s per-district `if` symbolic
//!   while letting `newOrder`'s stock-update `if` collapse).

use prognosticator_txir::{Expr, Program, Stmt, VarId};
use std::collections::HashSet;

/// Result of the analysis.
#[derive(Debug, Clone, Default)]
pub struct Relevance {
    relevant_vars: HashSet<VarId>,
    relevant_inputs: HashSet<usize>,
}

impl Relevance {
    /// Whether local variable `v` can influence key identities.
    pub fn var_is_relevant(&self, v: VarId) -> bool {
        self.relevant_vars.contains(&v)
    }

    /// Whether input `i` can influence key identities.
    pub fn input_is_relevant(&self, i: usize) -> bool {
        self.relevant_inputs.contains(&i)
    }

    /// Number of relevant variables (diagnostics).
    pub fn relevant_var_count(&self) -> usize {
        self.relevant_vars.len()
    }

    /// Number of relevant inputs (diagnostics).
    pub fn relevant_input_count(&self) -> usize {
        self.relevant_inputs.len()
    }

    fn mark_expr(&mut self, e: &Expr) -> bool {
        let mut changed = false;
        for v in e.vars() {
            changed |= self.relevant_vars.insert(v);
        }
        for i in e.inputs() {
            changed |= self.relevant_inputs.insert(i);
        }
        changed
    }
}

/// Runs the analysis on `program`.
pub fn analyze(program: &Program) -> Relevance {
    let mut rel = Relevance::default();
    // Seed: key expressions and bounds of access-performing loops.
    seed_block(program.body(), &mut rel);
    // Fixpoint propagation.
    loop {
        if !propagate_block(program.body(), &mut rel) {
            break;
        }
    }
    rel
}

fn seed_block(block: &[Stmt], rel: &mut Relevance) {
    for stmt in block {
        match stmt {
            Stmt::Get(_, key) | Stmt::Put(key, _) => {
                rel.mark_expr(key);
            }
            Stmt::If(_, t, e) => {
                seed_block(t, rel);
                seed_block(e, rel);
            }
            Stmt::For { from, to, body, .. } => {
                if block_accesses_store(body) {
                    rel.mark_expr(from);
                    rel.mark_expr(to);
                }
                seed_block(body, rel);
            }
            _ => {}
        }
    }
}

fn block_accesses_store(block: &[Stmt]) -> bool {
    let mut found = false;
    for s in block {
        s.visit(&mut |st| {
            if matches!(st, Stmt::Get(..) | Stmt::Put(..)) {
                found = true;
            }
        });
    }
    found
}

/// Variables assigned anywhere in a block (including nested).
fn assigned_vars(block: &[Stmt]) -> HashSet<VarId> {
    let mut out = HashSet::new();
    for s in block {
        s.visit(&mut |st| match st {
            Stmt::Assign(v, _) | Stmt::Get(v, _) | Stmt::SetField(v, _, _) => {
                out.insert(*v);
            }
            Stmt::For { var, .. } => {
                out.insert(*var);
            }
            _ => {}
        });
    }
    out
}

/// The flattened "access shape" of a block: ordered `(is_put, key expr)`
/// list, used to decide whether two branch arms touch the same keys.
fn access_shape(block: &[Stmt]) -> Vec<(bool, Expr)> {
    let mut out = Vec::new();
    for s in block {
        s.visit(&mut |st| match st {
            Stmt::Get(_, key) => out.push((false, key.clone())),
            Stmt::Put(key, _) => out.push((true, key.clone())),
            _ => {}
        });
    }
    out
}

fn propagate_block(block: &[Stmt], rel: &mut Relevance) -> bool {
    let mut changed = false;
    for stmt in block {
        match stmt {
            Stmt::Assign(v, e) => {
                if rel.var_is_relevant(*v) {
                    changed |= rel.mark_expr(e);
                }
            }
            Stmt::Get(v, key) => {
                // The key is always relevant (seeded); if the *result*
                // is relevant, this GET is a pivot — its key already is
                // marked, nothing further flows backward.
                if rel.var_is_relevant(*v) {
                    changed |= rel.mark_expr(key);
                }
            }
            Stmt::Put(..) | Stmt::Emit(_) => {}
            Stmt::SetField(v, _, e) => {
                if rel.var_is_relevant(*v) {
                    changed |= rel.mark_expr(e);
                }
            }
            Stmt::If(cond, t, e) => {
                let assigns_relevant = assigned_vars(t)
                    .union(&assigned_vars(e))
                    .any(|v| rel.var_is_relevant(*v));
                let shapes_differ = access_shape(t) != access_shape(e);
                if assigns_relevant || shapes_differ {
                    changed |= rel.mark_expr(cond);
                }
                changed |= propagate_block(t, rel);
                changed |= propagate_block(e, rel);
            }
            Stmt::For { var, from, to, body } => {
                if rel.var_is_relevant(*var)
                    || assigned_vars(body).iter().any(|v| rel.var_is_relevant(*v))
                {
                    changed |= rel.mark_expr(from);
                    changed |= rel.mark_expr(to);
                }
                changed |= propagate_block(body, rel);
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_txir::{Expr, InputBound, ProgramBuilder};

    #[test]
    fn key_inputs_are_relevant() {
        let mut b = ProgramBuilder::new("p");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let amt = b.input("amt", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.put(Expr::key(t, vec![Expr::input(id)]), Expr::input(amt));
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.input_is_relevant(id));
        assert!(!rel.input_is_relevant(amt), "PUT value must not be relevant");
        assert!(!rel.var_is_relevant(v), "read result only flows to nothing");
    }

    #[test]
    fn explicit_flow_chases_assignments() {
        let mut b = ProgramBuilder::new("p");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let x = b.var("x");
        let y = b.var("y");
        b.assign(x, Expr::input(id).add(Expr::lit(1)));
        b.assign(y, Expr::var(x).mul(Expr::lit(2)));
        b.put(Expr::key(t, vec![Expr::var(y)]), Expr::lit(0));
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.var_is_relevant(y));
        assert!(rel.var_is_relevant(x));
        assert!(rel.input_is_relevant(id));
    }

    #[test]
    fn pivot_get_marks_result_dependency() {
        // v = GET(t(id)); PUT(t(v.0), 0) — v is relevant, hence id stays
        // relevant and the GET becomes a pivot read.
        let mut b = ProgramBuilder::new("p");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.put(Expr::key(t, vec![Expr::var(v).field(0)]), Expr::lit(0));
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.var_is_relevant(v));
        assert!(rel.input_is_relevant(id));
    }

    #[test]
    fn same_shape_branches_keep_condition_irrelevant() {
        // The newOrder pattern: both arms PUT the same key, different value.
        let mut b = ProgramBuilder::new("p");
        let t = b.table("stock");
        let id = b.input("id", InputBound::int(0, 9));
        let qty = b.input("qty", InputBound::int(0, 9));
        let item = b.var("item");
        let key = Expr::key(t, vec![Expr::input(id)]);
        b.get(item, key.clone());
        b.if_(
            Expr::var(item).field(0).le(Expr::input(qty)),
            |b| b.put(key.clone(), Expr::lit(1)),
            |b| b.put(key.clone(), Expr::lit(2)),
        );
        let p = b.build();
        let rel = analyze(&p);
        assert!(!rel.input_is_relevant(qty), "branch condition is irrelevant");
        assert!(!rel.var_is_relevant(item));
    }

    #[test]
    fn different_shape_branches_make_condition_relevant() {
        // The delivery pattern: one arm accesses the store, the other not.
        let mut b = ProgramBuilder::new("p");
        let t = b.table("orders");
        let id = b.input("id", InputBound::int(0, 9));
        let c = b.var("c");
        b.get(c, Expr::key(t, vec![Expr::input(id)]));
        b.if_(
            Expr::var(c).ne(Expr::lit(0)),
            |b| b.put(Expr::key(prognosticator_txir::TableId(0), vec![Expr::var(c)]), Expr::lit(0)),
            |_| {},
        );
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.var_is_relevant(c), "condition variable must be relevant");
    }

    #[test]
    fn implicit_flow_through_branch_assignment() {
        // if (flag) { x = 1 } else { x = 2 }; PUT(t(x)) — flag is relevant.
        let mut b = ProgramBuilder::new("p");
        let t = b.table("t");
        let flag = b.input("flag", InputBound::int(0, 1));
        let x = b.var("x");
        b.if_(
            Expr::input(flag).eq(Expr::lit(1)),
            |b| b.assign(x, Expr::lit(1)),
            |b| b.assign(x, Expr::lit(2)),
        );
        b.put(Expr::key(t, vec![Expr::var(x)]), Expr::lit(0));
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.var_is_relevant(x));
        assert!(rel.input_is_relevant(flag), "implicit flow must be tracked");
    }

    #[test]
    fn loop_bounds_relevant_when_body_accesses_store() {
        let mut b = ProgramBuilder::new("p");
        let t = b.table("t");
        let n = b.input("n", InputBound::int(1, 5));
        let i = b.var("i");
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.put(Expr::key(t, vec![Expr::var(i)]), Expr::lit(0));
        });
        let p = b.build();
        let rel = analyze(&p);
        assert!(rel.input_is_relevant(n));
        assert!(rel.var_is_relevant(i));
    }

    #[test]
    fn pure_compute_loop_is_irrelevant() {
        let mut b = ProgramBuilder::new("p");
        let n = b.input("n", InputBound::int(1, 5));
        let i = b.var("i");
        let acc = b.var("acc");
        b.assign(acc, Expr::lit(0));
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.assign(acc, Expr::var(acc).add(Expr::var(i)));
        });
        b.emit(Expr::var(acc));
        let p = b.build();
        let rel = analyze(&p);
        assert!(!rel.input_is_relevant(n));
        assert!(!rel.var_is_relevant(acc));
        assert_eq!(rel.relevant_var_count(), 0);
        assert_eq!(rel.relevant_input_count(), 0);
    }
}
