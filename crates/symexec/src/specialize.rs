//! Profile specializations: runtime-learned overlays on static profiles.
//!
//! The offline profiles of §III-B are sound but often loose: summarized
//! loops predict their full static span, and dependent transactions
//! re-resolve the same indirect keys for every repeat parameter. This
//! module defines the *specialization* overlay the adaptive-prediction
//! subsystem (`prognosticator-adapt`) learns from runtime statistics and
//! replicates through the committed log:
//!
//! * [`ProfileSpecialization::IndirectCache`] — a bounded deterministic
//!   cache of fully-resolved predictions keyed by exact transaction
//!   inputs. A hit is *proved* equivalent to a fresh walk: the cached
//!   pivot observations are re-read against the current snapshot and the
//!   cache is bypassed on any mismatch, so a hit returns byte-for-byte
//!   the prediction `Profile::predict` would have produced (prediction is
//!   a pure function of the inputs and the pivot values).
//! * [`ProfileSpecialization::RangeNarrow`] — clamps the predicted keys
//!   of a summarized range to the span runtime actually touched (plus a
//!   margin). Narrowing is *speculative*: the engine's scope check turns
//!   any under-prediction into a deterministic key-set violation and
//!   re-prepares with the raw profile, so safety never depends on the
//!   learned bound being right.
//! * [`ProfileSpecialization::DemoteToTables`] — demotes a template whose
//!   per-key prediction is expensive and loose to table-granularity
//!   locking: trivially sound (tables ⊇ keys) and cheaper to prepare, at
//!   the price of coarser conflicts.
//!
//! A [`SpecializationSet`] is versioned and totally ordered; replicas only
//! ever install sets delivered as committed log entries, so every replica
//! predicts with a byte-identical overlay at every batch index.

use crate::profile::{PredictError, Profile};
use crate::rws::{PivotResolver, Prediction};
use prognosticator_txir::{TableId, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fingerprint_value(hash: &mut u64, v: &Value) {
    match v {
        Value::Unit => fnv1a(hash, &[0]),
        Value::Bool(b) => fnv1a(hash, &[1, u8::from(*b)]),
        Value::Int(i) => {
            fnv1a(hash, &[2]);
            fnv1a(hash, &i.to_le_bytes());
        }
        Value::Str(s) => {
            fnv1a(hash, &[3]);
            fnv1a(hash, &(s.len() as u64).to_le_bytes());
            fnv1a(hash, s.as_bytes());
        }
        Value::Record(fields) => {
            fnv1a(hash, &[4]);
            fnv1a(hash, &(fields.len() as u64).to_le_bytes());
            for f in fields.iter() {
                fingerprint_value(hash, f);
            }
        }
        Value::List(items) => {
            fnv1a(hash, &[5]);
            fnv1a(hash, &(items.len() as u64).to_le_bytes());
            for f in items.iter() {
                fingerprint_value(hash, f);
            }
        }
    }
}

/// Deterministic 64-bit fingerprint of a transaction's input vector
/// (FNV-1a over a canonical tagged encoding). Used to key the indirect
/// cache and the collector's repeat-parameter statistics. Fingerprints
/// are a fast index, never a proof of equality: cache hits additionally
/// compare the stored inputs exactly.
pub fn fingerprint_inputs(inputs: &[Value]) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, &(inputs.len() as u64).to_le_bytes());
    for v in inputs {
        fingerprint_value(&mut hash, v);
    }
    hash
}

/// One cached fully-resolved prediction for an exact input vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CachedPrediction {
    /// [`fingerprint_inputs`] of `inputs` (fast lookup index).
    pub fingerprint: u64,
    /// The exact inputs the prediction was resolved for.
    pub inputs: Vec<Value>,
    /// The resolved prediction, pivot observations included.
    pub prediction: Prediction,
}

/// One learned specialization of a program's profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProfileSpecialization {
    /// Cache of resolved indirect predictions for repeat parameters.
    /// Entries are sorted by `(fingerprint, inputs)` — the set is a value,
    /// not a mutable structure, so every replica holds identical bytes.
    IndirectCache {
        /// Cached resolutions, sorted by fingerprint.
        entries: Vec<CachedPrediction>,
    },
    /// Clamp predicted keys on `table` whose part `part` is an integer
    /// `>= hi_cap` — the runtime-observed range span plus margin.
    /// Speculative: under-prediction is caught by the engine's scope
    /// check and deterministically re-prepared with the raw profile.
    RangeNarrow {
        /// Table whose range expansion is narrowed.
        table: TableId,
        /// Key-part index holding the range's induction value.
        part: usize,
        /// Exclusive upper cap on that part.
        hi_cap: i64,
    },
    /// Demote the program to table-granularity locking: skip per-key
    /// prediction entirely and lock its declared read/write tables.
    DemoteToTables,
}

/// All specializations active for one program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProgSpecialization {
    /// Specializations in application order (cache lookup first, then
    /// narrowing filters).
    pub specs: Vec<ProfileSpecialization>,
}

impl ProgSpecialization {
    /// Whether the program is demoted to table-granularity locking.
    pub fn demoted(&self) -> bool {
        self.specs.iter().any(|s| matches!(s, ProfileSpecialization::DemoteToTables))
    }

    /// The cache entry matching `inputs` exactly, if any.
    pub fn cached(&self, fingerprint: u64, inputs: &[Value]) -> Option<&CachedPrediction> {
        self.specs.iter().find_map(|s| match s {
            ProfileSpecialization::IndirectCache { entries } => entries
                .iter()
                .find(|e| e.fingerprint == fingerprint && e.inputs == inputs),
            _ => None,
        })
    }

    /// Whether any specialization narrows a range (speculative overlay).
    pub fn narrows(&self) -> bool {
        self.specs.iter().any(|s| matches!(s, ProfileSpecialization::RangeNarrow { .. }))
    }
}

/// A versioned, replicated table of per-program specializations.
///
/// Version 0 is the empty (static-profiles-only) set every engine boots
/// with. Any other version must arrive as a committed log entry; the map
/// is keyed by program name and ordered, so identical sets encode to
/// identical bytes on every replica.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpecializationSet {
    /// Monotone activation version (0 = static profiles only).
    pub version: u64,
    /// Per-program specializations, ordered by program name.
    pub programs: BTreeMap<String, ProgSpecialization>,
}

impl SpecializationSet {
    /// The empty, version-0 set (static profiles only).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Specializations for `program`, if any.
    pub fn for_program(&self, program: &str) -> Option<&ProgSpecialization> {
        self.programs.get(program)
    }

    /// Total number of active specializations across programs.
    pub fn active_count(&self) -> u64 {
        self.programs.values().map(|p| p.specs.len() as u64).sum()
    }
}

/// What applying a specialization overlay did to one prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecOutcome {
    /// The prediction came from the indirect cache (pivot re-check passed).
    pub cache_hit: bool,
    /// Keys dropped by range narrowing. Non-zero marks the prediction
    /// speculative: a scope violation must re-prepare with the raw
    /// profile.
    pub narrowed_dropped: u64,
}

impl SpecOutcome {
    /// Whether the prediction may under-approximate (narrowed overlay).
    pub fn speculative(&self) -> bool {
        self.narrowed_dropped > 0
    }
}

fn narrow_keys(keys: &mut Vec<prognosticator_txir::Key>, table: TableId, part: usize, hi_cap: i64) -> u64 {
    let before = keys.len();
    keys.retain(|k| {
        if k.table != table {
            return true;
        }
        match k.parts.get(part) {
            Some(Value::Int(v)) => *v < hi_cap,
            _ => true,
        }
    });
    (before - keys.len()) as u64
}

/// Applies `spec`'s narrowing filters to an already-computed prediction.
pub fn apply_narrowing(prediction: &mut Prediction, spec: &ProgSpecialization) -> u64 {
    let mut dropped = 0;
    for s in &spec.specs {
        if let ProfileSpecialization::RangeNarrow { table, part, hi_cap } = s {
            dropped += narrow_keys(&mut prediction.reads, *table, *part, *hi_cap);
            dropped += narrow_keys(&mut prediction.writes, *table, *part, *hi_cap);
        }
    }
    dropped
}

/// Predicts with a specialization overlay applied.
///
/// Semantics relative to [`Profile::predict`]:
/// 1. On an exact-input cache hit whose recorded pivot observations all
///    match the current snapshot (via `resolver`), the cached prediction
///    is returned verbatim — provably byte-identical to a fresh walk.
/// 2. Otherwise a fresh walk runs, and range-narrowing filters are
///    applied to its result (reported in [`SpecOutcome::narrowed_dropped`]).
///
/// Demotion is not handled here — a demoted program skips per-key
/// prediction entirely at classification time (engine side).
///
/// # Errors
/// Same as [`Profile::predict`].
pub fn predict_specialized(
    profile: &Profile,
    inputs: &[Value],
    mut resolver: Option<&mut dyn PivotResolver>,
    spec: &ProgSpecialization,
) -> Result<(Prediction, SpecOutcome), PredictError> {
    if let Some(r) = resolver.as_deref_mut() {
        let fp = fingerprint_inputs(inputs);
        if let Some(hit) = spec.cached(fp, inputs) {
            let fresh = hit
                .prediction
                .pivot_observations
                .iter()
                .all(|(k, v)| &r.read(k) == v);
            if fresh {
                return Ok((
                    hit.prediction.clone(),
                    SpecOutcome { cache_hit: true, narrowed_dropped: 0 },
                ));
            }
        }
    }
    let mut prediction = profile.predict(inputs, resolver)?;
    let dropped = apply_narrowing(&mut prediction, spec);
    Ok((prediction, SpecOutcome { cache_hit: false, narrowed_dropped: dropped }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileNode;
    use crate::rws::{RwsEntry, RwsTemplate};
    use crate::sym::{KeyTemplate, LoopVarId, PivotId, SymExpr};
    use prognosticator_txir::Key;

    fn ranged_profile() -> Profile {
        // for ℓ in 0..8 { write t1(ℓ) } with a pivot-read marker key.
        let body = RwsEntry::Single(KeyTemplate::new(
            TableId(1),
            vec![SymExpr::LoopVar(LoopVarId(0))],
        ));
        let root = ProfileNode::Leaf(RwsTemplate {
            reads: vec![RwsEntry::Single(KeyTemplate::new(
                TableId(0),
                vec![SymExpr::Field(Box::new(SymExpr::Pivot(PivotId(0))), 0)],
            ))],
            writes: vec![RwsEntry::Range {
                loop_var: LoopVarId(0),
                from: SymExpr::int(0),
                to: SymExpr::int(8),
                entries: vec![body],
            }],
        });
        Profile::new(
            "ranged".into(),
            root,
            vec![KeyTemplate::new(TableId(0), vec![SymExpr::int(0)])],
        )
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a = vec![Value::Int(1), Value::str("x")];
        assert_eq!(fingerprint_inputs(&a), fingerprint_inputs(&a.clone()));
        assert_ne!(fingerprint_inputs(&a), fingerprint_inputs(&[Value::Int(2)]));
        assert_ne!(
            fingerprint_inputs(&[Value::Int(0)]),
            fingerprint_inputs(&[Value::Bool(false)]),
            "tagged encoding separates types"
        );
    }

    #[test]
    fn cache_hit_requires_matching_pivots() {
        let p = ranged_profile();
        let inputs = vec![Value::Int(5)];
        let mut resolver = |_: &Key| Value::record(vec![Value::Int(2)]);
        let base = p.predict(&inputs, Some(&mut resolver)).unwrap();
        assert_eq!(base.pivot_observations.len(), 1);

        let spec = ProgSpecialization {
            specs: vec![ProfileSpecialization::IndirectCache {
                entries: vec![CachedPrediction {
                    fingerprint: fingerprint_inputs(&inputs),
                    inputs: inputs.clone(),
                    prediction: base.clone(),
                }],
            }],
        };

        // Same pivot value: hit, byte-identical to the fresh walk.
        let mut same = |_: &Key| Value::record(vec![Value::Int(2)]);
        let (pred, out) = predict_specialized(&p, &inputs, Some(&mut same), &spec).unwrap();
        assert!(out.cache_hit);
        assert_eq!(pred, base);

        // Changed pivot value: miss, falls back to a fresh walk.
        let mut moved = |_: &Key| Value::record(vec![Value::Int(3)]);
        let (pred, out) = predict_specialized(&p, &inputs, Some(&mut moved), &spec).unwrap();
        assert!(!out.cache_hit);
        assert_eq!(
            pred.pivot_observations,
            vec![(Key::of_ints(TableId(0), &[0]), Value::record(vec![Value::Int(3)]))]
        );
    }

    #[test]
    fn cache_hit_requires_exact_inputs_not_just_fingerprint() {
        let p = ranged_profile();
        let inputs = vec![Value::Int(5)];
        let mut resolver = |_: &Key| Value::record(vec![Value::Int(2)]);
        let base = p.predict(&inputs, Some(&mut resolver)).unwrap();
        // A forged entry whose fingerprint matches other inputs must not
        // serve them: the exact-inputs comparison guards collisions.
        let spec = ProgSpecialization {
            specs: vec![ProfileSpecialization::IndirectCache {
                entries: vec![CachedPrediction {
                    fingerprint: fingerprint_inputs(&[Value::Int(6)]),
                    inputs: inputs.clone(),
                    prediction: base,
                }],
            }],
        };
        let mut r = |_: &Key| Value::record(vec![Value::Int(2)]);
        let (_, out) = predict_specialized(&p, &[Value::Int(6)], Some(&mut r), &spec).unwrap();
        assert!(!out.cache_hit, "fingerprint alone never serves a hit");
    }

    #[test]
    fn range_narrowing_drops_tail_keys_and_marks_speculative() {
        let p = ranged_profile();
        let spec = ProgSpecialization {
            specs: vec![ProfileSpecialization::RangeNarrow {
                table: TableId(1),
                part: 0,
                hi_cap: 3,
            }],
        };
        let mut r = |_: &Key| Value::record(vec![Value::Int(0)]);
        let (pred, out) = predict_specialized(&p, &[Value::Int(1)], Some(&mut r), &spec).unwrap();
        assert_eq!(out.narrowed_dropped, 5, "8-wide range clamped to [0,3)");
        assert!(out.speculative());
        let expect: Vec<Key> = (0..3).map(|i| Key::of_ints(TableId(1), &[i])).collect();
        assert_eq!(pred.writes, expect);
        // Keys on other tables (the pivot read) are untouched.
        assert_eq!(pred.reads, vec![Key::of_ints(TableId(0), &[0])]);
    }

    #[test]
    fn empty_set_is_version_zero_and_inert() {
        let set = SpecializationSet::empty();
        assert_eq!(set.version, 0);
        assert_eq!(set.active_count(), 0);
        assert!(set.for_program("anything").is_none());
    }

    #[test]
    fn demotion_flag_is_visible() {
        let spec = ProgSpecialization { specs: vec![ProfileSpecialization::DemoteToTables] };
        assert!(spec.demoted());
        assert!(!spec.narrows());
    }
}
