//! Path-constraint satisfiability over bounded inputs.
//!
//! The paper uses an off-the-shelf constraint solver via Symbolic
//! PathFinder. Here, every symbolic variable that can appear in a branch
//! condition is either (a) a **bounded** integer/choice transaction input,
//! (b) the length of a bounded list input, or (c) an unconstrained pivot
//! value. This makes a small decision procedure exact for (a)/(b):
//!
//! 1. fold away constant conjuncts,
//! 2. check for syntactic complement pairs (`c` and `¬c`), then
//! 3. decide the input-only fragment by interval propagation and, when the
//!    domain product is small, exact enumeration.
//!
//! Conjuncts mentioning pivots (or list elements) are treated as
//! satisfiable unless step 2 refutes them. The procedure is therefore
//! *sound for pruning*: it never reports `Unsat` for a satisfiable path, so
//! no feasible execution path is ever dropped — the same requirement JPF
//! places on its solver backends.

use crate::sym::SymExpr;
use prognosticator_txir::{BinOp, InputBound, UnOp, Value};
use std::collections::{HashMap, HashSet};

/// Default cap on the enumerated assignment count.
pub const DEFAULT_ENUM_LIMIT: u128 = 200_000;

/// Variables the enumerator assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum EnumVar {
    /// The value of integer/choice input `i`.
    Val(usize),
    /// The length of list input `i`.
    Len(usize),
}

/// Satisfiability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sat {
    /// A satisfying assignment exists (or could not be ruled out).
    Sat,
    /// Definitely unsatisfiable.
    Unsat,
}

/// Decides path-constraint satisfiability given the program's input bounds.
#[derive(Debug, Clone)]
pub struct Solver {
    bounds: Vec<InputBound>,
    enum_limit: u128,
}

impl Solver {
    /// Creates a solver for a program with the given input bounds.
    pub fn new(bounds: Vec<InputBound>) -> Self {
        Solver { bounds, enum_limit: DEFAULT_ENUM_LIMIT }
    }

    /// Overrides the enumeration limit.
    pub fn with_enum_limit(mut self, limit: u128) -> Self {
        self.enum_limit = limit.max(1);
        self
    }

    /// Whether the conjunction of `constraints` is satisfiable.
    ///
    /// `Sat` may be over-approximate (never prunes a feasible path);
    /// `Unsat` is always exact.
    pub fn check(&self, constraints: &[SymExpr]) -> Sat {
        let mut enumerable: Vec<&SymExpr> = Vec::new();
        let mut seen: HashSet<&SymExpr> = HashSet::new();
        for c in constraints {
            match c {
                SymExpr::Const(Value::Bool(true)) => continue,
                SymExpr::Const(Value::Bool(false)) => return Sat::Unsat,
                _ => {}
            }
            // Syntactic complement check: `c` together with `¬c` (as the
            // smart constructor would have normalized it) is contradictory
            // regardless of pivots.
            let neg = SymExpr::un(UnOp::Not, c.clone());
            if constraints.contains(&neg) {
                return Sat::Unsat;
            }
            if self.is_enumerable(c) && seen.insert(c) {
                enumerable.push(c);
            }
        }
        if enumerable.is_empty() {
            return Sat::Sat;
        }
        // Interval propagation first: cheap, and handles large domains.
        if self.intervals_refute(&enumerable) {
            return Sat::Unsat;
        }
        // Split the conjunction into connected components (conjuncts
        // sharing variables): a conjunction is satisfiable iff every
        // component is, and per-component enumeration is exponentially
        // cheaper than the full cross-product.
        for component in split_components(&enumerable) {
            match self.enumerate(&component) {
                Some(Sat::Unsat) => return Sat::Unsat,
                Some(Sat::Sat) => {}
                None => {} // component too large to enumerate: assume SAT
            }
        }
        Sat::Sat
    }

    /// Whether every variable in `e` is an enumerable bounded input.
    fn is_enumerable(&self, e: &SymExpr) -> bool {
        let mut ok = true;
        e.visit(&mut |sub| match sub {
            SymExpr::Input(i) => {
                ok &= matches!(
                    self.bounds.get(*i),
                    Some(InputBound::Int { .. }) | Some(InputBound::Choice(_))
                );
            }
            SymExpr::InputLen(i) => {
                ok &= matches!(self.bounds.get(*i), Some(InputBound::IntList { .. }));
            }
            SymExpr::InputIndex(..)
            | SymExpr::Pivot(_)
            | SymExpr::LoopVar(_)
            | SymExpr::SetField(..) => ok = false,
            _ => {}
        });
        ok
    }

    fn var_domain_size(&self, v: EnumVar) -> u128 {
        match v {
            EnumVar::Val(i) => match &self.bounds[i] {
                InputBound::Int { lo, hi } => (*hi as i128 - *lo as i128 + 1) as u128,
                InputBound::Choice(vs) => vs.len() as u128,
                _ => u128::MAX,
            },
            EnumVar::Len(i) => match &self.bounds[i] {
                InputBound::IntList { len_lo, len_hi, .. } => (len_hi - len_lo + 1) as u128,
                _ => u128::MAX,
            },
        }
    }

    fn var_domain(&self, v: EnumVar) -> Vec<Value> {
        match v {
            EnumVar::Val(i) => match &self.bounds[i] {
                InputBound::Int { lo, hi } => (*lo..=*hi).map(Value::Int).collect(),
                InputBound::Choice(vs) => vs.clone(),
                _ => unreachable!("is_enumerable checked the bound kind"),
            },
            EnumVar::Len(i) => match &self.bounds[i] {
                InputBound::IntList { len_lo, len_hi, .. } => {
                    (*len_lo..=*len_hi).map(|l| Value::Int(l as i64)).collect()
                }
                _ => unreachable!("is_enumerable checked the bound kind"),
            },
        }
    }

    fn collect_vars(&self, conjuncts: &[&SymExpr]) -> Vec<EnumVar> {
        let mut vars = Vec::new();
        for c in conjuncts {
            c.visit(&mut |sub| {
                let v = match sub {
                    SymExpr::Input(i) => EnumVar::Val(*i),
                    SymExpr::InputLen(i) => EnumVar::Len(*i),
                    _ => return,
                };
                if !vars.contains(&v) {
                    vars.push(v);
                }
            });
        }
        vars.sort();
        vars
    }

    /// Interval propagation: for conjuncts of the form `a·x + b ⋈ c` (a
    /// single variable against a constant), intersect per-variable
    /// intervals; an empty interval refutes the conjunction.
    fn intervals_refute(&self, conjuncts: &[&SymExpr]) -> bool {
        let mut intervals: HashMap<EnumVar, (i64, i64)> = HashMap::new();
        let bound_of = |v: EnumVar| -> (i64, i64) {
            match v {
                EnumVar::Val(i) => match &self.bounds[i] {
                    InputBound::Int { lo, hi } => (*lo, *hi),
                    InputBound::Choice(vs) => {
                        let ints: Vec<i64> = vs.iter().filter_map(Value::as_int).collect();
                        if ints.len() == vs.len() && !ints.is_empty() {
                            (*ints.iter().min().expect("nonempty"), *ints.iter().max().expect("nonempty"))
                        } else {
                            (i64::MIN, i64::MAX)
                        }
                    }
                    _ => (i64::MIN, i64::MAX),
                },
                EnumVar::Len(i) => match &self.bounds[i] {
                    InputBound::IntList { len_lo, len_hi, .. } => (*len_lo as i64, *len_hi as i64),
                    _ => (i64::MIN, i64::MAX),
                },
            }
        };
        for c in conjuncts {
            let Some((var, a, b, op, rhs)) = linear_vs_const(c) else { continue };
            if a == 0 {
                continue;
            }
            // a*x + b op rhs  →  x op' bound, for a = ±1 only (exactness).
            if a.abs() != 1 {
                continue;
            }
            let target = match rhs.checked_sub(b) {
                Some(t) => t,
                None => continue,
            };
            // For a = -1:  -x op target  →  x flip(op) -target.
            let (op, target) = if a == 1 {
                (op, target)
            } else {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => other,
                };
                match target.checked_neg() {
                    Some(t) => (flipped, t),
                    None => continue,
                }
            };
            let entry = intervals.entry(var).or_insert_with(|| bound_of(var));
            match op {
                BinOp::Lt => entry.1 = entry.1.min(target.saturating_sub(1)),
                BinOp::Le => entry.1 = entry.1.min(target),
                BinOp::Gt => entry.0 = entry.0.max(target.saturating_add(1)),
                BinOp::Ge => entry.0 = entry.0.max(target),
                BinOp::Eq => {
                    entry.0 = entry.0.max(target);
                    entry.1 = entry.1.min(target);
                }
                // `Ne` only refutes with a point domain; handled below.
                BinOp::Ne if entry.0 == entry.1 && entry.0 == target => return true,
                _ => {}
            }
            if entry.0 > entry.1 {
                return true;
            }
        }
        false
    }

    /// Exact enumeration of the bounded variables. Returns `None` if the
    /// domain product exceeds the limit.
    fn enumerate(&self, conjuncts: &[&SymExpr]) -> Option<Sat> {
        let vars = self.collect_vars(conjuncts);
        // Check the domain product *before* materializing any domain, so
        // huge input ranges never allocate.
        let mut product: u128 = 1;
        for &v in &vars {
            product = product.checked_mul(self.var_domain_size(v))?;
            if product > self.enum_limit {
                return None;
            }
        }
        let domains: Vec<Vec<Value>> = vars.iter().map(|&v| self.var_domain(v)).collect();
        let mut idx = vec![0usize; vars.len()];
        loop {
            let assignment: HashMap<EnumVar, &Value> =
                vars.iter().zip(&domains).zip(&idx).map(|((v, d), i)| (*v, &d[*i])).collect();
            // `None` (a type surprise) counts as satisfied: the solver must
            // never refute what it cannot evaluate.
            if conjuncts.iter().all(|c| eval_with(c, &assignment).unwrap_or(true)) {
                return Some(Sat::Sat);
            }
            // odometer increment
            let mut carry = true;
            for (i, d) in idx.iter_mut().zip(&domains) {
                if carry {
                    *i += 1;
                    if *i == d.len() {
                        *i = 0;
                    } else {
                        carry = false;
                    }
                }
            }
            if carry {
                return Some(Sat::Unsat);
            }
        }
    }
}

/// Partitions conjuncts into connected components by shared variables
/// (union-find over conjunct indices).
fn split_components<'e>(conjuncts: &[&'e SymExpr]) -> Vec<Vec<&'e SymExpr>> {
    let vars_of = |e: &SymExpr| -> Vec<EnumVar> {
        let mut out = Vec::new();
        e.visit(&mut |sub| {
            let v = match sub {
                SymExpr::Input(i) => EnumVar::Val(*i),
                SymExpr::InputLen(i) => EnumVar::Len(*i),
                _ => return,
            };
            if !out.contains(&v) {
                out.push(v);
            }
        });
        out
    };
    let var_sets: Vec<Vec<EnumVar>> = conjuncts.iter().map(|e| vars_of(e)).collect();
    let mut parent: Vec<usize> = (0..conjuncts.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<EnumVar, usize> = HashMap::new();
    for (i, vs) in var_sets.iter().enumerate() {
        for v in vs {
            match owner.get(v) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    parent[ri] = rj;
                }
                None => {
                    owner.insert(*v, i);
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<&SymExpr>> = HashMap::new();
    for (i, e) in conjuncts.iter().enumerate() {
        groups.entry(find(&mut parent, i)).or_default().push(e);
    }
    groups.into_values().collect()
}

/// Recognizes `lin ⋈ const` or `const ⋈ lin` where `lin = a·x + b` over a
/// single enumerable variable; returns `(x, a, b, op-normalized-to-lin-on-
/// the-left, rhs)`.
fn linear_vs_const(e: &SymExpr) -> Option<(EnumVar, i64, i64, BinOp, i64)> {
    let SymExpr::Bin(op, l, r) = e else { return None };
    if !op.is_predicate() || matches!(op, BinOp::And | BinOp::Or) {
        return None;
    }
    match (linear_form(l), linear_form(r)) {
        (Some((Some(x), a, b)), Some((None, _, c))) => Some((x, a, b, *op, c)),
        (Some((None, _, c)), Some((Some(x), a, b))) => {
            // const op lin  →  lin flip(op) const
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            Some((x, a, b, flipped, c))
        }
        _ => None,
    }
}

/// Returns `(var, a, b)` meaning `a·var + b` (var `None` for constants).
fn linear_form(e: &SymExpr) -> Option<(Option<EnumVar>, i64, i64)> {
    match e {
        SymExpr::Const(Value::Int(c)) => Some((None, 0, *c)),
        SymExpr::Input(i) => Some((Some(EnumVar::Val(*i)), 1, 0)),
        SymExpr::InputLen(i) => Some((Some(EnumVar::Len(*i)), 1, 0)),
        SymExpr::Un(UnOp::Neg, inner) => {
            let (v, a, b) = linear_form(inner)?;
            Some((v, a.checked_neg()?, b.checked_neg()?))
        }
        SymExpr::Bin(op @ (BinOp::Add | BinOp::Sub), l, r) => {
            let (vl, al, bl) = linear_form(l)?;
            let (vr, ar, br) = linear_form(r)?;
            let (ar, br) = if *op == BinOp::Sub { (ar.checked_neg()?, br.checked_neg()?) } else { (ar, br) };
            let v = match (vl, vr) {
                (Some(x), Some(y)) if x == y => Some(x),
                (Some(x), None) => Some(x),
                (None, Some(y)) => Some(y),
                (None, None) => None,
                _ => return None, // two distinct variables: not single-var linear
            };
            Some((v, al.checked_add(ar)?, bl.checked_add(br)?))
        }
        SymExpr::Bin(BinOp::Mul, l, r) => {
            let (vl, al, bl) = linear_form(l)?;
            let (vr, ar, br) = linear_form(r)?;
            match (vl, vr) {
                (Some(x), None) => Some((Some(x), al.checked_mul(br)?, bl.checked_mul(br)?)),
                (None, Some(y)) => Some((Some(y), ar.checked_mul(bl)?, br.checked_mul(bl)?)),
                (None, None) => Some((None, 0, bl.checked_mul(br)?)),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Evaluates a predicate under a variable assignment; `None` on any type
/// surprise (treated by the caller as "cannot refute").
fn eval_with(e: &SymExpr, assignment: &HashMap<EnumVar, &Value>) -> Option<bool> {
    match eval_value(e, assignment)? {
        Value::Bool(b) => Some(b),
        _ => None,
    }
}

fn eval_value(e: &SymExpr, assignment: &HashMap<EnumVar, &Value>) -> Option<Value> {
    use prognosticator_txir::interp::apply_bin;
    match e {
        SymExpr::Const(v) => Some(v.clone()),
        SymExpr::Input(i) => assignment.get(&EnumVar::Val(*i)).map(|v| (*v).clone()),
        SymExpr::InputLen(i) => assignment.get(&EnumVar::Len(*i)).map(|v| (*v).clone()),
        SymExpr::Bin(op, a, b) => {
            apply_bin(*op, eval_value(a, assignment)?, eval_value(b, assignment)?).ok()
        }
        SymExpr::Un(op, inner) => match (op, eval_value(inner, assignment)?) {
            (UnOp::Not, Value::Bool(b)) => Some(Value::Bool(!b)),
            (UnOp::Neg, Value::Int(i)) => i.checked_neg().map(Value::Int),
            _ => None,
        },
        SymExpr::Field(inner, idx) => match eval_value(inner, assignment)? {
            Value::Record(r) => r.get(*idx).cloned(),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_input(lo: i64, hi: i64) -> InputBound {
        InputBound::int(lo, hi)
    }

    fn x() -> SymExpr {
        SymExpr::Input(0)
    }

    #[test]
    fn trivial_cases() {
        let s = Solver::new(vec![int_input(0, 10)]);
        assert_eq!(s.check(&[]), Sat::Sat);
        assert_eq!(s.check(&[SymExpr::bool(true)]), Sat::Sat);
        assert_eq!(s.check(&[SymExpr::bool(false)]), Sat::Unsat);
    }

    #[test]
    fn bounds_refute() {
        let s = Solver::new(vec![int_input(5, 15)]);
        // x > 15 is impossible
        let c = SymExpr::bin(BinOp::Gt, x(), SymExpr::int(15));
        assert_eq!(s.check(&[c]), Sat::Unsat);
        // x >= 15 is possible
        let c = SymExpr::bin(BinOp::Ge, x(), SymExpr::int(15));
        assert_eq!(s.check(&[c]), Sat::Sat);
    }

    #[test]
    fn conjunction_narrowing() {
        let s = Solver::new(vec![int_input(0, 100)]);
        let a = SymExpr::bin(BinOp::Gt, x(), SymExpr::int(50));
        let b = SymExpr::bin(BinOp::Lt, x(), SymExpr::int(50));
        assert_eq!(s.check(std::slice::from_ref(&a)), Sat::Sat);
        assert_eq!(s.check(&[a.clone(), b.clone()]), Sat::Unsat);
        let c = SymExpr::bin(BinOp::Eq, x(), SymExpr::int(50));
        assert_eq!(s.check(std::slice::from_ref(&c)), Sat::Sat);
        assert_eq!(s.check(&[c, a]), Sat::Unsat);
    }

    #[test]
    fn complement_pair_refutes_even_with_pivots() {
        let s = Solver::new(vec![int_input(0, 10)]);
        let p = SymExpr::bin(
            BinOp::Gt,
            SymExpr::Field(Box::new(SymExpr::Pivot(crate::sym::PivotId(0))), 0),
            SymExpr::int(3),
        );
        let np = SymExpr::un(UnOp::Not, p.clone());
        assert_eq!(s.check(std::slice::from_ref(&p)), Sat::Sat);
        assert_eq!(s.check(&[p, np]), Sat::Unsat);
    }

    #[test]
    fn pivot_conjuncts_assumed_sat() {
        let s = Solver::new(vec![int_input(0, 10)]);
        let p = SymExpr::bin(BinOp::Eq, SymExpr::Pivot(crate::sym::PivotId(0)), SymExpr::int(1));
        let q = SymExpr::bin(BinOp::Eq, SymExpr::Pivot(crate::sym::PivotId(0)), SymExpr::int(2));
        // Actually unsat, but pivots are free: the solver must stay sound
        // (Sat) rather than risk pruning feasible paths.
        assert_eq!(s.check(&[p, q]), Sat::Sat);
    }

    #[test]
    fn two_variable_enumeration() {
        let s = Solver::new(vec![int_input(0, 9), int_input(0, 9)]);
        let y = SymExpr::Input(1);
        // x + y == 18 is satisfiable only by (9, 9)
        let c = SymExpr::bin(BinOp::Eq, SymExpr::bin(BinOp::Add, x(), y.clone()), SymExpr::int(18));
        assert_eq!(s.check(std::slice::from_ref(&c)), Sat::Sat);
        // adding x < 9 refutes
        let d = SymExpr::bin(BinOp::Lt, x(), SymExpr::int(9));
        assert_eq!(s.check(&[c, d]), Sat::Unsat);
    }

    #[test]
    fn list_length_constraints() {
        let s = Solver::new(vec![InputBound::int_list(5, 15, 0, 100)]);
        let len = SymExpr::InputLen(0);
        let c = SymExpr::bin(BinOp::Gt, len.clone(), SymExpr::int(15));
        assert_eq!(s.check(&[c]), Sat::Unsat);
        let c = SymExpr::bin(BinOp::Ge, len, SymExpr::int(6));
        assert_eq!(s.check(&[c]), Sat::Sat);
    }

    #[test]
    fn choice_inputs_enumerate() {
        let s = Solver::new(vec![InputBound::Choice(vec![Value::Int(2), Value::Int(4)])]);
        let c = SymExpr::bin(BinOp::Eq, x(), SymExpr::int(3));
        assert_eq!(s.check(&[c]), Sat::Unsat);
        let c = SymExpr::bin(BinOp::Eq, x(), SymExpr::int(4));
        assert_eq!(s.check(&[c]), Sat::Sat);
    }

    #[test]
    fn huge_domains_fall_back_to_intervals() {
        let s = Solver::new(vec![int_input(0, 1_000_000_000), int_input(0, 1_000_000_000)]);
        let y = SymExpr::Input(1);
        // Interval reasoning still refutes single-variable contradictions.
        let a = SymExpr::bin(BinOp::Gt, x(), SymExpr::int(2_000_000_000));
        assert_eq!(s.check(&[a]), Sat::Unsat);
        // Cross-variable constraints on huge domains are assumed SAT.
        let c = SymExpr::bin(
            BinOp::Eq,
            SymExpr::bin(BinOp::Add, x(), y),
            SymExpr::int(2_000_000_001),
        );
        assert_eq!(s.check(&[c]), Sat::Sat);
    }

    #[test]
    fn negative_coefficient_interval() {
        let s = Solver::new(vec![int_input(0, 10)]);
        // -x > 0 → x < 0, impossible for x ∈ [0, 10]
        let c = SymExpr::Bin(
            BinOp::Gt,
            Box::new(SymExpr::Un(UnOp::Neg, Box::new(x()))),
            Box::new(SymExpr::int(0)),
        );
        assert_eq!(s.check(&[c]), Sat::Unsat);
    }

    #[test]
    fn const_on_left_normalizes() {
        let s = Solver::new(vec![int_input(0, 10)]);
        // 11 < x  → unsat
        let c = SymExpr::Bin(BinOp::Lt, Box::new(SymExpr::int(11)), Box::new(x()));
        assert_eq!(s.check(&[c]), Sat::Unsat);
        // 5 < x → sat
        let c = SymExpr::Bin(BinOp::Lt, Box::new(SymExpr::int(5)), Box::new(x()));
        assert_eq!(s.check(&[c]), Sat::Sat);
    }

    #[test]
    fn linear_with_offset() {
        let s = Solver::new(vec![int_input(5, 15)]);
        // x - 1 >= 15  → x >= 16 → unsat
        let c = SymExpr::Bin(
            BinOp::Ge,
            Box::new(SymExpr::Bin(BinOp::Sub, Box::new(x()), Box::new(SymExpr::int(1)))),
            Box::new(SymExpr::int(15)),
        );
        assert_eq!(s.check(&[c]), Sat::Unsat);
    }
}
