//! Edge-case coverage of the symbolic explorer: enum-like (Choice)
//! inputs, nested loops, empty programs, string keys, and metric
//! consistency invariants.

use prognosticator_symexec::{
    analyze, profile_program, ExploreError, ExplorerConfig, TxClass,
};
use prognosticator_txir::{
    Expr, InputBound, Key, ProgramBuilder, TableId, Value,
};

#[test]
fn empty_program_is_trivially_read_only() {
    let b = ProgramBuilder::new("empty");
    let a = profile_program(&b.build()).expect("analyzes");
    assert_eq!(a.profile.class(), TxClass::ReadOnly);
    assert_eq!(a.profile.partition_count(), 1);
    assert_eq!(a.stats.states_explored, 1);
}

#[test]
fn choice_input_branches_enumerate() {
    // An enum-like string input drives which table is written — the
    // solver must enumerate the choice domain to prune impossible arms.
    let mut b = ProgramBuilder::new("choice");
    let gold = b.table("gold");
    let silver = b.table("silver");
    let tier = b.input(
        "tier",
        InputBound::Choice(vec![Value::str("gold"), Value::str("silver")]),
    );
    let id = b.input("id", InputBound::int(0, 9));
    b.if_(
        Expr::input(tier).eq(Expr::lit_str("gold")),
        |b| b.put(Expr::key(gold, vec![Expr::input(id)]), Expr::lit(1)),
        |b| b.put(Expr::key(silver, vec![Expr::input(id)]), Expr::lit(1)),
    );
    let p = b.build();
    let a = profile_program(&p).expect("analyzes");
    assert_eq!(a.profile.class(), TxClass::Independent);
    assert_eq!(a.profile.partition_count(), 2);

    let pred = a
        .profile
        .predict_direct(&[Value::str("gold"), Value::Int(3)])
        .expect("predicts");
    assert_eq!(pred.writes, vec![Key::new(TableId(0), vec![Value::Int(3)])]);
    let pred = a
        .profile
        .predict_direct(&[Value::str("silver"), Value::Int(3)])
        .expect("predicts");
    assert_eq!(pred.writes, vec![Key::new(TableId(1), vec![Value::Int(3)])]);
}

#[test]
fn impossible_choice_branch_is_pruned() {
    let mut b = ProgramBuilder::new("pruned");
    let t = b.table("t");
    let tier = b.input("tier", InputBound::Choice(vec![Value::str("only")]));
    b.if_(
        Expr::input(tier).eq(Expr::lit_str("other")), // never true
        |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(1)),
        |b| b.put(Expr::key(t, vec![Expr::lit(2)]), Expr::lit(1)),
    );
    let a = profile_program(&b.build()).expect("analyzes");
    assert_eq!(a.profile.partition_count(), 1, "infeasible arm pruned");
    assert!(a.stats.pruned_infeasible >= 1);
}

#[test]
fn nested_concrete_loops_unroll_fully() {
    let mut b = ProgramBuilder::new("nested");
    let t = b.table("t");
    let i = b.var("i");
    let j = b.var("j");
    b.for_(i, Expr::lit(0), Expr::lit(3), |b| {
        b.for_(j, Expr::lit(0), Expr::lit(2), |b| {
            b.put(
                Expr::key(t, vec![Expr::var(i).mul(Expr::lit(10)).add(Expr::var(j))]),
                Expr::lit(0),
            );
        });
    });
    let a = profile_program(&b.build()).expect("analyzes");
    let pred = a.profile.predict_direct(&[]).expect("predicts");
    assert_eq!(pred.writes.len(), 6);
    assert!(pred.writes.contains(&Key::of_ints(TableId(0), &[21])));
}

#[test]
fn symbolic_outer_concrete_inner_loop_summarizes() {
    // for i in 0..n { for j in 0..2 { PUT t[i*10 + j] } } — the outer
    // summarization must carry the inner loop as nested Range entries.
    let mut b = ProgramBuilder::new("nested_sym");
    let t = b.table("t");
    let n = b.input("n", InputBound::int(1, 4));
    let i = b.var("i");
    let j = b.var("j");
    b.for_(i, Expr::lit(0), Expr::input(n), |b| {
        b.for_(j, Expr::lit(0), Expr::lit(2), |b| {
            b.put(
                Expr::key(t, vec![Expr::var(i).mul(Expr::lit(10)).add(Expr::var(j))]),
                Expr::lit(0),
            );
        });
    });
    let a = profile_program(&b.build()).expect("analyzes");
    assert_eq!(a.profile.partition_count(), 1, "uniform loop nest stays one partition");
    let pred = a.profile.predict_direct(&[Value::Int(3)]).expect("predicts");
    assert_eq!(pred.writes.len(), 6);
    assert!(pred.writes.contains(&Key::of_ints(TableId(0), &[21])));
    assert!(!pred.writes.contains(&Key::of_ints(TableId(0), &[31])));
}

#[test]
fn string_key_parts_round_trip() {
    let mut b = ProgramBuilder::new("strkey");
    let t = b.table("t");
    let name = b.input("name", InputBound::Str);
    let v = b.var("v");
    b.get(v, Expr::key(t, vec![Expr::input(name)]));
    b.put(
        Expr::key(t, vec![Expr::input(name).add(Expr::lit_str("!"))]),
        Expr::var(v),
    );
    let a = profile_program(&b.build()).expect("analyzes");
    assert_eq!(a.profile.class(), TxClass::Independent);
    let pred = a.profile.predict_direct(&[Value::str("bob")]).expect("predicts");
    assert_eq!(pred.reads, vec![Key::new(TableId(0), vec![Value::str("bob")])]);
    assert_eq!(pred.writes, vec![Key::new(TableId(0), vec![Value::str("bob!")])]);
}

#[test]
fn metrics_are_internally_consistent() {
    // Across a handful of structurally different programs, the profile
    // metrics must satisfy their basic relations.
    let programs = {
        let mut out = Vec::new();
        // branchy
        let mut b = ProgramBuilder::new("p1");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 3));
        b.if_(
            Expr::input(x).lt(Expr::lit(2)),
            |b| b.put(Expr::key(t, vec![Expr::lit(0)]), Expr::lit(0)),
            |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(0)),
        );
        out.push(b.build());
        // dependent
        let mut b = ProgramBuilder::new("p2");
        let t = b.table("t");
        let x = b.input("x", InputBound::int(0, 3));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(x)]));
        b.put(Expr::key(t, vec![Expr::var(v)]), Expr::lit(0));
        out.push(b.build());
        out
    };
    for p in &programs {
        let a = analyze(p, &ExplorerConfig::optimized()).expect("analyzes");
        let profile = &a.profile;
        assert!(profile.unique_key_sets() <= profile.partition_count());
        assert!(u64::from(profile.depth()) < profile.partition_count() * 2 + 1);
        assert!(profile.approx_size() > 0);
        assert_eq!(
            profile.indirect_keys(),
            profile.pivot_specs().len() as u64
        );
        assert!(a.stats.paths >= profile.partition_count());
    }
}

#[test]
fn zero_iteration_loops_predict_empty_ranges() {
    let mut b = ProgramBuilder::new("maybe_empty");
    let t = b.table("t");
    let n = b.input("n", InputBound::int(0, 3));
    let i = b.var("i");
    b.for_(i, Expr::lit(0), Expr::input(n), |b| {
        b.put(Expr::key(t, vec![Expr::var(i)]), Expr::lit(0));
    });
    let a = profile_program(&b.build()).expect("analyzes");
    let pred = a.profile.predict_direct(&[Value::Int(0)]).expect("predicts");
    assert!(pred.writes.is_empty(), "n = 0 ⇒ no writes");
    let pred = a.profile.predict_direct(&[Value::Int(3)]).expect("predicts");
    assert_eq!(pred.writes.len(), 3);
}

#[test]
fn unsupported_constructs_error_cleanly() {
    // A symbolic loop *start* is not supported — must error, not panic.
    let mut b = ProgramBuilder::new("bad");
    let t = b.table("t");
    let n = b.input("n", InputBound::int(0, 3));
    let i = b.var("i");
    b.for_(i, Expr::input(n), Expr::lit(5), |b| {
        b.put(Expr::key(t, vec![Expr::var(i)]), Expr::lit(0));
    });
    let err = profile_program(&b.build()).unwrap_err();
    assert!(matches!(err, ExploreError::Unsupported(_)), "got {err:?}");
}
