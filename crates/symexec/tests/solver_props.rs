//! Property tests for the path-constraint solver: compared against a
//! brute-force ground truth over the full input domain, `Unsat` must be
//! exact and `Sat` must never be wrong when the solver *could* decide.

use prognosticator_symexec::{Sat, Solver, SymExpr};
use prognosticator_txir::{BinOp, InputBound, UnOp, Value};
use proptest::prelude::*;

const LO: i64 = 0;
const HI: i64 = 7;

#[derive(Debug, Clone)]
struct Cmp {
    var: usize,
    coeff: i64,
    offset: i64,
    op: u8,
    rhs: i64,
    negate: bool,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    (0..2usize, 1..3i64, -2..3i64, 0..6u8, -3..12i64, any::<bool>()).prop_map(
        |(var, coeff, offset, op, rhs, negate)| Cmp { var, coeff, offset, op, rhs, negate },
    )
}

fn op_of(code: u8) -> BinOp {
    match code {
        0 => BinOp::Eq,
        1 => BinOp::Ne,
        2 => BinOp::Lt,
        3 => BinOp::Le,
        4 => BinOp::Gt,
        _ => BinOp::Ge,
    }
}

fn to_sym(c: &Cmp) -> SymExpr {
    let lhs = SymExpr::bin(
        BinOp::Add,
        SymExpr::bin(
            BinOp::Mul,
            SymExpr::Const(Value::Int(c.coeff)),
            SymExpr::Input(c.var),
        ),
        SymExpr::Const(Value::Int(c.offset)),
    );
    let base = SymExpr::bin(op_of(c.op), lhs, SymExpr::Const(Value::Int(c.rhs)));
    if c.negate {
        SymExpr::un(UnOp::Not, base)
    } else {
        base
    }
}

fn holds(c: &Cmp, x0: i64, x1: i64) -> bool {
    let v = if c.var == 0 { x0 } else { x1 };
    let lhs = c.coeff * v + c.offset;
    let r = match op_of(c.op) {
        BinOp::Eq => lhs == c.rhs,
        BinOp::Ne => lhs != c.rhs,
        BinOp::Lt => lhs < c.rhs,
        BinOp::Le => lhs <= c.rhs,
        BinOp::Gt => lhs > c.rhs,
        BinOp::Ge => lhs >= c.rhs,
        _ => unreachable!(),
    };
    r != c.negate
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The solver agrees with brute force on fully enumerable conjunctions
    /// (its domain product here is 64 ≤ the enumeration limit, so it must
    /// be exact in both directions).
    #[test]
    fn solver_is_exact_on_enumerable_conjunctions(
        cmps in prop::collection::vec(cmp_strategy(), 1..6)
    ) {
        let solver = Solver::new(vec![InputBound::int(LO, HI), InputBound::int(LO, HI)]);
        let constraints: Vec<SymExpr> = cmps.iter().map(to_sym).collect();
        // Some constraints constant-fold; the solver must still agree.
        let truth = (LO..=HI).any(|x0| {
            (LO..=HI).any(|x1| cmps.iter().all(|c| holds(c, x0, x1)))
        });
        let verdict = solver.check(&constraints);
        prop_assert_eq!(
            verdict == Sat::Sat,
            truth,
            "constraints: {:?}",
            constraints.iter().map(|c| c.to_string()).collect::<Vec<_>>()
        );
    }

    /// Adding a constraint can only shrink the satisfiable set
    /// (monotonicity): if the extended conjunction is SAT, the prefix is.
    #[test]
    fn conjunction_is_monotone(
        cmps in prop::collection::vec(cmp_strategy(), 2..6)
    ) {
        let solver = Solver::new(vec![InputBound::int(LO, HI), InputBound::int(LO, HI)]);
        let all: Vec<SymExpr> = cmps.iter().map(to_sym).collect();
        let prefix = &all[..all.len() - 1];
        if solver.check(&all) == Sat::Sat {
            prop_assert_eq!(solver.check(prefix), Sat::Sat);
        }
    }

    /// Pivot-containing conjuncts must never cause an over-eager Unsat:
    /// mixing an arbitrary pivot predicate into a satisfiable input
    /// conjunction keeps it satisfiable (soundness for pruning).
    #[test]
    fn pivots_never_refute_satisfiable_inputs(
        cmps in prop::collection::vec(cmp_strategy(), 1..4),
        pivot_rhs in -5..5i64,
    ) {
        let solver = Solver::new(vec![InputBound::int(LO, HI), InputBound::int(LO, HI)]);
        let mut constraints: Vec<SymExpr> = cmps.iter().map(to_sym).collect();
        if solver.check(&constraints) == Sat::Unsat {
            return Ok(());
        }
        constraints.push(SymExpr::bin(
            BinOp::Gt,
            SymExpr::Pivot(prognosticator_symexec::PivotId(0)),
            SymExpr::Const(Value::Int(pivot_rhs)),
        ));
        prop_assert_eq!(solver.check(&constraints), Sat::Sat);
    }
}
