//! Errors produced when evaluating IR programs.

use crate::value::Value;
use std::error::Error;
use std::fmt;

/// An error raised during concrete (or symbolic) evaluation of a program.
///
/// With well-formed workload programs these indicate a bug in the program or
/// a population mismatch, not a user-facing condition — but the interpreter
/// never panics on malformed programs.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// An operator was applied to operands of the wrong type.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// The offending value.
        got: Value,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Record field index out of range.
    FieldOutOfRange {
        /// Requested field index.
        index: usize,
        /// Number of fields in the record.
        len: usize,
    },
    /// List index out of range.
    IndexOutOfRange {
        /// Requested element index.
        index: i64,
        /// Length of the list.
        len: usize,
    },
    /// Input index out of range (arity mismatch).
    InputOutOfRange(usize),
    /// An input violated its declared bound.
    InputOutOfBounds {
        /// Input position.
        index: usize,
        /// Input name from the [`crate::InputSpec`].
        name: String,
    },
    /// A loop exceeded the interpreter's iteration fuel (defensive bound).
    LoopFuelExhausted,
    /// Arithmetic overflow.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::FieldOutOfRange { index, len } => {
                write!(f, "record field {index} out of range (record has {len} fields)")
            }
            EvalError::IndexOutOfRange { index, len } => {
                write!(f, "list index {index} out of range (list has {len} items)")
            }
            EvalError::InputOutOfRange(i) => write!(f, "input {i} out of range"),
            EvalError::InputOutOfBounds { index, name } => {
                write!(f, "input {index} ({name}) violates its declared bound")
            }
            EvalError::LoopFuelExhausted => write!(f, "loop iteration fuel exhausted"),
            EvalError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let errs: Vec<EvalError> = vec![
            EvalError::TypeMismatch { expected: "int", got: Value::Bool(true) },
            EvalError::DivisionByZero,
            EvalError::FieldOutOfRange { index: 3, len: 2 },
            EvalError::IndexOutOfRange { index: -1, len: 0 },
            EvalError::InputOutOfRange(2),
            EvalError::InputOutOfBounds { index: 0, name: "olCnt".into() },
            EvalError::LoopFuelExhausted,
            EvalError::Overflow,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
