//! Ergonomic construction of [`Program`]s.

use crate::expr::Expr;
use crate::program::{InputBound, InputSpec, Program, VarId};
use crate::stmt::Stmt;
use crate::value::{TableId, TableRegistry};

/// Builder for [`Program`]s.
///
/// Control flow is expressed with closures so nesting is checked by the
/// compiler:
///
/// ```
/// use prognosticator_txir::{ProgramBuilder, InputBound, Expr};
///
/// let mut b = ProgramBuilder::new("demo");
/// let t = b.table("acct");
/// let amt = b.input("amt", InputBound::int(0, 100));
/// let bal = b.var("bal");
/// b.get(bal, Expr::key(t, vec![Expr::lit(1)]));
/// b.if_(
///     Expr::var(bal).ge(Expr::input(amt)),
///     |b| b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::var(bal).sub(Expr::input(amt))),
///     |b| b.emit(Expr::lit_str("insufficient")),
/// );
/// let p = b.build();
/// assert_eq!(p.inputs().len(), 1);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    inputs: Vec<InputSpec>,
    var_names: Vec<String>,
    /// Stack of open statement blocks; index 0 is the program body.
    blocks: Vec<Vec<Stmt>>,
    tables: TableRegistry,
}

impl ProgramBuilder {
    /// Starts a new program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            inputs: Vec::new(),
            var_names: Vec::new(),
            blocks: vec![Vec::new()],
            tables: TableRegistry::new(),
        }
    }

    /// Starts a new program sharing an existing table registry (so multiple
    /// programs of one workload agree on table ids).
    pub fn with_tables(name: &str, tables: TableRegistry) -> Self {
        let mut b = Self::new(name);
        b.tables = tables;
        b
    }

    /// Registers (or finds) a table by name.
    pub fn table(&mut self, name: &str) -> TableId {
        self.tables.register(name)
    }

    /// The registry accumulated so far (pass to the next builder via
    /// [`ProgramBuilder::with_tables`]).
    pub fn tables(&self) -> &TableRegistry {
        &self.tables
    }

    /// Declares an input with the given bound; returns its positional index.
    pub fn input(&mut self, name: &str, bound: InputBound) -> usize {
        self.inputs.push(InputSpec { name: name.to_owned(), bound });
        self.inputs.len() - 1
    }

    /// Declares a local variable; returns its id.
    pub fn var(&mut self, name: &str) -> VarId {
        self.var_names.push(name.to_owned());
        VarId(self.var_names.len() - 1)
    }

    fn push(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("builder always has an open block").push(s);
    }

    /// Emits `var = expr`.
    pub fn assign(&mut self, var: VarId, expr: Expr) {
        self.push(Stmt::Assign(var, expr));
    }

    /// Emits `var = GET(key)`.
    pub fn get(&mut self, var: VarId, key: Expr) {
        self.push(Stmt::Get(var, key));
    }

    /// Emits `PUT(key, value)`.
    pub fn put(&mut self, key: Expr, value: Expr) {
        self.push(Stmt::Put(key, value));
    }

    /// Emits `var.field = expr`.
    pub fn set_field(&mut self, var: VarId, field: usize, expr: Expr) {
        self.push(Stmt::SetField(var, field, expr));
    }

    /// Emits `EMIT(expr)` (appends to the transaction result).
    pub fn emit(&mut self, expr: Expr) {
        self.push(Stmt::Emit(expr));
    }

    /// Emits an `if cond { then } else { els }` statement.
    pub fn if_(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then(self);
        let t = self.blocks.pop().expect("then block");
        self.blocks.push(Vec::new());
        els(self);
        let e = self.blocks.pop().expect("else block");
        self.push(Stmt::If(cond, t, e));
    }

    /// Emits an `if cond { then }` statement with an empty else branch.
    pub fn if_then(&mut self, cond: Expr, then: impl FnOnce(&mut Self)) {
        self.if_(cond, then, |_| {});
    }

    /// Emits a `for var in from..to { body }` loop.
    pub fn for_(&mut self, var: VarId, from: Expr, to: Expr, body: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        body(self);
        let b = self.blocks.pop().expect("loop body");
        self.push(Stmt::For { var, from, to, body: b });
    }

    /// Finishes the program.
    ///
    /// # Panics
    /// Panics if called while a nested block is still open (impossible when
    /// using the closure API).
    pub fn build(mut self) -> Program {
        assert_eq!(self.blocks.len(), 1, "unclosed block in program builder");
        let body = self.blocks.pop().expect("program body");
        Program::new(self.name, self.inputs, self.var_names, body)
    }

    /// Finishes the program and also returns the table registry.
    pub fn build_with_tables(self) -> (Program, TableRegistry) {
        let tables = self.tables.clone();
        (self.build(), tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Stmt;

    #[test]
    fn builds_nested_structure() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i");
        let acc = b.var("acc");
        b.assign(acc, Expr::lit(0));
        b.for_(i, Expr::lit(0), Expr::lit(4), |b| {
            b.if_(
                Expr::var(i).rem(Expr::lit(2)).eq(Expr::lit(0)),
                |b| b.assign(acc, Expr::var(acc).add(Expr::var(i))),
                |b| b.assign(acc, Expr::var(acc).sub(Expr::var(i))),
            );
        });
        let p = b.build();
        assert_eq!(p.var_count(), 2);
        assert_eq!(p.body().len(), 2);
        match &p.body()[1] {
            Stmt::For { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn shares_table_registry() {
        let mut a = ProgramBuilder::new("a");
        let t1 = a.table("x");
        let (_, reg) = a.build_with_tables();
        let mut b = ProgramBuilder::with_tables("b", reg);
        assert_eq!(b.table("x"), t1);
        assert_ne!(b.table("y"), t1);
    }

    #[test]
    fn var_names_resolve() {
        let mut b = ProgramBuilder::new("n");
        let v = b.var("warehouse");
        let p = b.build();
        assert_eq!(p.var_name(v), "warehouse");
    }
}
