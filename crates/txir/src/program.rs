//! Programs (stored procedures) and their input specifications.

use crate::stmt::{count_stmts, Stmt};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a local variable within one program.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VarId(pub usize);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The declared domain of a transaction input.
///
/// Bounds drive symbolic execution: they make path constraints decidable
/// (interval + enumeration solving) and bound symbolic loop unrolling — the
/// paper bounds TPC-C's `olCnt` to `[5, 15]` the same way (§III-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InputBound {
    /// An integer in `[lo, hi]` (inclusive).
    Int {
        /// Smallest admissible value.
        lo: i64,
        /// Largest admissible value.
        hi: i64,
    },
    /// One of an explicit set of values (e.g. enum-like string inputs).
    Choice(Vec<Value>),
    /// A list of integers with bounded length and element range. The length
    /// is usually tied to another input (e.g. `olIds` has length `olCnt`);
    /// symbolically, elements are opaque and only the length matters.
    IntList {
        /// Smallest admissible length.
        len_lo: usize,
        /// Largest admissible length.
        len_hi: usize,
        /// Smallest admissible element.
        elem_lo: i64,
        /// Largest admissible element.
        elem_hi: i64,
    },
    /// An opaque string (participates in keys/values, never in arithmetic).
    Str,
}

impl InputBound {
    /// An integer bound `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn int(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty integer bound {lo}..={hi}");
        InputBound::Int { lo, hi }
    }

    /// A list bound.
    ///
    /// # Panics
    /// Panics if `len_lo > len_hi` or `elem_lo > elem_hi`.
    pub fn int_list(len_lo: usize, len_hi: usize, elem_lo: i64, elem_hi: i64) -> Self {
        assert!(len_lo <= len_hi, "empty length bound");
        assert!(elem_lo <= elem_hi, "empty element bound");
        InputBound::IntList { len_lo, len_hi, elem_lo, elem_hi }
    }

    /// Number of distinct values this bound admits, if finitely enumerable
    /// at reasonable cost (used by the solver's enumeration fallback).
    pub fn domain_size(&self) -> Option<u128> {
        match self {
            InputBound::Int { lo, hi } => Some((*hi as i128 - *lo as i128 + 1) as u128),
            InputBound::Choice(vs) => Some(vs.len() as u128),
            InputBound::IntList { .. } | InputBound::Str => None,
        }
    }

    /// Whether `v` lies within this bound.
    pub fn admits(&self, v: &Value) -> bool {
        match (self, v) {
            (InputBound::Int { lo, hi }, Value::Int(i)) => lo <= i && i <= hi,
            (InputBound::Choice(vs), v) => vs.contains(v),
            (InputBound::IntList { len_lo, len_hi, elem_lo, elem_hi }, Value::List(items)) => {
                (*len_lo..=*len_hi).contains(&items.len())
                    && items.iter().all(|it| match it {
                        Value::Int(i) => elem_lo <= i && i <= elem_hi,
                        _ => false,
                    })
            }
            (InputBound::Str, Value::Str(_)) => true,
            _ => false,
        }
    }
}

/// A named, bounded transaction input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Declared domain.
    pub bound: InputBound,
}

/// A stored procedure: named, with declared inputs and a statement body.
///
/// Programs are immutable after construction (via
/// [`crate::ProgramBuilder`]); the symbolic profiler and the concrete
/// interpreter both borrow them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    name: String,
    inputs: Vec<InputSpec>,
    var_count: usize,
    var_names: Vec<String>,
    body: Vec<Stmt>,
}

impl Program {
    pub(crate) fn new(
        name: String,
        inputs: Vec<InputSpec>,
        var_names: Vec<String>,
        body: Vec<Stmt>,
    ) -> Self {
        Program { name, inputs, var_count: var_names.len(), var_names, body }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared inputs, in positional order.
    pub fn inputs(&self) -> &[InputSpec] {
        &self.inputs
    }

    /// Number of local variables.
    pub fn var_count(&self) -> usize {
        self.var_count
    }

    /// Diagnostic name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.0]
    }

    /// The statement body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Total statement count (including nested statements).
    pub fn stmt_count(&self) -> usize {
        count_stmts(&self.body)
    }

    /// Validates a concrete input vector against the declared bounds.
    ///
    /// # Errors
    /// Returns the index and spec of the first violated input.
    pub fn check_inputs<'a>(&'a self, inputs: &[Value]) -> Result<(), (usize, &'a InputSpec)> {
        if inputs.len() != self.inputs.len() {
            // Arity mismatch: report as a violation of the missing/extra slot.
            let idx = inputs.len().min(self.inputs.len().saturating_sub(1));
            return Err((idx, &self.inputs[idx]));
        }
        for (i, (v, spec)) in inputs.iter().zip(&self.inputs).enumerate() {
            if !spec.bound.admits(v) {
                return Err((i, spec));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "program {}({} inputs, {} stmts)", self.name, self.inputs.len(), self.stmt_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_admits() {
        let b = InputBound::int(5, 15);
        assert!(b.admits(&Value::Int(5)));
        assert!(b.admits(&Value::Int(15)));
        assert!(!b.admits(&Value::Int(16)));
        assert!(!b.admits(&Value::str("x")));
        assert_eq!(b.domain_size(), Some(11));

        let c = InputBound::Choice(vec![Value::str("a"), Value::str("b")]);
        assert!(c.admits(&Value::str("a")));
        assert!(!c.admits(&Value::str("z")));
        assert_eq!(c.domain_size(), Some(2));

        let l = InputBound::int_list(1, 3, 0, 9);
        assert!(l.admits(&Value::list(vec![Value::Int(3)])));
        assert!(!l.admits(&Value::list(vec![])));
        assert!(!l.admits(&Value::list(vec![Value::Int(10)])));
        assert!(!l.admits(&Value::list(vec![Value::str("x")])));
        assert_eq!(l.domain_size(), None);

        assert!(InputBound::Str.admits(&Value::str("anything")));
        assert!(!InputBound::Str.admits(&Value::Int(0)));
    }

    #[test]
    #[should_panic(expected = "empty integer bound")]
    fn bad_bound_panics() {
        let _ = InputBound::int(3, 2);
    }
}
