//! Runtime values, database keys and the table registry.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a logical table in the key space.
///
/// Keys are namespaced by table so that table-granularity schedulers (the
/// NODO baseline) can coarsen a key to its table.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TableId(pub u16);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Maps human-readable table names to [`TableId`]s.
///
/// Shared by the workload definitions, the stores and the schedulers so that
/// diagnostics can print `stock` instead of `t7`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TableRegistry {
    names: Vec<String>,
}

impl TableRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (or returns the existing id if already present).
    pub fn register(&mut self, name: &str) -> TableId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return TableId(pos as u16);
        }
        assert!(self.names.len() < u16::MAX as usize, "too many tables");
        self.names.push(name.to_owned());
        TableId((self.names.len() - 1) as u16)
    }

    /// Looks up an id by name.
    pub fn id(&self, name: &str) -> Option<TableId> {
        self.names.iter().position(|n| n == name).map(|p| TableId(p as u16))
    }

    /// Looks up a name by id.
    pub fn name(&self, id: TableId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no table has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (TableId(i as u16), n.as_str()))
    }
}

/// A runtime value.
///
/// Records and lists use `Arc` so cloning a value (the interpreter clones
/// freely) is O(1). There is deliberately no floating-point variant: keys
/// must be `Eq + Hash`, and the benchmarks only need integers, strings and
/// composites (TPC-C monetary amounts are represented in cents).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absent/neutral value; also what a `GET` of a missing key yields.
    #[default]
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Immutable string.
    Str(Arc<str>),
    /// Record with positional fields (field names live in the program's
    /// schema metadata, not in the value).
    Record(Arc<Vec<Value>>),
    /// Homogeneous immutable list.
    List(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }

    /// Convenience constructor for records.
    pub fn record(fields: Vec<Value>) -> Self {
        Value::Record(Arc::new(fields))
    }

    /// Convenience constructor for lists.
    pub fn list(items: Vec<Value>) -> Self {
        Value::List(Arc::new(items))
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the record fields, if this is a `Record`.
    pub fn as_record(&self) -> Option<&[Value]> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Returns the list items, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Whether the value is [`Value::Unit`] (e.g. a missed `GET`).
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }

    /// A coarse estimate of the heap footprint in bytes, used by the
    /// symbolic-analysis memory accounting (Table I).
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Unit | Value::Bool(_) | Value::Int(_) => std::mem::size_of::<Value>(),
            Value::Str(s) => std::mem::size_of::<Value>() + s.len(),
            Value::Record(fs) | Value::List(fs) => {
                std::mem::size_of::<Value>() + fs.iter().map(Value::approx_size).sum::<usize>()
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Record(fs) => {
                write!(f, "{{")?;
                for (i, v) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::List(fs) => {
                write!(f, "[")?;
                for (i, v) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A database key: a table plus a tuple of primary-key parts.
///
/// Conflict detection in Prognosticator is performed at **key granularity**
/// (paper §III, footnote 3); the NODO baseline coarsens a key to its
/// [`TableId`] via [`Key::table_lock`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key {
    /// Table this key belongs to.
    pub table: TableId,
    /// Primary-key parts, in schema order.
    pub parts: Vec<Value>,
}

impl Key {
    /// Builds a key from a table and its parts.
    pub fn new(table: TableId, parts: Vec<Value>) -> Self {
        Key { table, parts }
    }

    /// Builds a key whose parts are all integers.
    pub fn of_ints(table: TableId, parts: &[i64]) -> Self {
        Key { table, parts: parts.iter().map(|&i| Value::Int(i)).collect() }
    }

    /// The table-granularity coarsening of this key used by NODO: a key with
    /// the same table and no parts, so all keys of a table collide.
    pub fn table_lock(&self) -> Key {
        Key { table: self.table, parts: Vec::new() }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.table)?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut reg = TableRegistry::new();
        let a = reg.register("alpha");
        let b = reg.register("beta");
        assert_ne!(a, b);
        assert_eq!(reg.register("alpha"), a);
        assert_eq!(reg.id("beta"), Some(b));
        assert_eq!(reg.name(a), Some("alpha"));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_empty());
        let pairs: Vec<_> = reg.iter().collect();
        assert_eq!(pairs, vec![(a, "alpha"), (b, "beta")]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_int(), None);
        assert!(Value::Unit.is_unit());
        let r = Value::record(vec![Value::Int(1), Value::str("a")]);
        assert_eq!(r.as_record().unwrap().len(), 2);
        let l = Value::list(vec![Value::Int(1)]);
        assert_eq!(l.as_list().unwrap()[0], Value::Int(1));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
    }

    #[test]
    fn value_display_nonempty() {
        for v in [
            Value::Unit,
            Value::Bool(false),
            Value::Int(-4),
            Value::str("s"),
            Value::record(vec![Value::Int(1), Value::Int(2)]),
            Value::list(vec![]),
        ] {
            assert!(!format!("{v}").is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }

    #[test]
    fn key_table_lock_collides_within_table() {
        let k1 = Key::of_ints(TableId(3), &[1, 2]);
        let k2 = Key::of_ints(TableId(3), &[9]);
        let k3 = Key::of_ints(TableId(4), &[1, 2]);
        assert_ne!(k1, k2);
        assert_eq!(k1.table_lock(), k2.table_lock());
        assert_ne!(k1.table_lock(), k3.table_lock());
    }

    #[test]
    fn approx_size_grows_with_content() {
        let small = Value::Int(1);
        let big = Value::list(vec![Value::Int(1); 100]);
        assert!(big.approx_size() > small.approx_size());
    }
}
