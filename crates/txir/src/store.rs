//! The key-value interface programs run against.

use crate::value::{Key, Value};
use std::collections::HashMap;

/// The GET/PUT interface a transaction executes against (paper §III-B:
/// "a key/value data model with a classic GET/PUT interface").
///
/// Methods take `&mut self` so implementations can track accesses, buffer
/// writes, inject latency, or read through snapshots. A `&mut T` also
/// implements the trait, so adapters compose.
pub trait TxStore {
    /// Reads `key`; `None` means the key is absent (the interpreter maps
    /// this to [`Value::Unit`]).
    fn get(&mut self, key: &Key) -> Option<Value>;

    /// Writes `value` under `key` (insert or overwrite).
    fn put(&mut self, key: &Key, value: Value);
}

impl<T: TxStore + ?Sized> TxStore for &mut T {
    fn get(&mut self, key: &Key) -> Option<Value> {
        (**self).get(key)
    }

    fn put(&mut self, key: &Key, value: Value) {
        (**self).put(key, value);
    }
}

/// A trivial in-memory store backed by a `HashMap`. Used by unit tests, the
/// symbolic engine's concrete baseline, and examples; the production-grade
/// epoch-MVCC store lives in `prognosticator-storage`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapStore {
    map: HashMap<Key, Value>,
}

impl MapStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads without requiring `&mut`.
    pub fn peek(&self, key: &Key) -> Option<&Value> {
        self.map.get(key)
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.map.iter()
    }
}

impl TxStore for MapStore {
    fn get(&mut self, key: &Key) -> Option<Value> {
        self.map.get(key).cloned()
    }

    fn put(&mut self, key: &Key, value: Value) {
        self.map.insert(key.clone(), value);
    }
}

impl FromIterator<(Key, Value)> for MapStore {
    fn from_iter<I: IntoIterator<Item = (Key, Value)>>(iter: I) -> Self {
        MapStore { map: iter.into_iter().collect() }
    }
}

impl Extend<(Key, Value)> for MapStore {
    fn extend<I: IntoIterator<Item = (Key, Value)>>(&mut self, iter: I) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::TableId;

    #[test]
    fn map_store_basics() {
        let mut s = MapStore::new();
        let k = Key::of_ints(TableId(0), &[1]);
        assert!(s.is_empty());
        assert_eq!(s.get(&k), None);
        s.put(&k, Value::Int(9));
        assert_eq!(s.get(&k), Some(Value::Int(9)));
        assert_eq!(s.len(), 1);
        s.put(&k, Value::Int(10));
        assert_eq!(s.peek(&k), Some(&Value::Int(10)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn mut_ref_is_a_store() {
        fn takes_store(st: &mut impl TxStore, k: &Key) -> Option<Value> {
            st.get(k)
        }
        let mut s = MapStore::new();
        let k = Key::of_ints(TableId(0), &[2]);
        s.put(&k, Value::Int(1));
        let mut r = &mut s;
        assert_eq!(takes_store(&mut r, &k), Some(Value::Int(1)));
    }

    #[test]
    fn collect_and_extend() {
        let k1 = Key::of_ints(TableId(0), &[1]);
        let k2 = Key::of_ints(TableId(0), &[2]);
        let mut s: MapStore = vec![(k1.clone(), Value::Int(1))].into_iter().collect();
        s.extend(vec![(k2.clone(), Value::Int(2))]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().count(), 2);
    }
}
