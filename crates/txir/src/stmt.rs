//! Statements of the transaction IR.

use crate::expr::Expr;
use crate::program::VarId;
use serde::{Deserialize, Serialize};

/// A statement.
///
/// The IR is deliberately small: assignment, GET/PUT (the paper's key-value
/// interface, §III-B), structured control flow (`if`, bounded `for`), record
/// field update and result emission. There is no unbounded loop — symbolic
/// execution requires loop bounds derivable from the input bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = expr`
    Assign(VarId, Expr),
    /// `var = GET(key)`; a missing key yields [`crate::Value::Unit`].
    Get(VarId, Expr),
    /// `PUT(key, value)`
    Put(Expr, Expr),
    /// `if cond { then } else { els }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `for var in from..to { body }` — `var` takes integer values
    /// `from, from+1, …, to-1`. A non-positive range executes zero times.
    For {
        /// Loop variable (assigned each iteration).
        var: VarId,
        /// Inclusive start.
        from: Expr,
        /// Exclusive end.
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `var.field = expr` — functional record update of a local variable.
    SetField(VarId, usize, Expr),
    /// Appends a value to the transaction's result list (used by read-only
    /// transactions to produce output).
    Emit(Expr),
}

impl Stmt {
    /// Visits this statement and all nested statements in pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        f(self);
        match self {
            Stmt::If(_, t, e) => {
                for s in t {
                    s.visit(f);
                }
                for s in e {
                    s.visit(f);
                }
            }
            Stmt::For { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

/// Counts statements in a block, including nested ones. Useful for program
/// size reporting in the benchmark harness.
pub fn count_stmts(block: &[Stmt]) -> usize {
    let mut n = 0;
    for s in block {
        s.visit(&mut |_| n += 1);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_reaches_nested() {
        let inner = Stmt::Emit(Expr::lit(1));
        let s = Stmt::If(
            Expr::lit_bool(true),
            vec![Stmt::For {
                var: VarId(0),
                from: Expr::lit(0),
                to: Expr::lit(3),
                body: vec![inner.clone()],
            }],
            vec![inner.clone()],
        );
        assert_eq!(count_stmts(&[s]), 4);
    }
}
