//! Pretty-printing of programs as readable pseudocode.
//!
//! Useful for debugging workloads and for documentation — the rendered
//! form mirrors the paper's Algorithm 2 style:
//!
//! ```text
//! transaction new_order(w, d, c, olCnt, itemIds, supplyWs, qtys)
//!   oid = GET(district_next_o[in0, in1])
//!   PUT(district_next_o[in0, in1], (oid + 1))
//!   ...
//! ```

use crate::expr::Expr;
use crate::program::Program;
use crate::stmt::Stmt;
use crate::value::TableRegistry;
use std::fmt::Write as _;

/// Renders `program` as indented pseudocode. Pass the workload's
/// [`TableRegistry`] to print table names instead of ids (an empty
/// registry falls back to `t<N>`).
pub fn render(program: &Program, tables: &TableRegistry) -> String {
    let mut out = String::new();
    let inputs: Vec<&str> =
        program.inputs().iter().map(|i| i.name.as_str()).collect();
    let _ = writeln!(out, "transaction {}({})", program.name(), inputs.join(", "));
    let cx = Cx { program, tables };
    render_block(&cx, program.body(), 1, &mut out);
    out
}

struct Cx<'a> {
    program: &'a Program,
    tables: &'a TableRegistry,
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_block(cx: &Cx<'_>, block: &[Stmt], level: usize, out: &mut String) {
    for stmt in block {
        render_stmt(cx, stmt, level, out);
    }
}

fn render_stmt(cx: &Cx<'_>, stmt: &Stmt, level: usize, out: &mut String) {
    indent(out, level);
    match stmt {
        Stmt::Assign(v, e) => {
            let _ = writeln!(out, "{} = {}", cx.program.var_name(*v), render_expr(cx, e));
        }
        Stmt::Get(v, key) => {
            let _ = writeln!(
                out,
                "{} = GET({})",
                cx.program.var_name(*v),
                render_expr(cx, key)
            );
        }
        Stmt::Put(key, value) => {
            let _ = writeln!(out, "PUT({}, {})", render_expr(cx, key), render_expr(cx, value));
        }
        Stmt::If(cond, then, els) => {
            let _ = writeln!(out, "if {} then", render_expr(cx, cond));
            render_block(cx, then, level + 1, out);
            if !els.is_empty() {
                indent(out, level);
                out.push_str("else\n");
                render_block(cx, els, level + 1, out);
            }
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::For { var, from, to, body } => {
            let _ = writeln!(
                out,
                "for {} in {}..{} do",
                cx.program.var_name(*var),
                render_expr(cx, from),
                render_expr(cx, to)
            );
            render_block(cx, body, level + 1, out);
            indent(out, level);
            out.push_str("end\n");
        }
        Stmt::SetField(v, field, e) => {
            let _ = writeln!(
                out,
                "{}.{} = {}",
                cx.program.var_name(*v),
                field,
                render_expr(cx, e)
            );
        }
        Stmt::Emit(e) => {
            let _ = writeln!(out, "EMIT({})", render_expr(cx, e));
        }
    }
}

fn render_expr(cx: &Cx<'_>, e: &Expr) -> String {
    match e {
        Expr::Const(v) => format!("{v}"),
        Expr::Input(i) => cx
            .program
            .inputs()
            .get(*i)
            .map_or_else(|| format!("in{i}"), |s| s.name.clone()),
        Expr::Var(v) => cx.program.var_name(*v).to_owned(),
        Expr::Field(inner, idx) => format!("{}.{idx}", render_expr(cx, inner)),
        Expr::Bin(op, a, b) => {
            format!("({} {op} {})", render_expr(cx, a), render_expr(cx, b))
        }
        Expr::Un(op, inner) => format!("{op}{}", render_expr(cx, inner)),
        Expr::Key(table, parts) => {
            let name = cx
                .tables
                .name(*table)
                .map_or_else(|| format!("{table}"), str::to_owned);
            let parts: Vec<String> = parts.iter().map(|p| render_expr(cx, p)).collect();
            format!("{name}[{}]", parts.join(", "))
        }
        Expr::MakeRecord(fields) => {
            let fields: Vec<String> = fields.iter().map(|f| render_expr(cx, f)).collect();
            format!("{{{}}}", fields.join(", "))
        }
        Expr::ListIndex(l, i) => format!("{}[{}]", render_expr(cx, l), render_expr(cx, i)),
        Expr::ListLen(l) => format!("len({})", render_expr(cx, l)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::InputBound;

    #[test]
    fn renders_nested_program() {
        let mut b = ProgramBuilder::new("demo");
        let t = b.table("acct");
        let id = b.input("id", InputBound::int(0, 9));
        let n = b.input("n", InputBound::int(0, 3));
        let bal = b.var("bal");
        let i = b.var("i");
        b.get(bal, Expr::key(t, vec![Expr::input(id)]));
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.if_(
                Expr::var(bal).gt(Expr::lit(0)),
                |b| b.put(Expr::key(t, vec![Expr::input(id)]), Expr::var(bal).sub(Expr::lit(1))),
                |b| b.emit(Expr::lit_str("empty")),
            );
        });
        let (p, tables) = b.build_with_tables();
        let text = render(&p, &tables);
        assert!(text.contains("transaction demo(id, n)"));
        assert!(text.contains("bal = GET(acct[id])"));
        assert!(text.contains("for i in 0..n do"));
        assert!(text.contains("if (bal > 0) then"));
        assert!(text.contains("PUT(acct[id], (bal - 1))"));
        assert!(text.contains("else"));
        assert!(text.contains("EMIT(\"empty\")"));
        // Indentation is present (nested put is two levels deep).
        assert!(text.lines().any(|l| l.starts_with("      PUT")));
    }

    #[test]
    fn unknown_tables_fall_back_to_ids() {
        let mut b = ProgramBuilder::new("x");
        let t = b.table("t");
        b.put(Expr::key(t, vec![Expr::lit(1)]), Expr::lit(2));
        let p = b.build();
        let text = render(&p, &TableRegistry::new());
        assert!(text.contains("t0[1]"));
    }
}
