//! Expressions of the transaction IR.

use crate::program::VarId;
use crate::value::{TableId, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Integer addition (or string concatenation when both sides are `Str`).
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (Euclidean; division by zero is an error).
    Div,
    /// Integer remainder (Euclidean; division by zero is an error).
    Mod,
    /// Structural equality on any two values.
    Eq,
    /// Structural inequality.
    Ne,
    /// Integer less-than.
    Lt,
    /// Integer less-or-equal.
    Le,
    /// Integer greater-than.
    Gt,
    /// Integer greater-or-equal.
    Ge,
    /// Boolean conjunction (both sides always evaluated: the IR has no
    /// side-effecting expressions, so short-circuiting is unobservable).
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// Whether this operator returns a boolean.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::And | BinOp::Or
        )
    }

    /// The operator computing the negation of this comparison, if any.
    /// Used by the symbolic engine to push negations into constraints.
    pub fn negated(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Not => "!",
            UnOp::Neg => "-",
        })
    }
}

/// An expression tree.
///
/// Expressions are side-effect free; all store interaction happens in
/// [`crate::Stmt::Get`]/[`crate::Stmt::Put`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// The i-th transaction input.
    Input(usize),
    /// A local variable.
    Var(VarId),
    /// Positional field of a record value.
    Field(Box<Expr>, usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Construct a database key `table(part0, part1, …)`.
    Key(TableId, Vec<Expr>),
    /// Construct a record value from positional fields.
    MakeRecord(Vec<Expr>),
    /// Index into a list (`list[idx]`; out of bounds is an error).
    ListIndex(Box<Expr>, Box<Expr>),
    /// Length of a list.
    ListLen(Box<Expr>),
}

// The builder methods deliberately shadow the `std::ops` trait names:
// `a.add(b)` reads as the arithmetic it encodes, and the operands are
// always `Expr` (no generic Rhs), so the operator traits would only add
// ceremony to every call site.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Literal integer.
    pub fn lit(v: i64) -> Expr {
        Expr::Const(Value::Int(v))
    }

    /// Literal string.
    pub fn lit_str(s: &str) -> Expr {
        Expr::Const(Value::str(s))
    }

    /// Literal boolean.
    pub fn lit_bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// The i-th input.
    pub fn input(i: usize) -> Expr {
        Expr::Input(i)
    }

    /// A variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// A key constructor.
    pub fn key(table: TableId, parts: Vec<Expr>) -> Expr {
        Expr::Key(table, parts)
    }

    /// Positional field access.
    pub fn field(self, idx: usize) -> Expr {
        Expr::Field(Box::new(self), idx)
    }

    /// List indexing.
    pub fn index(self, idx: Expr) -> Expr {
        Expr::ListIndex(Box::new(self), Box::new(idx))
    }

    /// List length.
    pub fn len(self) -> Expr {
        Expr::ListLen(Box::new(self))
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }
    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mod, rhs)
    }
    /// `self == rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// `self != rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// `self && rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// `self || rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `!self`
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }
    /// `-self`
    pub fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }

    /// Visits every sub-expression (including `self`) in pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Input(_) | Expr::Var(_) => {}
            Expr::Field(e, _) | Expr::Un(_, e) | Expr::ListLen(e) => e.visit(f),
            Expr::Bin(_, a, b) | Expr::ListIndex(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Key(_, es) | Expr::MakeRecord(es) => {
                for e in es {
                    e.visit(f);
                }
            }
        }
    }

    /// Collects the set of variables read by this expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        });
        out
    }

    /// Collects the set of input indices read by this expression.
    pub fn inputs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Input(i) = e {
                if !out.contains(i) {
                    out.push(*i);
                }
            }
        });
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Input(i) => write!(f, "in{i}"),
            Expr::Var(v) => write!(f, "v{}", v.0),
            Expr::Field(e, i) => write!(f, "{e}.{i}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Un(op, e) => write!(f, "{op}{e}"),
            Expr::Key(t, parts) => {
                write!(f, "{t}(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Expr::MakeRecord(fs) => {
                write!(f, "{{")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "}}")
            }
            Expr::ListIndex(l, i) => write!(f, "{l}[{i}]"),
            Expr::ListLen(l) => write!(f, "len({l})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negated_comparisons() {
        assert_eq!(BinOp::Lt.negated(), Some(BinOp::Ge));
        assert_eq!(BinOp::Eq.negated(), Some(BinOp::Ne));
        assert_eq!(BinOp::Add.negated(), None);
    }

    #[test]
    fn predicate_classification() {
        assert!(BinOp::Eq.is_predicate());
        assert!(BinOp::And.is_predicate());
        assert!(!BinOp::Mul.is_predicate());
    }

    #[test]
    fn collects_vars_and_inputs() {
        let e = Expr::var(VarId(1)).add(Expr::input(0)).mul(Expr::var(VarId(2)).add(Expr::var(VarId(1))));
        let mut vs = e.vars();
        vs.sort();
        assert_eq!(vs, vec![VarId(1), VarId(2)]);
        assert_eq!(e.inputs(), vec![0]);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::key(TableId(2), vec![Expr::input(0), Expr::lit(5)]);
        assert_eq!(format!("{e}"), "t2(in0,5)");
        let c = Expr::input(1).le(Expr::lit(3)).not();
        assert_eq!(format!("{c}"), "!(in1 <= 3)");
    }
}
