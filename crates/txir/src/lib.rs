#![warn(missing_docs)]
//! Transaction IR: a small imperative stored-procedure language over a
//! GET/PUT key-value interface.
//!
//! The paper analyses Java stored procedures with JPF/Symbolic PathFinder.
//! This reproduction expresses transactions in an explicit IR instead, so the
//! same program can be
//!
//! * executed **concretely** by [`interp::Interpreter`] against any store
//!   implementing [`store::TxStore`] (what worker threads do at runtime, and
//!   what the reconnaissance baselines do), and
//! * executed **symbolically** by the `prognosticator-symexec` crate to build
//!   the offline *transaction profile*.
//!
//! A [`Program`] declares typed, **bounded** inputs ([`InputSpec`]) — e.g.
//! TPC-C's `olCnt ∈ [5, 15]` — which the symbolic engine uses both to bound
//! loop unrolling and to decide satisfiability of path constraints.
//!
//! # Example
//!
//! ```
//! use prognosticator_txir::{ProgramBuilder, InputBound, Expr};
//!
//! let mut b = ProgramBuilder::new("increment");
//! let table = b.table("counters");
//! let k = b.input("id", InputBound::int(0, 100));
//! let v = b.var("v");
//! let key = Expr::key(table, vec![Expr::input(k)]);
//! b.get(v, key.clone());
//! b.put(key, Expr::var(v).add(Expr::lit(1)));
//! let program = b.build();
//! assert_eq!(program.name(), "increment");
//! ```

pub mod builder;
pub mod error;
pub mod expr;
pub mod interp;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod store;
pub mod value;

pub use builder::ProgramBuilder;
pub use error::EvalError;
pub use expr::{BinOp, Expr, UnOp};
pub use interp::{AccessTrace, ExecOutcome, Interpreter};
pub use pretty::render;
pub use program::{InputBound, InputSpec, Program, VarId};
pub use stmt::Stmt;
pub use store::{MapStore, TxStore};
pub use value::{Key, TableId, TableRegistry, Value};
