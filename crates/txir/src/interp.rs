//! Concrete interpreter for the transaction IR.

use crate::error::EvalError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::program::Program;
use crate::stmt::Stmt;
use crate::store::TxStore;
use crate::value::{Key, Value};
use std::sync::Arc;

/// Ordered record of the keys a concrete execution touched.
///
/// Used to cross-check symbolic profiles (a profile is correct iff the
/// predicted RWS covers the trace for every input/state), and by the
/// reconnaissance (`*-R`, Calvin/OLLP-style) baselines to discover key-sets
/// by pre-executing the transaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTrace {
    /// Keys read, in program order (duplicates preserved).
    pub reads: Vec<Key>,
    /// Keys written, in program order (duplicates preserved).
    pub writes: Vec<Key>,
}

impl AccessTrace {
    /// Deduplicated union of reads and writes.
    pub fn key_set(&self) -> Vec<Key> {
        let mut out: Vec<Key> = Vec::new();
        for k in self.reads.iter().chain(self.writes.iter()) {
            if !out.contains(k) {
                out.push(k.clone());
            }
        }
        out
    }

    /// Whether no write was performed (the execution was read-only).
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Result of a completed execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutcome {
    /// Values produced by `Emit` statements, in order.
    pub emitted: Vec<Value>,
    /// The access trace.
    pub trace: AccessTrace,
}

/// Default iteration fuel; generous for the benchmark programs (whose loops
/// are bounded by inputs ≤ a few dozen) while catching runaway loops.
pub const DEFAULT_LOOP_FUEL: u64 = 1_000_000;

/// Interprets [`Program`]s against a [`TxStore`].
///
/// The interpreter is stateless between runs and cheap to construct; worker
/// threads create one per execution.
#[derive(Debug, Clone)]
pub struct Interpreter {
    loop_fuel: u64,
    validate_inputs: bool,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// Creates an interpreter with default fuel and input validation on.
    pub fn new() -> Self {
        Interpreter { loop_fuel: DEFAULT_LOOP_FUEL, validate_inputs: true }
    }

    /// Overrides the loop fuel (total iterations across all loops).
    pub fn with_loop_fuel(mut self, fuel: u64) -> Self {
        self.loop_fuel = fuel;
        self
    }

    /// Disables input-bound validation (used on hot execution paths where
    /// the generator guarantees in-bounds inputs).
    pub fn without_input_validation(mut self) -> Self {
        self.validate_inputs = false;
        self
    }

    /// Runs `program` with `inputs` against `store`.
    ///
    /// # Errors
    /// Returns an [`EvalError`] on type errors, out-of-range accesses,
    /// division by zero, overflow, out-of-bounds inputs, or fuel exhaustion.
    pub fn run(
        &self,
        program: &Program,
        inputs: &[Value],
        store: &mut impl TxStore,
    ) -> Result<ExecOutcome, EvalError> {
        if self.validate_inputs {
            program.check_inputs(inputs).map_err(|(index, spec)| {
                EvalError::InputOutOfBounds { index, name: spec.name.clone() }
            })?;
        }
        let mut frame = Frame {
            vars: vec![Value::Unit; program.var_count()],
            inputs,
            outcome: ExecOutcome::default(),
            fuel: self.loop_fuel,
        };
        exec_block(program.body(), &mut frame, store)?;
        Ok(frame.outcome)
    }
}

struct Frame<'a> {
    vars: Vec<Value>,
    inputs: &'a [Value],
    outcome: ExecOutcome,
    fuel: u64,
}

fn exec_block(
    block: &[Stmt],
    frame: &mut Frame<'_>,
    store: &mut impl TxStore,
) -> Result<(), EvalError> {
    for stmt in block {
        exec_stmt(stmt, frame, store)?;
    }
    Ok(())
}

fn exec_stmt(
    stmt: &Stmt,
    frame: &mut Frame<'_>,
    store: &mut impl TxStore,
) -> Result<(), EvalError> {
    match stmt {
        Stmt::Assign(v, e) => {
            frame.vars[v.0] = eval(e, frame)?;
        }
        Stmt::Get(v, key_expr) => {
            let key = eval_key(key_expr, frame)?;
            let val = store.get(&key).unwrap_or(Value::Unit);
            frame.outcome.trace.reads.push(key);
            frame.vars[v.0] = val;
        }
        Stmt::Put(key_expr, val_expr) => {
            let key = eval_key(key_expr, frame)?;
            let val = eval(val_expr, frame)?;
            frame.outcome.trace.writes.push(key.clone());
            store.put(&key, val);
        }
        Stmt::If(cond, then, els) => {
            if eval_bool(cond, frame)? {
                exec_block(then, frame, store)?;
            } else {
                exec_block(els, frame, store)?;
            }
        }
        Stmt::For { var, from, to, body } => {
            let from = eval_int(from, frame)?;
            let to = eval_int(to, frame)?;
            let mut i = from;
            while i < to {
                frame.fuel = frame.fuel.checked_sub(1).ok_or(EvalError::LoopFuelExhausted)?;
                if frame.fuel == 0 {
                    return Err(EvalError::LoopFuelExhausted);
                }
                frame.vars[var.0] = Value::Int(i);
                exec_block(body, frame, store)?;
                i += 1;
            }
        }
        Stmt::SetField(v, field, e) => {
            let val = eval(e, frame)?;
            let rec = match &frame.vars[v.0] {
                Value::Record(r) => r,
                other => {
                    return Err(EvalError::TypeMismatch { expected: "record", got: other.clone() })
                }
            };
            if *field >= rec.len() {
                return Err(EvalError::FieldOutOfRange { index: *field, len: rec.len() });
            }
            let mut fields = rec.as_ref().clone();
            fields[*field] = val;
            frame.vars[v.0] = Value::Record(Arc::new(fields));
        }
        Stmt::Emit(e) => {
            let val = eval(e, frame)?;
            frame.outcome.emitted.push(val);
        }
    }
    Ok(())
}

/// Evaluates a key expression: only [`Expr::Key`] is accepted at key
/// position (the IR keeps keys out of the value universe, which is what
/// makes symbolic key extraction exact).
fn eval_key(expr: &Expr, frame: &Frame<'_>) -> Result<Key, EvalError> {
    match expr {
        Expr::Key(table, parts) => {
            let mut vals = Vec::with_capacity(parts.len());
            for p in parts {
                vals.push(eval(p, frame)?);
            }
            Ok(Key::new(*table, vals))
        }
        other => Err(EvalError::TypeMismatch {
            expected: "key constructor",
            got: Value::str(&format!("{other}")),
        }),
    }
}

fn eval_bool(expr: &Expr, frame: &Frame<'_>) -> Result<bool, EvalError> {
    match eval(expr, frame)? {
        Value::Bool(b) => Ok(b),
        other => Err(EvalError::TypeMismatch { expected: "bool", got: other }),
    }
}

fn eval_int(expr: &Expr, frame: &Frame<'_>) -> Result<i64, EvalError> {
    match eval(expr, frame)? {
        Value::Int(i) => Ok(i),
        other => Err(EvalError::TypeMismatch { expected: "int", got: other }),
    }
}

fn eval(expr: &Expr, frame: &Frame<'_>) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Input(i) => {
            frame.inputs.get(*i).cloned().ok_or(EvalError::InputOutOfRange(*i))
        }
        Expr::Var(v) => Ok(frame.vars[v.0].clone()),
        Expr::Field(e, idx) => {
            let val = eval(e, frame)?;
            match val {
                Value::Record(r) => r
                    .get(*idx)
                    .cloned()
                    .ok_or(EvalError::FieldOutOfRange { index: *idx, len: r.len() }),
                // Field access on a missing record (a GET miss) yields
                // Unit, so scans over possibly-absent rows can test
                // `rec.field == Unit` / `rec == Unit` instead of erroring.
                Value::Unit => Ok(Value::Unit),
                other => Err(EvalError::TypeMismatch { expected: "record", got: other }),
            }
        }
        Expr::Bin(op, a, b) => {
            let a = eval(a, frame)?;
            let b = eval(b, frame)?;
            apply_bin(*op, a, b)
        }
        Expr::Un(op, e) => {
            let v = eval(e, frame)?;
            match (op, v) {
                (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                (UnOp::Neg, Value::Int(i)) => {
                    i.checked_neg().map(Value::Int).ok_or(EvalError::Overflow)
                }
                (UnOp::Not, other) => {
                    Err(EvalError::TypeMismatch { expected: "bool", got: other })
                }
                (UnOp::Neg, other) => Err(EvalError::TypeMismatch { expected: "int", got: other }),
            }
        }
        Expr::Key(..) => Err(EvalError::TypeMismatch {
            expected: "value (keys are not first-class)",
            got: Value::str(&format!("{expr}")),
        }),
        Expr::MakeRecord(fields) => {
            let mut vals = Vec::with_capacity(fields.len());
            for f in fields {
                vals.push(eval(f, frame)?);
            }
            Ok(Value::record(vals))
        }
        Expr::ListIndex(l, i) => {
            let list = eval(l, frame)?;
            let idx = eval_int_val(eval(i, frame)?)?;
            match list {
                Value::List(items) => {
                    if idx < 0 || idx as usize >= items.len() {
                        Err(EvalError::IndexOutOfRange { index: idx, len: items.len() })
                    } else {
                        Ok(items[idx as usize].clone())
                    }
                }
                other => Err(EvalError::TypeMismatch { expected: "list", got: other }),
            }
        }
        Expr::ListLen(l) => match eval(l, frame)? {
            Value::List(items) => Ok(Value::Int(items.len() as i64)),
            other => Err(EvalError::TypeMismatch { expected: "list", got: other }),
        },
    }
}

fn eval_int_val(v: Value) -> Result<i64, EvalError> {
    match v {
        Value::Int(i) => Ok(i),
        other => Err(EvalError::TypeMismatch { expected: "int", got: other }),
    }
}

/// Applies a binary operator to two concrete values. Shared with the
/// symbolic engine's constant folding, hence `pub`.
pub fn apply_bin(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add => match (a, b) {
            (Value::Int(x), Value::Int(y)) => {
                x.checked_add(y).map(Value::Int).ok_or(EvalError::Overflow)
            }
            (Value::Str(x), Value::Str(y)) => {
                let mut s = String::with_capacity(x.len() + y.len());
                s.push_str(&x);
                s.push_str(&y);
                Ok(Value::from(s))
            }
            (Value::Int(_), other) | (other, _) => {
                Err(EvalError::TypeMismatch { expected: "int or str", got: other })
            }
        },
        Sub | Mul | Div | Mod => {
            let (x, y) = match (a, b) {
                (Value::Int(x), Value::Int(y)) => (x, y),
                (Value::Int(_), other) | (other, _) => {
                    return Err(EvalError::TypeMismatch { expected: "int", got: other })
                }
            };
            let r = match op {
                Sub => x.checked_sub(y),
                Mul => x.checked_mul(y),
                Div => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x.checked_div_euclid(y)
                }
                Mod => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x.checked_rem_euclid(y)
                }
                _ => unreachable!(),
            };
            r.map(Value::Int).ok_or(EvalError::Overflow)
        }
        Eq => Ok(Value::Bool(a == b)),
        Ne => Ok(Value::Bool(a != b)),
        Lt | Le | Gt | Ge => {
            let (x, y) = match (a, b) {
                (Value::Int(x), Value::Int(y)) => (x, y),
                (Value::Int(_), other) | (other, _) => {
                    return Err(EvalError::TypeMismatch { expected: "int", got: other })
                }
            };
            Ok(Value::Bool(match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            }))
        }
        And | Or => {
            let (x, y) = match (a, b) {
                (Value::Bool(x), Value::Bool(y)) => (x, y),
                (Value::Bool(_), other) | (other, _) => {
                    return Err(EvalError::TypeMismatch { expected: "bool", got: other })
                }
            };
            Ok(Value::Bool(if op == And { x && y } else { x || y }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::InputBound;
    use crate::store::MapStore;
    use crate::value::TableId;

    fn run_program(p: &Program, inputs: &[Value], store: &mut MapStore) -> ExecOutcome {
        Interpreter::new().run(p, inputs, store).expect("program runs")
    }

    #[test]
    fn arithmetic_and_emit() {
        let mut b = ProgramBuilder::new("arith");
        let x = b.input("x", InputBound::int(-100, 100));
        let v = b.var("v");
        b.assign(v, Expr::input(x).mul(Expr::lit(3)).add(Expr::lit(1)));
        b.emit(Expr::var(v));
        b.emit(Expr::var(v).rem(Expr::lit(5)));
        let p = b.build();
        let out = run_program(&p, &[Value::Int(7)], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::Int(22), Value::Int(2)]);
        assert!(out.trace.is_read_only());
    }

    #[test]
    fn get_put_and_trace() {
        let mut b = ProgramBuilder::new("gp");
        let t = b.table("t");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        let key = Expr::key(t, vec![Expr::input(id)]);
        b.get(v, key.clone());
        b.put(key, Expr::var(v).add(Expr::lit(1)));
        let p = b.build();

        let mut store = MapStore::new();
        let k = Key::of_ints(TableId(0), &[4]);
        store.put(&k, Value::Int(10));
        let out = run_program(&p, &[Value::Int(4)], &mut store);
        assert_eq!(store.peek(&k), Some(&Value::Int(11)));
        assert_eq!(out.trace.reads, vec![k.clone()]);
        assert_eq!(out.trace.writes, vec![k.clone()]);
        assert_eq!(out.trace.key_set(), vec![k]);
        assert!(!out.trace.is_read_only());
    }

    #[test]
    fn missing_key_reads_unit() {
        let mut b = ProgramBuilder::new("m");
        let t = b.table("t");
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::lit(1)]));
        b.emit(Expr::var(v).eq(Expr::Const(Value::Unit)));
        let p = b.build();
        let out = run_program(&p, &[], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::Bool(true)]);
    }

    #[test]
    fn branches_follow_condition() {
        let mut b = ProgramBuilder::new("br");
        let x = b.input("x", InputBound::int(0, 20));
        b.if_(
            Expr::input(x).gt(Expr::lit(10)),
            |b| b.emit(Expr::lit_str("big")),
            |b| b.emit(Expr::lit_str("small")),
        );
        let p = b.build();
        let out = run_program(&p, &[Value::Int(11)], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::str("big")]);
        let out = run_program(&p, &[Value::Int(10)], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::str("small")]);
    }

    #[test]
    fn loops_iterate_range() {
        let mut b = ProgramBuilder::new("loop");
        let n = b.input("n", InputBound::int(0, 10));
        let i = b.var("i");
        let acc = b.var("acc");
        b.assign(acc, Expr::lit(0));
        b.for_(i, Expr::lit(0), Expr::input(n), |b| {
            b.assign(acc, Expr::var(acc).add(Expr::var(i)));
        });
        b.emit(Expr::var(acc));
        let p = b.build();
        let out = run_program(&p, &[Value::Int(5)], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::Int(10)]); // 0+1+2+3+4
        let out = run_program(&p, &[Value::Int(0)], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::Int(0)]);
    }

    #[test]
    fn set_field_updates_record() {
        let mut b = ProgramBuilder::new("sf");
        let r = b.var("r");
        b.assign(r, Expr::MakeRecord(vec![Expr::lit(1), Expr::lit(2)]));
        b.set_field(r, 1, Expr::lit(9));
        b.emit(Expr::var(r).field(1));
        b.emit(Expr::var(r).field(0));
        let p = b.build();
        let out = run_program(&p, &[], &mut MapStore::new());
        assert_eq!(out.emitted, vec![Value::Int(9), Value::Int(1)]);
    }

    #[test]
    fn list_ops() {
        let mut b = ProgramBuilder::new("l");
        let xs = b.input("xs", InputBound::int_list(1, 5, 0, 100));
        b.emit(Expr::input(xs).len());
        b.emit(Expr::input(xs).index(Expr::lit(1)));
        let p = b.build();
        let out = run_program(
            &p,
            &[Value::list(vec![Value::Int(7), Value::Int(8)])],
            &mut MapStore::new(),
        );
        assert_eq!(out.emitted, vec![Value::Int(2), Value::Int(8)]);
    }

    #[test]
    fn input_bound_violation_detected() {
        let mut b = ProgramBuilder::new("bound");
        let _ = b.input("x", InputBound::int(0, 5));
        let p = b.build();
        let err = Interpreter::new().run(&p, &[Value::Int(6)], &mut MapStore::new()).unwrap_err();
        assert!(matches!(err, EvalError::InputOutOfBounds { index: 0, .. }));
        // Validation can be disabled.
        assert!(Interpreter::new()
            .without_input_validation()
            .run(&p, &[Value::Int(6)], &mut MapStore::new())
            .is_ok());
    }

    #[test]
    fn division_by_zero_errors() {
        let mut b = ProgramBuilder::new("div");
        let x = b.input("x", InputBound::int(0, 5));
        b.emit(Expr::lit(1).div(Expr::input(x)));
        let p = b.build();
        let err = Interpreter::new().run(&p, &[Value::Int(0)], &mut MapStore::new()).unwrap_err();
        assert_eq!(err, EvalError::DivisionByZero);
    }

    #[test]
    fn fuel_bounds_loops() {
        let mut b = ProgramBuilder::new("fuel");
        let i = b.var("i");
        b.for_(i, Expr::lit(0), Expr::lit(1000), |_| {});
        let p = b.build();
        let err = Interpreter::new()
            .with_loop_fuel(10)
            .run(&p, &[], &mut MapStore::new())
            .unwrap_err();
        assert_eq!(err, EvalError::LoopFuelExhausted);
    }

    #[test]
    fn type_errors_reported() {
        let mut b = ProgramBuilder::new("ty");
        b.emit(Expr::lit(1).and(Expr::lit_bool(true)));
        let p = b.build();
        assert!(matches!(
            Interpreter::new().run(&p, &[], &mut MapStore::new()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn string_concat() {
        assert_eq!(
            apply_bin(BinOp::Add, Value::str("a"), Value::str("b")).unwrap(),
            Value::str("ab")
        );
    }

    #[test]
    fn overflow_detected() {
        assert_eq!(
            apply_bin(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)),
            Err(EvalError::Overflow)
        );
        assert_eq!(
            apply_bin(BinOp::Mul, Value::Int(i64::MAX), Value::Int(2)),
            Err(EvalError::Overflow)
        );
    }
}
