//! Property tests of the concrete interpreter: determinism, trace
//! faithfulness, and store-effect correspondence.

use prognosticator_txir::{
    Expr, InputBound, Interpreter, Key, MapStore, ProgramBuilder, TableId, Value,
};
use proptest::prelude::*;

/// A tiny structured program: `n` counter increments over a bounded key
/// space, optionally guarded.
fn counter_program(guard: bool) -> prognosticator_txir::Program {
    let mut b = ProgramBuilder::new("counters");
    let t = b.table("t");
    let id = b.input("id", InputBound::int(0, 7));
    let n = b.input("n", InputBound::int(0, 5));
    let i = b.var("i");
    let v = b.var("v");
    b.for_(i, Expr::lit(0), Expr::input(n), |b| {
        let key = Expr::key(t, vec![Expr::input(id).add(Expr::var(i)).rem(Expr::lit(8))]);
        b.get(v, key.clone());
        if guard {
            b.if_(
                Expr::var(v).ge(Expr::lit(50)),
                |b| b.put(key.clone(), Expr::var(v).sub(Expr::lit(50))),
                |b| b.put(key.clone(), Expr::var(v).add(Expr::lit(1))),
            );
        } else {
            b.put(key, Expr::var(v).add(Expr::lit(1)));
        }
    });
    b.build()
}

fn populated() -> MapStore {
    (0..8)
        .map(|i| (Key::of_ints(TableId(0), &[i]), Value::Int(i * 10)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 200, ..ProptestConfig::default() })]

    /// Same program, inputs and store ⇒ identical outcome and final state.
    #[test]
    fn execution_is_deterministic(id in 0..8i64, n in 0..6i64, guard in any::<bool>()) {
        let program = counter_program(guard);
        let inputs = vec![Value::Int(id), Value::Int(n)];
        let interp = Interpreter::new();
        let mut s1 = populated();
        let mut s2 = populated();
        let o1 = interp.run(&program, &inputs, &mut s1).expect("runs");
        let o2 = interp.run(&program, &inputs, &mut s2).expect("runs");
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(s1, s2);
    }

    /// The trace's write keys are exactly the keys whose value changed or
    /// was (re)inserted; reads never mutate.
    #[test]
    fn trace_matches_store_effects(id in 0..8i64, n in 0..6i64, guard in any::<bool>()) {
        let program = counter_program(guard);
        let inputs = vec![Value::Int(id), Value::Int(n)];
        let before = populated();
        let mut after = before.clone();
        let out = Interpreter::new().run(&program, &inputs, &mut after).expect("runs");

        // Keys not in the write trace are untouched.
        for (key, value) in before.iter() {
            if !out.trace.writes.contains(key) {
                prop_assert_eq!(after.peek(key), Some(value), "unwritten key changed");
            }
        }
        // Every traced write names an existing post-state key.
        for key in &out.trace.writes {
            prop_assert!(after.peek(key).is_some());
        }
        // A loop of n iterations does exactly n reads and n writes here.
        prop_assert_eq!(out.trace.reads.len() as i64, n);
        prop_assert_eq!(out.trace.writes.len() as i64, n);
    }

    /// Read-only programs leave any store byte-identical.
    #[test]
    fn read_only_programs_do_not_mutate(id in 0..8i64) {
        let mut b = ProgramBuilder::new("rot");
        let t = b.table("t");
        let input = b.input("id", InputBound::int(0, 7));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(input)]));
        b.emit(Expr::var(v));
        let program = b.build();

        let before = populated();
        let mut after = before.clone();
        let out = Interpreter::new()
            .run(&program, &[Value::Int(id)], &mut after)
            .expect("runs");
        prop_assert!(out.trace.is_read_only());
        prop_assert_eq!(before, after);
        prop_assert_eq!(out.emitted, vec![Value::Int(id * 10)]);
    }

    /// Input validation accepts exactly the declared bounds.
    #[test]
    fn bounds_checked_iff_enabled(id in -4..12i64, n in -2..8i64) {
        let program = counter_program(false);
        let inputs = vec![Value::Int(id), Value::Int(n)];
        let in_bounds = (0..=7).contains(&id) && (0..=5).contains(&n);
        let strict = Interpreter::new().run(&program, &inputs, &mut populated());
        prop_assert_eq!(strict.is_ok(), in_bounds);
    }
}
