#![warn(missing_docs)]
//! Adaptive prediction: the policy half of Prognosticator's
//! profile-specialization loop.
//!
//! The offline symbolic-execution profiles (§III-B) are sound but often
//! loose — summarized loops predict their full static span, and dependent
//! transactions re-resolve the same indirect keys for every repeat
//! parameter. This crate closes the loop from runtime feedback back to
//! the profiles:
//!
//! * [`StatsCollector`] implements the engine's
//!   [`AdaptSink`](prognosticator_core::AdaptSink) seam and accumulates
//!   per-template runtime statistics from the execute path: observed vs
//!   predicted key counts, dependent-transaction pivot hit rates, the
//!   range span actually touched per table, indirect-key resolutions
//!   keyed by parameter fingerprint, and per-template false-lock-conflict
//!   attribution. The hot path is lock-free once a template is
//!   registered: all counters are atomics, and the registry map only
//!   takes its write lock on first sight of a template.
//! * [`Specializer`] turns those statistics into a candidate
//!   [`SpecializationSet`]: narrowed range templates, a bounded
//!   deterministic cache of resolved indirect keys for repeat parameters,
//!   and demotion of hopelessly over-approximating templates to
//!   coarser-but-cheaper table-granularity locking.
//!
//! **Determinism contract.** Nothing in this crate influences execution
//! directly. Statistics arrive in worker-scheduling order and may differ
//! across replicas; a candidate set only changes behavior after it is
//! committed to the replicated log (`LogRecord::Specialize`) and
//! installed at its log position — the same position on every replica,
//! with byte-identical content (the WAL codec encoding is canonical).

use parking_lot::{Mutex, RwLock};
use prognosticator_core::{AdaptSink, ObservedVerdict, TxObservation};
use prognosticator_symexec::{
    CachedPrediction, ProfileSpecialization, ProgSpecialization, SpecializationSet,
};
use prognosticator_txir::{TableId, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for the adaptation policy, all overridable through
/// `ADAPT_*` environment variables (see [`AdaptConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct AdaptConfig {
    /// Committed observations a template needs before the specializer
    /// considers it (`ADAPT_MIN_OBS`).
    pub min_observations: u64,
    /// Predicted/observed key-count ratio at which a template counts as
    /// over-approximating and becomes a narrowing candidate
    /// (`ADAPT_OVERAPPROX_RATIO`).
    pub over_approx_ratio: f64,
    /// Ratio at which a template that cannot be narrowed is demoted to
    /// table-granularity locking instead (`ADAPT_DEMOTE_RATIO`).
    pub demote_ratio: f64,
    /// Slack added above the observed range span when narrowing, so
    /// organic growth does not immediately trip the scope check
    /// (`ADAPT_NARROW_MARGIN`).
    pub narrow_margin: i64,
    /// Upper bound on cached indirect resolutions per template
    /// (`ADAPT_MAX_CACHE`).
    pub max_cache_entries: usize,
    /// Times an exact parameter fingerprint must repeat before its
    /// resolved prediction is worth caching (`ADAPT_MIN_REPEATS`).
    pub min_repeats: u64,
    /// Batches between specializer runs on the controller
    /// (`ADAPT_INTERVAL`).
    pub interval_batches: u64,
}

impl Default for AdaptConfig {
    fn default() -> Self {
        AdaptConfig {
            min_observations: 8,
            over_approx_ratio: 2.0,
            demote_ratio: 16.0,
            narrow_margin: 2,
            max_cache_entries: 64,
            min_repeats: 2,
            interval_batches: 4,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl AdaptConfig {
    /// Reads the `ADAPT_*` environment knobs, falling back to
    /// [`AdaptConfig::default`] per knob:
    /// `ADAPT_MIN_OBS`, `ADAPT_OVERAPPROX_RATIO`, `ADAPT_DEMOTE_RATIO`,
    /// `ADAPT_NARROW_MARGIN`, `ADAPT_MAX_CACHE`, `ADAPT_MIN_REPEATS`,
    /// `ADAPT_INTERVAL`.
    pub fn from_env() -> Self {
        let d = AdaptConfig::default();
        AdaptConfig {
            min_observations: env_u64("ADAPT_MIN_OBS", d.min_observations),
            over_approx_ratio: env_f64("ADAPT_OVERAPPROX_RATIO", d.over_approx_ratio),
            demote_ratio: env_f64("ADAPT_DEMOTE_RATIO", d.demote_ratio),
            narrow_margin: env_u64("ADAPT_NARROW_MARGIN", d.narrow_margin as u64) as i64,
            max_cache_entries: env_u64("ADAPT_MAX_CACHE", d.max_cache_entries as u64) as usize,
            min_repeats: env_u64("ADAPT_MIN_REPEATS", d.min_repeats),
            interval_batches: env_u64("ADAPT_INTERVAL", d.interval_batches),
        }
    }
}

/// One indirect resolution captured for a repeat parameter fingerprint.
struct RepeatEntry {
    count: u64,
    /// First full capture for this fingerprint (inputs + resolved
    /// prediction). `None` until a committed observation carried one.
    captured: Option<CachedPrediction>,
}

/// Per-template statistics. All hot-path fields are atomics; the maps
/// (span maxima, repeat captures) take a short mutex on the commit path
/// only.
#[derive(Default)]
struct TemplateStats {
    /// Committed observations.
    committed: AtomicU64,
    /// Pivot-validation failures (DT re-prepares).
    pivot_misses: AtomicU64,
    /// Scope-check failures (under-prediction re-prepares).
    scope_misses: AtomicU64,
    /// Sum of predicted key counts over committed observations.
    predicted_keys: AtomicU64,
    /// Sum of concretely touched key counts over committed observations.
    observed_keys: AtomicU64,
    /// Committed observations that carried pivot observations (DTs).
    pivot_predictions: AtomicU64,
    /// Predicted-but-contended-and-untouched keys (false conflicts).
    false_locked: AtomicU64,
    /// Predictions served from the indirect cache.
    cache_hits: AtomicU64,
    /// Keys dropped by active range narrowing.
    narrowed_dropped: AtomicU64,
    /// Per `(table, key part)` maximum integer part value concretely
    /// touched — the observed range span.
    touched_span: Mutex<BTreeMap<(TableId, usize), i64>>,
    /// As above, but for predicted keys — the static range span.
    predicted_span: Mutex<BTreeMap<(TableId, usize), i64>>,
    /// Indirect resolutions keyed by parameter fingerprint.
    repeats: Mutex<HashMap<u64, RepeatEntry>>,
}

/// A read-only snapshot of one template's statistics, for the
/// specializer, benches, and diagnostics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TemplateSnapshot {
    /// Program (template) name.
    pub program: String,
    /// Committed observations.
    pub committed: u64,
    /// Pivot-validation failures.
    pub pivot_misses: u64,
    /// Scope-check failures.
    pub scope_misses: u64,
    /// Sum of predicted key counts.
    pub predicted_keys: u64,
    /// Sum of touched key counts.
    pub observed_keys: u64,
    /// Committed observations that carried pivot observations.
    pub pivot_predictions: u64,
    /// False-conflict attribution: predicted, contended, never touched.
    pub false_locked: u64,
    /// Indirect-cache hits.
    pub cache_hits: u64,
    /// Keys dropped by range narrowing.
    pub narrowed_dropped: u64,
}

impl TemplateSnapshot {
    /// Predicted-to-observed key ratio (1.0 = exact; >1 over-approximates).
    pub fn over_approx_ratio(&self) -> f64 {
        if self.observed_keys == 0 {
            if self.predicted_keys == 0 { 1.0 } else { f64::INFINITY }
        } else {
            self.predicted_keys as f64 / self.observed_keys as f64
        }
    }

    /// Fraction of dependent predictions whose pivots held at execution.
    pub fn pivot_hit_rate(&self) -> f64 {
        let attempts = self.pivot_predictions + self.pivot_misses;
        if attempts == 0 {
            1.0
        } else {
            self.pivot_predictions as f64 / attempts as f64
        }
    }
}

/// Lock-free-on-the-hot-path runtime-statistics collector; the engine
/// side of the adaptation loop. Attach with `Engine::set_adapt_sink`.
pub struct StatsCollector {
    config: AdaptConfig,
    templates: RwLock<HashMap<String, Arc<TemplateStats>>>,
    batches: AtomicU64,
}

impl StatsCollector {
    /// Creates a collector with the given policy knobs.
    pub fn new(config: AdaptConfig) -> Self {
        StatsCollector { config, templates: RwLock::new(HashMap::new()), batches: AtomicU64::new(0) }
    }

    /// The policy knobs this collector was built with.
    pub fn config(&self) -> &AdaptConfig {
        &self.config
    }

    /// Batches observed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total false-lock conflicts attributed across all templates.
    pub fn false_conflicts(&self) -> u64 {
        self.templates
            .read()
            .values()
            .map(|t| t.false_locked.load(Ordering::Relaxed))
            .sum()
    }

    fn stats_for(&self, program: &str) -> Arc<TemplateStats> {
        if let Some(stats) = self.templates.read().get(program) {
            return Arc::clone(stats);
        }
        let mut map = self.templates.write();
        Arc::clone(map.entry(program.to_owned()).or_default())
    }

    /// Read-only snapshots of every observed template, name-ordered.
    pub fn snapshot(&self) -> Vec<TemplateSnapshot> {
        let map = self.templates.read();
        let mut rows: Vec<TemplateSnapshot> = map
            .iter()
            .map(|(name, t)| TemplateSnapshot {
                program: name.clone(),
                committed: t.committed.load(Ordering::Relaxed),
                pivot_misses: t.pivot_misses.load(Ordering::Relaxed),
                scope_misses: t.scope_misses.load(Ordering::Relaxed),
                predicted_keys: t.predicted_keys.load(Ordering::Relaxed),
                observed_keys: t.observed_keys.load(Ordering::Relaxed),
                pivot_predictions: t.pivot_predictions.load(Ordering::Relaxed),
                false_locked: t.false_locked.load(Ordering::Relaxed),
                cache_hits: t.cache_hits.load(Ordering::Relaxed),
                narrowed_dropped: t.narrowed_dropped.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| a.program.cmp(&b.program));
        rows
    }

    fn record_spans(stats: &TemplateStats, obs: &TxObservation) {
        let mut touched = stats.touched_span.lock();
        for key in &obs.touched {
            for (part, value) in key.parts.iter().enumerate() {
                if let Value::Int(v) = value {
                    let slot = touched.entry((key.table, part)).or_insert(i64::MIN);
                    *slot = (*slot).max(*v);
                }
            }
        }
        drop(touched);
        if let Some(prediction) = &obs.prediction {
            let mut predicted = stats.predicted_span.lock();
            for key in prediction.reads.iter().chain(prediction.writes.iter()) {
                for (part, value) in key.parts.iter().enumerate() {
                    if let Value::Int(v) = value {
                        let slot = predicted.entry((key.table, part)).or_insert(i64::MIN);
                        *slot = (*slot).max(*v);
                    }
                }
            }
        }
    }

    fn record_repeat(&self, stats: &TemplateStats, obs: &TxObservation) {
        let mut repeats = stats.repeats.lock();
        let len = repeats.len();
        let entry = match repeats.get_mut(&obs.fingerprint) {
            Some(entry) => entry,
            // Bound the capture map: beyond 4x the cache budget, stop
            // registering new fingerprints (existing ones keep counting).
            None if len >= self.config.max_cache_entries.saturating_mul(4) => return,
            None => repeats
                .entry(obs.fingerprint)
                .or_insert(RepeatEntry { count: 0, captured: None }),
        };
        entry.count += 1;
        if entry.captured.is_none() {
            if let Some(prediction) = &obs.prediction {
                entry.captured = Some(CachedPrediction {
                    fingerprint: obs.fingerprint,
                    inputs: obs.inputs.clone(),
                    prediction: prediction.clone(),
                });
            }
        }
    }
}

impl AdaptSink for StatsCollector {
    fn observe_tx(&self, obs: TxObservation) {
        let reg = prognosticator_obs::Registry::global();
        reg.counter("adapt.observations").inc();
        let stats = self.stats_for(&obs.program);
        match obs.verdict {
            ObservedVerdict::Committed => {
                stats.committed.fetch_add(1, Ordering::Relaxed);
                stats.predicted_keys.fetch_add(obs.predicted_keys, Ordering::Relaxed);
                stats.observed_keys.fetch_add(obs.observed_keys, Ordering::Relaxed);
                stats.false_locked.fetch_add(obs.false_locked, Ordering::Relaxed);
                if obs.false_locked > 0 {
                    reg.counter("adapt.false_conflicts").add(obs.false_locked);
                }
                if obs.cache_hit {
                    stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                    reg.counter("adapt.cache_hits").inc();
                }
                stats.narrowed_dropped.fetch_add(obs.narrowed_dropped, Ordering::Relaxed);
                Self::record_spans(&stats, &obs);
                if obs.pivot_count > 0 {
                    stats.pivot_predictions.fetch_add(1, Ordering::Relaxed);
                    self.record_repeat(&stats, &obs);
                }
            }
            ObservedVerdict::PivotMiss => {
                stats.pivot_misses.fetch_add(1, Ordering::Relaxed);
                reg.counter("adapt.pivot_misses").inc();
            }
            ObservedVerdict::ScopeMiss => {
                stats.scope_misses.fetch_add(1, Ordering::Relaxed);
                reg.counter("adapt.scope_misses").inc();
            }
        }
    }

    fn observe_batch(&self, _batch_index: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
    }
}

/// The adaptation policy: turns collected statistics into a candidate
/// [`SpecializationSet`], to be committed through the replicated log by
/// whoever drives the loop (the pipeline's controller).
pub struct Specializer {
    config: AdaptConfig,
}

impl Specializer {
    /// Creates a specializer with the given policy knobs.
    pub fn new(config: AdaptConfig) -> Self {
        Specializer { config }
    }

    /// Proposes the next specialization set given current statistics, or
    /// `None` when nothing would change. The proposal's version is
    /// `current.version + 1`; its content is a pure function of the
    /// collector snapshot, and only becomes active once committed.
    pub fn propose(
        &self,
        collector: &StatsCollector,
        current: &SpecializationSet,
    ) -> Option<SpecializationSet> {
        let mut programs: BTreeMap<String, ProgSpecialization> = BTreeMap::new();
        let templates = collector.templates.read();
        let mut names: Vec<&String> = templates.keys().collect();
        names.sort();
        for name in names {
            let stats = &templates[name];
            let committed = stats.committed.load(Ordering::Relaxed);
            if committed < self.config.min_observations {
                // Keep whatever the current set already holds: too little
                // signal to revise an active specialization.
                if let Some(existing) = current.for_program(name) {
                    programs.insert(name.clone(), existing.clone());
                }
                continue;
            }
            let mut specs = Vec::new();
            if let Some(cache) = self.cache_candidate(stats) {
                specs.push(cache);
            }
            let predicted = stats.predicted_keys.load(Ordering::Relaxed);
            let observed = stats.observed_keys.load(Ordering::Relaxed);
            let ratio = if observed == 0 {
                if predicted == 0 { 1.0 } else { f64::INFINITY }
            } else {
                predicted as f64 / observed as f64
            };
            if ratio >= self.config.over_approx_ratio {
                match self.narrow_candidates(stats) {
                    narrows if !narrows.is_empty() => specs.extend(narrows),
                    _ if ratio >= self.config.demote_ratio => {
                        specs.push(ProfileSpecialization::DemoteToTables);
                    }
                    _ => {}
                }
            }
            if !specs.is_empty() {
                programs.insert(name.clone(), ProgSpecialization { specs });
            }
        }
        drop(templates);
        if programs == current.programs {
            return None;
        }
        let next = SpecializationSet { version: current.version + 1, programs };
        prognosticator_obs::Registry::global().counter("adapt.proposals").inc();
        Some(next)
    }

    /// Bounded deterministic indirect cache: fingerprints seen at least
    /// `min_repeats` times, capped at `max_cache_entries`, ordered by
    /// (fingerprint, inputs) so the candidate is a canonical value.
    fn cache_candidate(&self, stats: &TemplateStats) -> Option<ProfileSpecialization> {
        let repeats = stats.repeats.lock();
        let mut entries: Vec<CachedPrediction> = repeats
            .values()
            .filter(|e| e.count >= self.config.min_repeats)
            .filter_map(|e| e.captured.clone())
            .collect();
        drop(repeats);
        if entries.is_empty() {
            return None;
        }
        entries.sort_by(|a, b| {
            a.fingerprint.cmp(&b.fingerprint).then_with(|| a.inputs.cmp(&b.inputs))
        });
        entries.truncate(self.config.max_cache_entries);
        Some(ProfileSpecialization::IndirectCache { entries })
    }

    /// Narrowing candidates: `(table, part)` pairs whose predicted span
    /// max exceeds the touched span max by more than the margin.
    fn narrow_candidates(&self, stats: &TemplateStats) -> Vec<ProfileSpecialization> {
        let touched = stats.touched_span.lock();
        let predicted = stats.predicted_span.lock();
        let mut narrows = Vec::new();
        for (&(table, part), &pred_max) in predicted.iter() {
            let touched_max = touched.get(&(table, part)).copied().unwrap_or(i64::MIN);
            if touched_max == i64::MIN {
                continue;
            }
            let hi_cap = touched_max.saturating_add(1).saturating_add(self.config.narrow_margin);
            if pred_max >= hi_cap {
                narrows.push(ProfileSpecialization::RangeNarrow { table, part, hi_cap });
            }
        }
        narrows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_core::TxObservation;
    use prognosticator_symexec::{fingerprint_inputs, Prediction};
    use prognosticator_txir::Key;

    fn committed_obs(program: &str, predicted: Vec<Key>, touched: Vec<Key>) -> TxObservation {
        TxObservation {
            program: program.to_owned(),
            fingerprint: fingerprint_inputs(&[Value::Int(1)]),
            inputs: vec![Value::Int(1)],
            verdict: ObservedVerdict::Committed,
            predicted_keys: predicted.len() as u64,
            observed_keys: touched.len() as u64,
            pivot_count: 0,
            false_locked: 0,
            cache_hit: false,
            narrowed_dropped: 0,
            touched,
            prediction: Some(Prediction {
                reads: Vec::new(),
                writes: predicted,
                pivot_observations: Vec::new(),
            }),
        }
    }

    fn span(table: u16, n: i64) -> Vec<Key> {
        (0..n).map(|i| Key::of_ints(TableId(table), &[i])).collect()
    }

    #[test]
    fn over_approximating_template_gets_narrowed() {
        let collector = StatsCollector::new(AdaptConfig::default());
        // Predicts 32 keys per tx, touches the first 4.
        for _ in 0..10 {
            collector.observe_tx(committed_obs("scan", span(1, 32), span(1, 4)));
        }
        let spec = Specializer::new(AdaptConfig::default());
        let set = spec.propose(&collector, &SpecializationSet::empty()).expect("proposes");
        assert_eq!(set.version, 1);
        let prog = set.for_program("scan").expect("scan specialized");
        assert!(prog.narrows());
        let hi_cap = prog
            .specs
            .iter()
            .find_map(|s| match s {
                ProfileSpecialization::RangeNarrow { table, part, hi_cap } => {
                    assert_eq!((*table, *part), (TableId(1), 0));
                    Some(*hi_cap)
                }
                _ => None,
            })
            .expect("range narrow");
        // Touched max 3 + 1 + margin 2.
        assert_eq!(hi_cap, 6);
    }

    #[test]
    fn exact_templates_are_left_alone_and_proposal_converges() {
        let collector = StatsCollector::new(AdaptConfig::default());
        for _ in 0..10 {
            collector.observe_tx(committed_obs("exact", span(0, 2), span(0, 2)));
        }
        let spec = Specializer::new(AdaptConfig::default());
        assert!(
            spec.propose(&collector, &SpecializationSet::empty()).is_none(),
            "an exact template must not trigger a proposal"
        );
    }

    #[test]
    fn repeat_indirect_parameters_get_cached() {
        let collector = StatsCollector::new(AdaptConfig::default());
        let inputs = vec![Value::Int(7)];
        let pred = Prediction {
            reads: vec![Key::of_ints(TableId(2), &[7])],
            writes: vec![Key::of_ints(TableId(2), &[7])],
            pivot_observations: vec![(Key::of_ints(TableId(1), &[7]), Value::Int(7))],
        };
        for _ in 0..10 {
            collector.observe_tx(TxObservation {
                program: "follow".into(),
                fingerprint: fingerprint_inputs(&inputs),
                inputs: inputs.clone(),
                verdict: ObservedVerdict::Committed,
                predicted_keys: 2,
                observed_keys: 2,
                pivot_count: 1,
                false_locked: 0,
                cache_hit: false,
                narrowed_dropped: 0,
                touched: pred.key_set(),
                prediction: Some(pred.clone()),
            });
        }
        let spec = Specializer::new(AdaptConfig::default());
        let set = spec.propose(&collector, &SpecializationSet::empty()).expect("proposes");
        let prog = set.for_program("follow").expect("follow specialized");
        let hit = prog.cached(fingerprint_inputs(&inputs), &inputs).expect("cached");
        assert_eq!(hit.prediction, pred);
    }

    #[test]
    fn pivot_hit_rate_and_ratio_reflect_observations() {
        let collector = StatsCollector::new(AdaptConfig::default());
        collector.observe_tx(committed_obs("t", span(0, 4), span(0, 2)));
        collector.observe_tx(TxObservation {
            verdict: ObservedVerdict::PivotMiss,
            ..committed_obs("t", Vec::new(), Vec::new())
        });
        let rows = collector.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].committed, 1);
        assert_eq!(rows[0].pivot_misses, 1);
        assert!((rows[0].over_approx_ratio() - 2.0).abs() < f64::EPSILON);
        assert!((rows[0].pivot_hit_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn env_knobs_override_defaults() {
        // Serialized by cargo's per-process test env: set, read, unset.
        std::env::set_var("ADAPT_MIN_OBS", "3");
        std::env::set_var("ADAPT_NARROW_MARGIN", "9");
        let config = AdaptConfig::from_env();
        std::env::remove_var("ADAPT_MIN_OBS");
        std::env::remove_var("ADAPT_NARROW_MARGIN");
        assert_eq!(config.min_observations, 3);
        assert_eq!(config.narrow_margin, 9);
        assert_eq!(config.min_repeats, AdaptConfig::default().min_repeats);
    }

    #[test]
    fn false_conflicts_accumulate_per_template() {
        let collector = StatsCollector::new(AdaptConfig::default());
        let mut obs = committed_obs("hot", span(0, 4), span(0, 4));
        obs.false_locked = 3;
        collector.observe_tx(obs);
        assert_eq!(collector.false_conflicts(), 3);
        assert_eq!(collector.snapshot()[0].false_locked, 3);
    }
}
