//! Chaos-campaign oracle: the full pipeline plus retrying client under a
//! seeded, eventually-healing fault schedule.
//!
//! Each run drives a [`ClientSession`] over a live [`Pipeline`] (three
//! consensus nodes, a replica fleet, bounded admission) for a fixed
//! number of submission rounds while a [`ChaosPlan`] injects faults —
//! leader isolation, asymmetric partitions, replica crash-restarts,
//! delay spikes, duplicate/reorder storms, overload bursts, and WAL disk
//! faults. Every plan heals by construction
//! ([`ChaosPlan::heal_after`]), after which the harness drains the
//! session and checks four oracles:
//!
//! 1. **Terminal outcomes** — every submitted request resolved to exactly
//!    one of Committed / Aborted / Rejected; none is left in limbo.
//! 2. **Liveness after healing** — requests submitted after the heal
//!    point must reach an engine-terminal outcome (Committed or Aborted);
//!    a post-heal `Rejected` means the service never recovered.
//! 3. **Determinism** — the live replicas' digests agree (the pipeline
//!    asserts this on every sync), and replaying the voided-filtered
//!    committed stream through fresh replicas at every configured worker
//!    count reproduces the live digest byte-for-byte.
//! 4. **Exactly-once at the log** — no committed proposal id appears
//!    twice on any consensus node, despite quarantine resubmissions
//!    riding fresh proposal ids and retries riding deduplicated ones.
//!
//! On a violation the harness dumps the flight recorders
//! ([`crate::report_oracle_failure`]), shrinks the committed stream with
//! [`crate::differential::shrink_stream`] when the failure is
//! replayable, and writes a `chaos-<plan>-<seed>.reproducer.json` next
//! to the other testkit artifacts.

use crate::differential::shrink_stream;
use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator::{ClientConfig, ClientOutcome, ClientSession, Pipeline, PipelineConfig};
use prognosticator_bench::json::Json;
use prognosticator_consensus::{DiskFault as WalDiskFault, NetConfig, RetryPolicy};
use prognosticator_core::baselines;
use prognosticator_core::{ChaosEvent, ChaosPlan, DiskFaultKind, Replica, TxRequest};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One chaos-campaign cell: a (workload, plan, seed) triple plus scale
/// knobs.
#[derive(Debug, Clone)]
pub struct ChaosOracleConfig {
    /// Workload generating the request stream.
    pub workload: WorkloadKind,
    /// Chaos plan name (one of [`prognosticator_core::PLAN_NAMES`]).
    pub plan: String,
    /// Seed for the plan, the request stream, and the simulated network.
    pub seed: u64,
    /// Submission rounds; the plan heals at round `rounds * 2 / 3`.
    pub rounds: usize,
    /// Requests submitted per round (overload bursts multiply this).
    pub round_size: usize,
    /// Replicas in the live fleet.
    pub replicas: usize,
    /// Worker counts for the determinism replay legs.
    pub worker_counts: Vec<usize>,
    /// Shard counts for the determinism replay legs: every (worker ×
    /// shard) leg must reproduce the live digest (DESIGN.md §3.5).
    pub shard_counts: Vec<usize>,
    /// Where `chaos-*.reproducer.json` files are written on violation.
    pub artifact_dir: PathBuf,
}

impl ChaosOracleConfig {
    /// The acceptance-bar cell: SmallBank, 12 rounds of 6 requests, two
    /// live replicas, replay at {1, 2, 4} workers, artifacts under
    /// `target/testkit`.
    pub fn standard(plan: &str, seed: u64) -> Self {
        let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        ChaosOracleConfig {
            workload: WorkloadKind::SmallBank,
            plan: plan.to_string(),
            seed,
            rounds: 12,
            round_size: 6,
            replicas: 2,
            worker_counts: vec![1, 2, 4],
            shard_counts: vec![1],
            artifact_dir: target.join("testkit"),
        }
    }
}

/// What one surviving chaos campaign established.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The plan that ran.
    pub plan: String,
    /// Its seed.
    pub seed: u64,
    /// Requests submitted (including overload bursts).
    pub submitted: usize,
    /// Requests that committed.
    pub committed: usize,
    /// Requests that executed and deterministically aborted.
    pub aborted: usize,
    /// Requests terminally rejected (admission deadline or retry budget).
    pub rejected: usize,
    /// Client-level quarantine resubmissions.
    pub client_retries: u64,
    /// Pipeline-level load-shed / bounded-admission refusals.
    pub shed_requests: u64,
    /// Batches proposed while the fleet was degraded or on probation.
    pub degraded_batches: u64,
    /// Batches that exhausted consensus retries and were quarantined.
    pub quarantined_batches: usize,
    /// Batches in the live committed (voided-filtered) stream.
    pub live_batches: usize,
    /// Chaos events the plan actually injected.
    pub events_injected: usize,
}

/// A chaos-oracle violation, with its reproducer artifact.
#[derive(Debug)]
pub struct ChaosViolation {
    /// Which oracle failed and how.
    pub description: String,
    /// Where the reproducer JSON was written (empty if writing failed).
    pub reproducer: PathBuf,
}

impl std::fmt::Display for ChaosViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chaos violation: {} (reproducer: {})", self.description, self.reproducer.display())
    }
}

fn pipeline_config(config: &ChaosOracleConfig) -> PipelineConfig {
    PipelineConfig {
        batch_window: Duration::from_millis(5),
        batch_cap: config.round_size,
        scheduler: baselines::mq_mf(2),
        seed: config.seed,
        consensus_timeout: Duration::from_millis(500),
        retry: RetryPolicy {
            max_attempts: 3,
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
        },
        max_pending: Some(config.round_size * 2),
        // Never compact: the determinism leg replays the full committed
        // stream from node 0.
        snapshot_interval: None,
        ..PipelineConfig::default()
    }
}

/// Applies one chaos event to the live system. Returns `true` when the
/// event changed network state that [`heal_everything`] must undo.
fn apply_event(session: &mut ClientSession, event: &ChaosEvent, base_net: &NetConfig) -> bool {
    let n = session.pipeline().cluster().len();
    match *event {
        ChaosEvent::IsolateLeader => {
            if let Some(leader) = session.pipeline().cluster().leader() {
                session.pipeline().cluster().net().isolate(leader);
                return true;
            }
            false
        }
        ChaosEvent::AsymmetricPartition { from, to } => {
            let (from, to) = (from % n, to % n);
            if from != to {
                session.pipeline().cluster().net().partition_one_way(from, to);
                return true;
            }
            false
        }
        ChaosEvent::RestartReplica { replica } => {
            let idx = replica % session.pipeline().replica_count();
            session.pipeline_mut().restart_replica(idx);
            false
        }
        ChaosEvent::DelaySpike { extra } => {
            let cfg = NetConfig {
                min_delay: base_net.min_delay + extra,
                max_delay: base_net.max_delay + extra,
                ..base_net.clone()
            };
            session.pipeline().cluster().net().set_config(cfg);
            true
        }
        ChaosEvent::MessageStorm => {
            let cfg = NetConfig {
                dup_prob: 1.0,
                reorder_prob: 0.5,
                reorder_window: Duration::from_millis(2),
                ..base_net.clone()
            };
            session.pipeline().cluster().net().set_config(cfg);
            true
        }
        // Overload bursts are applied by the round loop (it submits
        // `multiplier` times the round size); nothing to do here.
        ChaosEvent::OverloadBurst { .. } => false,
        ChaosEvent::DiskFault { node, kind } => {
            let fault = match kind {
                DiskFaultKind::TornFinalFrame => WalDiskFault::TornFinalFrame,
                DiskFaultKind::FailedFsync => WalDiskFault::FailedFsync,
                DiskFaultKind::PartialSnapshot => WalDiskFault::PartialSnapshot,
            };
            session.pipeline().cluster().arm_disk_fault(node % n, fault);
            false
        }
        // Wire faults target the network front-end; this in-process
        // harness has no sockets, so they read as quiet rounds here. The
        // wire fuzzer ([`crate::wire`]) is the harness that reacts.
        ChaosEvent::WireFault { .. } => false,
    }
}

/// Restores the network to its pre-chaos state: every directed partition
/// healed, every per-link override cleared, the global config reset.
fn heal_everything(session: &ClientSession, base_net: &NetConfig) {
    let net = session.pipeline().cluster().net();
    net.heal_all();
    net.clear_link_overrides();
    net.set_config(base_net.clone());
}

/// Replays `stream` through a fresh replica with `workers` workers over
/// `shards` key-space shards and returns its final digest. Shared with
/// the wire fuzzer ([`crate::wire`]), whose determinism leg replays the
/// committed stream a served campaign produced.
pub(crate) fn replay_digest(
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    workers: usize,
    shards: usize,
) -> u64 {
    let mut replica = Replica::with_store(
        prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.execute_stream(stream.to_vec(), 1);
    let digest = replica.state_digest();
    // Replay legs double as isolation checks whenever recording is on.
    crate::isolation::assert_replica_serializable(&replica, "chaos replay");
    replica.shutdown();
    digest
}

fn violation(
    config: &ChaosOracleConfig,
    description: String,
    stream: &[Vec<TxRequest>],
    workload: &TestWorkload,
) -> Box<ChaosViolation> {
    crate::report_oracle_failure("chaos", &description, "chaos-violation");
    let batches: Vec<Json> = stream
        .iter()
        .map(|batch| {
            Json::Arr(
                batch
                    .iter()
                    .map(|tx| {
                        Json::obj(vec![
                            (
                                "program",
                                Json::Str(
                                    workload
                                        .catalog()
                                        .entry(tx.program)
                                        .program()
                                        .name()
                                        .to_string(),
                                ),
                            ),
                            ("prog_id", Json::Int(tx.program.0 as i64)),
                            (
                                "inputs",
                                Json::Arr(
                                    tx.inputs.iter().map(|v| Json::Str(format!("{v:?}"))).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    let json = Json::obj(vec![
        ("oracle", Json::Str("chaos".to_string())),
        ("workload", Json::Str(config.workload.name().to_string())),
        ("plan", Json::Str(config.plan.clone())),
        ("seed", Json::Int(config.seed as i64)),
        ("rounds", Json::Int(config.rounds as i64)),
        ("round_size", Json::Int(config.round_size as i64)),
        (
            "worker_counts",
            Json::Arr(config.worker_counts.iter().map(|&w| Json::Int(w as i64)).collect()),
        ),
        (
            "shard_counts",
            Json::Arr(config.shard_counts.iter().map(|&s| Json::Int(s as i64)).collect()),
        ),
        ("violation", Json::Str(description.clone())),
        ("committed_stream", Json::Arr(batches)),
    ]);
    let path =
        config.artifact_dir.join(format!("chaos-{}-{}.reproducer.json", config.plan, config.seed));
    let written = std::fs::create_dir_all(&config.artifact_dir)
        .and_then(|()| std::fs::write(&path, json.render()))
        .is_ok();
    Box::new(ChaosViolation {
        description,
        reproducer: if written { path } else { PathBuf::new() },
    })
}

/// Runs one chaos campaign end to end.
///
/// # Errors
/// Returns the first [`ChaosViolation`] (with its reproducer artifact)
/// when any oracle fails.
///
/// # Panics
/// Panics if the plan name is unknown, or on replica divergence *within*
/// the live run (the pipeline itself asserts digest equality on sync).
pub fn run_chaos(config: &ChaosOracleConfig) -> Result<ChaosReport, Box<ChaosViolation>> {
    let horizon = config.rounds as u64;
    let plan = ChaosPlan::by_name(&config.plan, config.seed, horizon)
        .unwrap_or_else(|| panic!("unknown chaos plan: {}", config.plan));
    let workload = TestWorkload::new(config.workload);
    let pipe_config = pipeline_config(config);
    let base_net = pipe_config.net.clone();

    let populate = {
        let kind = config.workload;
        Arc::new(move |store: &prognosticator_storage::EpochStore| {
            TestWorkload::new(kind).populate_store(store);
        })
    };
    let pipeline = Pipeline::new(
        Arc::clone(workload.catalog()),
        pipe_config,
        config.replicas,
        populate,
    )
    .expect("chaos pipeline boots");
    let mut session = ClientSession::new(
        pipeline,
        ClientConfig { seed: config.seed, deadline: Duration::from_secs(3), ..ClientConfig::default() },
    );

    let mut rng = prognosticator_workloads::DeterministicRng::new(config.seed ^ 0xC4A0);
    let mut events_injected = 0usize;
    let mut transient_net_change = false;
    let mut post_heal_first: Option<usize> = None;

    for round in 0..horizon {
        if round == plan.heal_after() {
            heal_everything(&session, &base_net);
            session
                .pipeline()
                .cluster()
                .wait_for_leader(Duration::from_secs(10))
                .expect("a leader re-emerges after healing");
            post_heal_first = Some(session.submitted());
        }
        let mut burst = 1usize;
        for event in plan.events_at(round) {
            events_injected += 1;
            if let ChaosEvent::OverloadBurst { multiplier } = event {
                burst = burst.max(multiplier as usize);
            }
            transient_net_change |= apply_event(&mut session, &event, &base_net);
        }
        for req in workload.gen_batch(&mut rng, config.round_size * burst) {
            session.submit(req);
        }
        // Delay spikes and storms last one round; partitions persist
        // until the heal point.
        if transient_net_change {
            session.pipeline().cluster().net().set_config(base_net.clone());
            transient_net_change = false;
        }
    }
    if post_heal_first.is_none() {
        // heal_after == horizon only for degenerate round counts; heal
        // explicitly so the drain below runs on a healthy cluster.
        heal_everything(&session, &base_net);
        post_heal_first = Some(session.submitted());
    }
    let report = session.finish();

    // Oracle 1: every request reached exactly one terminal outcome.
    if report.unresolved != 0 {
        let stream = session.pipeline().live_committed(0);
        return Err(violation(
            config,
            format!("{} of {} requests never resolved", report.unresolved, report.outcomes.len()),
            &stream,
            &workload,
        ));
    }

    // Oracle 2: liveness after healing — post-heal requests must reach an
    // engine-terminal outcome.
    let first = post_heal_first.unwrap_or(report.outcomes.len());
    for (i, outcome) in report.outcomes.iter().enumerate().skip(first) {
        if let Some(ClientOutcome::Rejected { reason, .. }) = outcome {
            let stream = session.pipeline().live_committed(0);
            return Err(violation(
                config,
                format!("post-heal request {i} was rejected ({reason}): service never recovered"),
                &stream,
                &workload,
            ));
        }
    }

    // Oracle 4 (cheap, do it before the replay legs): no proposal id
    // committed twice on any node.
    let cluster = session.pipeline().cluster();
    for node in 0..cluster.len() {
        let mut seen = std::collections::HashSet::new();
        for entry in cluster.committed(node) {
            if entry.id != 0 && !seen.insert(entry.id) {
                let stream = session.pipeline().live_committed(0);
                return Err(violation(
                    config,
                    format!("proposal id {} committed twice on node {node}", entry.id),
                    &stream,
                    &workload,
                ));
            }
        }
    }

    // Oracle 3: determinism. Live digests agree (sync() would have
    // panicked otherwise), and replaying the committed stream at every
    // (worker × shard) count reproduces them.
    let stream = session.pipeline().live_committed(0);
    let live = session.pipeline().digests()[0];
    for &workers in &config.worker_counts {
        for &shards in &config.shard_counts {
            let replayed = replay_digest(&workload, &stream, workers, shards);
            if replayed != live {
                let description = format!(
                    "replay at {workers} workers / {shards} shards diverged: live digest \
                     {live:#x}, replayed {replayed:#x}"
                );
                // Delta-debug: shrink to a minimal stream on which some
                // configured leg still disagrees with 1 worker / 1 shard.
                let worker_counts = config.worker_counts.clone();
                let shard_counts = config.shard_counts.clone();
                let wl = &workload;
                let shrunk = shrink_stream(stream.clone(), &mut |candidate| {
                    let reference = replay_digest(wl, candidate, 1, 1);
                    worker_counts.iter().any(|&w| {
                        shard_counts
                            .iter()
                            .any(|&s| replay_digest(wl, candidate, w, s) != reference)
                    })
                });
                return Err(violation(config, description, &shrunk, &workload));
            }
        }
    }

    let outcomes = &report.outcomes;
    let count = |f: &dyn Fn(&ClientOutcome) -> bool| {
        outcomes.iter().flatten().filter(|o| f(o)).count()
    };
    Ok(ChaosReport {
        plan: config.plan.clone(),
        seed: config.seed,
        submitted: outcomes.len(),
        committed: count(&|o| matches!(o, ClientOutcome::Committed)),
        aborted: count(&|o| matches!(o, ClientOutcome::Aborted { .. })),
        rejected: count(&|o| matches!(o, ClientOutcome::Rejected { .. })),
        client_retries: report.retries,
        shed_requests: session.pipeline().shed_requests(),
        degraded_batches: session.pipeline().degraded_batches(),
        quarantined_batches: session.pipeline().quarantined().len(),
        live_batches: stream.len(),
        events_injected,
    })
}
