//! Polygraph-style isolation checker: an *independent* serializability
//! oracle over flight-recorder traces.
//!
//! The engine claims every batch executes as if its committed
//! transactions ran serially in *some* order consistent with batch
//! boundaries. This module re-derives that claim from evidence the
//! engine records as it runs — the per-transaction read/write version
//! provenance in the flight recorder
//! ([`Event::TxRead`] / [`Event::TxWrite`]) — rather than trusting the
//! engine's own digests. From a trace it builds the classic dependency
//! graph:
//!
//! * **WR** (read-from): the writer of version `v` precedes every
//!   transaction that observed `v`;
//! * **WW** (version order): the writer of `v` precedes the writer of
//!   the next installed version of the same key;
//! * **RW** (anti-dependency): a reader of `v` precedes the writer of
//!   the version that superseded `v`;
//!
//! plus the deterministic-database batch constraint (every transaction
//! of batch `b` precedes every transaction of batch `b' > b`), and
//! certifies acyclicity. Because the batch constraint totally orders
//! the batches, a cycle exists **iff** a data edge points into an
//! *earlier* batch, or a cycle closes *within* one batch — so the
//! checker tests the two cases separately and shrinks any hit to a
//! shortest-cycle witness.
//!
//! Three entry points:
//!
//! * [`check_trace`] — the pure checker: events in, [`Verdict`] out.
//! * [`inject_violation`] — a mutation harness that corrupts healthy
//!   traces in three realistic ways (swapped commit order, stale
//!   snapshot read, dropped lock release) to prove the checker rejects
//!   bad histories.
//! * [`run_isolation`] — the suite runner: records fresh traces across
//!   worker counts and writes a `.reproducer.json` cycle witness on
//!   violation. The other oracles call
//!   [`assert_replica_serializable`] opportunistically, so every suite
//!   doubles as an isolation check whenever recording is on.
//!
//! Version numbers are per-key and monotone
//! (`prognosticator_storage::VersionChain`); reads of versions the
//! trace never saw written (initial population, pre-trace state) have
//! no recorded writer and are ordered before everything, contributing
//! no edge. Aborted transactions never flush their buffers and are
//! excluded from the graph.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator_bench::json::Json;
use prognosticator_core::{baselines, Replica, TxOutcome, TxRequest};
use prognosticator_obs::{Event, FlightRecorder};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transaction's identity in a trace: batch sequence number + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId {
    /// Batch sequence number.
    pub batch: u64,
    /// Slot index within the batch.
    pub tx: u64,
}

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T({},{})", self.batch, self.tx)
    }
}

/// Why one transaction must precede another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Read-from: the writer of a version → a reader that observed it.
    WriteRead,
    /// Version order: the writer of a version → the writer of the next
    /// installed version of the same key.
    WriteWrite,
    /// Anti-dependency: a reader of a version → the writer of the
    /// version that superseded it.
    ReadWrite,
    /// The implicit deterministic-database constraint: batch `b` runs
    /// before batch `b' > b`. Only appears in witnesses, closing a
    /// cross-batch cycle.
    BatchOrder,
}

impl EdgeKind {
    /// Short stable label (used in witnesses and reproducers).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::WriteRead => "wr",
            EdgeKind::WriteWrite => "ww",
            EdgeKind::ReadWrite => "rw",
            EdgeKind::BatchOrder => "batch-order",
        }
    }
}

/// One dependency edge of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Transaction that must serialize first.
    pub from: TxId,
    /// Transaction that must serialize after `from`.
    pub to: TxId,
    /// Why.
    pub kind: EdgeKind,
    /// Key fingerprint the dependency is over (0 for `BatchOrder`).
    pub key: u64,
    /// Version anchoring the dependency (0 for `BatchOrder`).
    pub version: u64,
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.kind == EdgeKind::BatchOrder {
            write!(f, "{} -{}-> {}", self.from, self.kind.name(), self.to)
        } else {
            write!(
                f,
                "{} -{}[key {:#x} v{}]-> {}",
                self.from,
                self.kind.name(),
                self.key,
                self.version,
                self.to
            )
        }
    }
}

/// A minimal cycle proving non-serializability.
#[derive(Debug, Clone)]
pub struct CycleWitness {
    /// The cycle's edges, in order (the last edge returns to the first
    /// edge's `from`).
    pub edges: Vec<Edge>,
    /// Human-readable rendering of the cycle.
    pub description: String,
}

/// What [`check_trace`] established.
#[derive(Debug)]
pub enum Verdict {
    /// The dependency graph is acyclic: some serial order consistent
    /// with batch boundaries explains every observed read and write.
    Serializable {
        /// Committed transactions in the graph.
        transactions: usize,
        /// Data dependency edges derived from the trace.
        edges: usize,
    },
    /// The trace is provably non-serializable; here is a shortest
    /// cycle.
    Violation(Box<CycleWitness>),
}

impl Verdict {
    /// Whether the trace passed.
    pub fn is_serializable(&self) -> bool {
        matches!(self, Verdict::Serializable { .. })
    }
}

fn violation(description: String, edges: Vec<Edge>) -> Verdict {
    Verdict::Violation(Box::new(CycleWitness { edges, description }))
}

/// The committed-transaction set of a trace.
fn committed_set(events: &[Event]) -> BTreeSet<TxId> {
    let mut committed = BTreeSet::new();
    for e in events {
        if let Event::TxOutcome { batch, tx, committed: true } = *e {
            committed.insert(TxId { batch, tx });
        }
    }
    committed
}

/// Per-key version index over committed writes: key → version → writer.
/// Returns an error witness if two committed transactions installed the
/// same version of one key (impossible in a real history: the per-key
/// version counter is monotone).
type WriteIndex = BTreeMap<u64, BTreeMap<u64, TxId>>;

fn write_index(events: &[Event], committed: &BTreeSet<TxId>) -> Result<WriteIndex, Verdict> {
    let mut writes: WriteIndex = BTreeMap::new();
    for e in events {
        if let Event::TxWrite { batch, tx, key, version, .. } = *e {
            let id = TxId { batch, tx };
            if !committed.contains(&id) {
                continue;
            }
            if let Some(prev) = writes.entry(key).or_default().insert(version, id) {
                if prev != id {
                    let edges = vec![
                        Edge { from: prev, to: id, kind: EdgeKind::WriteWrite, key, version },
                        Edge { from: id, to: prev, kind: EdgeKind::WriteWrite, key, version },
                    ];
                    return Err(violation(
                        format!(
                            "{prev} and {id} both installed version {version} of key {key:#x}"
                        ),
                        edges,
                    ));
                }
            }
        }
    }
    Ok(writes)
}

/// Checks one canonical trace for serializability.
///
/// The caller is responsible for trace *completeness*: a recorder that
/// evicted events (`dropped() > 0`) yields a partial history the
/// checker could mis-certify, so incomplete traces must not be passed
/// here (see [`check_replica_trace`], which skips them).
pub fn check_trace(events: &[Event]) -> Verdict {
    let committed = committed_set(events);
    let writes = match write_index(events, &committed) {
        Ok(w) => w,
        Err(verdict) => return verdict,
    };
    let mut reads: Vec<(TxId, u64, u64)> = Vec::new();
    for e in events {
        if let Event::TxRead { batch, tx, key, version, .. } = *e {
            let id = TxId { batch, tx };
            if committed.contains(&id) {
                reads.push((id, key, version));
            }
        }
    }

    // ---- Derive the data edges. ----
    let mut edges: BTreeSet<Edge> = BTreeSet::new();
    // WW: consecutive installed versions of each key.
    for (&key, versions) in &writes {
        let order: Vec<(u64, TxId)> = versions.iter().map(|(&v, &t)| (v, t)).collect();
        for pair in order.windows(2) {
            let (_, from) = pair[0];
            let (version, to) = pair[1];
            if from != to {
                edges.insert(Edge { from, to, kind: EdgeKind::WriteWrite, key, version });
            }
        }
    }
    for &(reader, key, version) in &reads {
        let Some(versions) = writes.get(&key) else { continue };
        // WR: the exact writer of the observed version, when the trace
        // recorded one. Version 0 (key absent) and pre-trace populate
        // versions have no recorded writer: they are the initial state,
        // ordered before everything, so they contribute no edge.
        if version > 0 {
            if let Some(&writer) = versions.get(&version) {
                if writer != reader {
                    edges.insert(Edge {
                        from: writer,
                        to: reader,
                        kind: EdgeKind::WriteRead,
                        key,
                        version,
                    });
                }
            }
        }
        // RW: the reader precedes whoever superseded what it saw. A
        // read-modify-write superseding its own read is a self-edge and
        // carries no constraint.
        if let Some((&next, &writer)) = versions.range(version + 1..).next() {
            if writer != reader {
                edges.insert(Edge {
                    from: reader,
                    to: writer,
                    kind: EdgeKind::ReadWrite,
                    key,
                    version: next,
                });
            }
        }
    }
    let edges: Vec<Edge> = edges.into_iter().collect();

    // ---- Case 1: a data edge pointing into an earlier batch closes a
    // cycle through the implicit batch-order constraint immediately.
    for &edge in &edges {
        if edge.from.batch > edge.to.batch {
            let back = Edge {
                from: edge.to,
                to: edge.from,
                kind: EdgeKind::BatchOrder,
                key: 0,
                version: 0,
            };
            return violation(
                format!("dependency points into an earlier batch: {edge}"),
                vec![edge, back],
            );
        }
    }

    // ---- Case 2: cycles closing within a single batch. Forward
    // cross-batch edges can never be on a cycle (batch order is total),
    // so each batch's subgraph is checked independently.
    let mut per_batch: BTreeMap<u64, Vec<Edge>> = BTreeMap::new();
    for &e in &edges {
        if e.from.batch == e.to.batch {
            per_batch.entry(e.from.batch).or_default().push(e);
        }
    }
    for batch_edges in per_batch.values() {
        if let Some(cycle) = shortest_cycle(batch_edges) {
            let description = describe_cycle(&cycle);
            return violation(description, cycle);
        }
    }

    Verdict::Serializable { transactions: committed.len(), edges: edges.len() }
}

/// The shortest cycle in a same-batch subgraph, or `None` if acyclic.
///
/// For every edge `u → v` it BFSes the shortest `v → u` path; the best
/// closing edge plus its path is a globally minimal cycle. Quadratic in
/// the edge count, which is fine at trace scale (a batch holds tens of
/// transactions). All containers are ordered, so the returned witness
/// is deterministic.
fn shortest_cycle(edges: &[Edge]) -> Option<Vec<Edge>> {
    let mut adj: BTreeMap<TxId, Vec<Edge>> = BTreeMap::new();
    for &e in edges {
        adj.entry(e.from).or_default().push(e);
    }
    let mut best: Option<Vec<Edge>> = None;
    for &close in edges {
        if let Some(path) = shortest_path(&adj, close.to, close.from) {
            let mut cycle = path;
            cycle.push(close);
            if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                best = Some(cycle);
            }
        }
    }
    best
}

/// BFS shortest edge-path `src → dst`, or `None` if unreachable.
fn shortest_path(adj: &BTreeMap<TxId, Vec<Edge>>, src: TxId, dst: TxId) -> Option<Vec<Edge>> {
    if src == dst {
        return Some(Vec::new());
    }
    let mut prev: BTreeMap<TxId, Edge> = BTreeMap::new();
    let mut queue = VecDeque::from([src]);
    while let Some(node) = queue.pop_front() {
        for &e in adj.get(&node).into_iter().flatten() {
            if e.to == src || prev.contains_key(&e.to) {
                continue;
            }
            prev.insert(e.to, e);
            if e.to == dst {
                let mut path = Vec::new();
                let mut at = dst;
                while at != src {
                    let hop = prev[&at];
                    path.push(hop);
                    at = hop.from;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(e.to);
        }
    }
    None
}

fn describe_cycle(cycle: &[Edge]) -> String {
    let mut s = format!(
        "cycle of {} dependencies within batch {}: ",
        cycle.len(),
        cycle[0].from.batch
    );
    for e in cycle {
        s.push_str(&format!("{} -{}[key {:#x} v{}]-> ", e.from, e.kind.name(), e.key, e.version));
    }
    s.push_str(&cycle[0].from.to_string());
    s
}

// ---------------------------------------------------------------------
// Mutation harness: corrupt healthy traces, prove the checker notices.
// ---------------------------------------------------------------------

/// A known isolation violation to forge into a healthy trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Swap the installed versions of two committed writes to one key
    /// from different batches — models a commit applied out of order.
    SwapCommittedWrites,
    /// Point a read at a superseded version whose successor landed in
    /// an earlier batch — models serving a stale epoch snapshot.
    StaleEpochRead,
    /// Let two same-batch writers of different keys observe each
    /// other's writes — models a dropped lock release admitting an
    /// illegal interleaving.
    DroppedLockRelease,
    /// Let an earlier-batch transaction observe a version installed by
    /// a later batch — models the cross-shard barrier exchange
    /// (DESIGN.md §3.5) releasing a shard's foreign writes before the
    /// batch barrier, so a reader sees the future.
    CrossShardBarrierReorder,
}

impl Mutation {
    /// Every mutation, for "reject them all" loops.
    pub const ALL: [Mutation; 4] = [
        Mutation::SwapCommittedWrites,
        Mutation::StaleEpochRead,
        Mutation::DroppedLockRelease,
        Mutation::CrossShardBarrierReorder,
    ];

    /// Short stable label.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SwapCommittedWrites => "swap-committed-writes",
            Mutation::StaleEpochRead => "stale-epoch-read",
            Mutation::DroppedLockRelease => "dropped-lock-release",
            Mutation::CrossShardBarrierReorder => "cross-shard-barrier-reorder",
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T>(candidates: &[T], seed: u64) -> Option<&T> {
    if candidates.is_empty() {
        return None;
    }
    Some(&candidates[(splitmix(seed) % candidates.len() as u64) as usize])
}

/// Per-key committed writes in version order, with their event indices.
fn versioned_writes(
    events: &[Event],
    committed: &BTreeSet<TxId>,
) -> BTreeMap<u64, Vec<(u64, usize, TxId)>> {
    let mut by_key: BTreeMap<u64, Vec<(u64, usize, TxId)>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if let Event::TxWrite { batch, tx, key, version, .. } = *e {
            let id = TxId { batch, tx };
            if committed.contains(&id) {
                by_key.entry(key).or_default().push((version, i, id));
            }
        }
    }
    for list in by_key.values_mut() {
        list.sort_unstable();
    }
    by_key
}

/// Forges `mutation` into a healthy trace, choosing among applicable
/// sites by `seed`. Returns `None` when the trace offers no site for
/// the mutation (e.g. a single-batch trace cannot host a cross-batch
/// swap). The returned trace is guaranteed non-serializable, so
/// [`check_trace`] must reject it — that is the harness's whole point.
pub fn inject_violation(events: &[Event], mutation: Mutation, seed: u64) -> Option<Vec<Event>> {
    let committed = committed_set(events);
    let by_key = versioned_writes(events, &committed);
    let mut mutated = events.to_vec();
    match mutation {
        Mutation::SwapCommittedWrites => {
            // Adjacent versions of one key installed by different
            // batches: swapping them inverts exactly one WW edge
            // against batch order.
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for list in by_key.values() {
                for pair in list.windows(2) {
                    let (_, i, a) = pair[0];
                    let (_, j, b) = pair[1];
                    if a.batch != b.batch {
                        candidates.push((i, j));
                    }
                }
            }
            let &(i, j) = pick(&candidates, seed)?;
            let (Event::TxWrite { version: va, .. }, Event::TxWrite { version: vb, .. }) =
                (events[i].clone(), events[j].clone())
            else {
                unreachable!("candidates index TxWrite events");
            };
            set_write_version(&mut mutated[i], vb);
            set_write_version(&mut mutated[j], va);
        }
        Mutation::StaleEpochRead => {
            // Retarget a committed read to the version *below* a
            // successor whose writer sits in an earlier batch than the
            // reader: the resulting RW anti-dependency points backwards
            // across batches.
            let mut candidates: Vec<(usize, u64)> = Vec::new();
            for (i, e) in events.iter().enumerate() {
                let Event::TxRead { batch, tx, key, version, .. } = *e else { continue };
                let reader = TxId { batch, tx };
                if !committed.contains(&reader) {
                    continue;
                }
                let Some(list) = by_key.get(&key) else { continue };
                for pair in list.windows(2) {
                    let (below, _, _) = pair[0];
                    let (_, _, writer) = pair[1];
                    if writer.batch < reader.batch && writer != reader && below != version {
                        candidates.push((i, below));
                    }
                }
            }
            let &(i, stale) = pick(&candidates, seed)?;
            set_read_version(&mut mutated[i], stale);
        }
        Mutation::DroppedLockRelease => {
            // Two committed same-batch writers of different keys made
            // to observe each other: a WR ⇄ WR two-cycle inside the
            // batch, exactly what a lost lock release would admit.
            let mut candidates: Vec<[(TxId, u64, u64); 2]> = Vec::new();
            let mut by_batch: BTreeMap<u64, Vec<(TxId, u64, u64)>> = BTreeMap::new();
            for (&key, list) in &by_key {
                for &(version, _, id) in list {
                    by_batch.entry(id.batch).or_default().push((id, key, version));
                }
            }
            for writers in by_batch.values() {
                for (p, &a) in writers.iter().enumerate() {
                    for &b in &writers[p + 1..] {
                        if a.0 != b.0 && a.1 != b.1 {
                            candidates.push([a, b]);
                        }
                    }
                }
            }
            let &[(t1, k1, v1), (t2, k2, v2)] = pick(&candidates, seed)?;
            // Forged seqs sit far above real ones; seq only affects the
            // canonical sort, never the checker.
            mutated.push(Event::TxRead {
                batch: t1.batch,
                tx: t1.tx,
                seq: 1 << 20,
                key: k2,
                version: v2,
            });
            mutated.push(Event::TxRead {
                batch: t2.batch,
                tx: t2.tx,
                seq: 1 << 20,
                key: k1,
                version: v1,
            });
        }
        Mutation::CrossShardBarrierReorder => {
            // A committed earlier-batch reader forged to observe a
            // version a later batch installed: exactly what a shard's
            // writes escaping the batch barrier would admit. The WR
            // edge points into the earlier batch, so the checker must
            // reject it via the batch-order case with a 2-edge witness.
            let mut candidates: Vec<(TxId, u64, u64)> = Vec::new();
            for &reader in &committed {
                for (&key, list) in &by_key {
                    for &(version, _, writer) in list {
                        if writer.batch > reader.batch {
                            candidates.push((reader, key, version));
                        }
                    }
                }
            }
            let &(reader, key, version) = pick(&candidates, seed)?;
            mutated.push(Event::TxRead {
                batch: reader.batch,
                tx: reader.tx,
                seq: 1 << 20,
                key,
                version,
            });
        }
    }
    Some(mutated)
}

fn set_write_version(event: &mut Event, new: u64) {
    if let Event::TxWrite { version, .. } = event {
        *version = new;
    }
}

fn set_read_version(event: &mut Event, new: u64) {
    if let Event::TxRead { version, .. } = event {
        *version = new;
    }
}

// ---------------------------------------------------------------------
// Suite runner and harness hooks.
// ---------------------------------------------------------------------

/// Isolation-trace recorders live in their own id namespace, far above
/// replica (0..), WAL (1 << 32..) and below harness (1 << 48..) ids.
static NEXT_RECORDER: AtomicU64 = AtomicU64::new(1 << 40);

/// Ring capacity for isolation traces: comfortably above what a
/// standard run records, so `dropped() == 0` and the trace is complete.
const TRACE_CAPACITY: usize = 1 << 20;

/// A complete recorded history plus the replica's observable results.
#[derive(Debug)]
pub struct Trace {
    /// Canonically ordered events.
    pub events: Vec<Event>,
    /// Events evicted from the ring. Nonzero means the trace is
    /// incomplete and must not be checked.
    pub dropped: u64,
    /// Per-batch outcome vectors.
    pub outcomes: Vec<Vec<TxOutcome>>,
    /// Final store digest.
    pub digest: u64,
}

/// Replays `stream` on a fresh replica with `workers` workers and an
/// explicitly enabled high-capacity recorder, returning the full trace.
pub fn trace_stream(workload: &TestWorkload, stream: &[Vec<TxRequest>], workers: usize) -> Trace {
    trace_stream_with(workload, stream, workers, 1)
}

/// [`trace_stream`] with the engine additionally partitioned into
/// `shards` key-space shards (DESIGN.md §3.5). The trace — events,
/// outcomes, and digest — must not depend on the shard count; the
/// isolation suite checks every count independently anyway.
pub fn trace_stream_with(
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    workers: usize,
    shards: usize,
) -> Trace {
    let recorder = FlightRecorder::with_capacity(
        NEXT_RECORDER.fetch_add(1, Ordering::Relaxed),
        TRACE_CAPACITY,
    );
    recorder.set_enabled(true);
    let mut replica = Replica::with_store(
        prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.attach_recorder(Arc::clone(&recorder));
    // Pipelined, so prepare-ahead classification is in the picture too.
    let outs = replica.execute_stream(stream.to_vec(), 1);
    let outcomes = outs.into_iter().map(|o| o.outcomes).collect();
    let digest = replica.state_digest();
    replica.shutdown();
    Trace {
        events: recorder.canonical_events(),
        dropped: recorder.dropped(),
        outcomes,
        digest,
    }
}

/// One isolation run: a workload's stream traced and checked at every
/// worker count.
#[derive(Debug, Clone)]
pub struct IsolationConfig {
    /// Workload generating the batch stream.
    pub workload: WorkloadKind,
    /// Seed of the request stream.
    pub stream_seed: u64,
    /// Batches per run.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Worker counts to trace; each trace is checked independently.
    pub worker_counts: Vec<usize>,
    /// Shard counts to trace; every (worker × shard) trace is checked
    /// independently (DESIGN.md §3.5).
    pub shard_counts: Vec<usize>,
    /// Where `.reproducer.json` cycle witnesses are written.
    pub artifact_dir: PathBuf,
}

impl IsolationConfig {
    /// The acceptance-bar cell: 3 batches × 24 requests at {1, 2, 4}
    /// workers, artifacts under `target/testkit`.
    pub fn standard(workload: WorkloadKind, stream_seed: u64) -> Self {
        IsolationConfig {
            workload,
            stream_seed,
            batches: 3,
            batch_size: 24,
            worker_counts: vec![1, 2, 4],
            shard_counts: vec![1],
            artifact_dir: PathBuf::from("target/testkit"),
        }
    }
}

/// What a clean isolation run established.
#[derive(Debug)]
pub struct IsolationReport {
    /// Traces checked (one per worker count).
    pub runs: usize,
    /// Committed transactions in the last trace's graph.
    pub transactions: usize,
    /// Data dependency edges in the last trace's graph.
    pub edges: usize,
}

/// A confirmed serializability violation, with its written witness.
#[derive(Debug)]
pub struct IsolationViolation {
    /// Full context: workload, seed, worker count, cycle rendering.
    pub description: String,
    /// The minimal cycle.
    pub witness: CycleWitness,
    /// Where the reproducer JSON was written (empty if writing failed).
    pub reproducer: PathBuf,
}

/// Renders a cycle witness (plus run context) as the reproducer
/// document.
pub fn witness_json(
    config: &IsolationConfig,
    workers: usize,
    shards: usize,
    witness: &CycleWitness,
) -> Json {
    let tx_json = |id: TxId| {
        Json::obj(vec![
            ("batch", Json::Int(id.batch as i64)),
            ("tx", Json::Int(id.tx as i64)),
        ])
    };
    let cycle = witness
        .edges
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("from", tx_json(e.from)),
                ("to", tx_json(e.to)),
                ("kind", Json::Str(e.kind.name().into())),
                ("key", Json::Str(format!("{:#x}", e.key))),
                ("version", Json::Int(e.version as i64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("check", Json::Str("isolation".into())),
        ("workload", Json::Str(config.workload.name().into())),
        ("stream_seed", Json::Int(config.stream_seed as i64)),
        ("batches", Json::Int(config.batches as i64)),
        ("batch_size", Json::Int(config.batch_size as i64)),
        ("workers", Json::Int(workers as i64)),
        ("shards", Json::Int(shards as i64)),
        ("violation", Json::Str(witness.description.clone())),
        ("cycle", Json::Arr(cycle)),
    ])
}

/// Traces `config`'s stream at every worker count and checks each trace.
///
/// # Errors
/// Returns [`IsolationViolation`] (with a written
/// `isolation-<workload>-<seed>.reproducer.json` witness) on the first
/// non-serializable trace.
///
/// # Panics
/// Panics if a trace overflows the recorder ring — that is a harness
/// sizing bug, not a verdict.
pub fn run_isolation(config: &IsolationConfig) -> Result<IsolationReport, Box<IsolationViolation>> {
    let workload = crate::strategies::fixture(config.workload);
    let stream = workload.gen_stream(config.stream_seed, config.batches, config.batch_size);
    let mut runs = 0;
    let (mut transactions, mut edges) = (0, 0);
    for &workers in &config.worker_counts {
        for &shards in &config.shard_counts {
            let trace = trace_stream_with(&workload, &stream, workers, shards);
            assert_eq!(
                trace.dropped, 0,
                "isolation trace ring overflowed; raise TRACE_CAPACITY"
            );
            match check_trace(&trace.events) {
                Verdict::Serializable { transactions: t, edges: e } => {
                    transactions = t;
                    edges = e;
                    runs += 1;
                }
                Verdict::Violation(witness) => {
                    let description = format!(
                        "workload={} stream_seed={} workers={} shards={}: {}",
                        config.workload.name(),
                        config.stream_seed,
                        workers,
                        shards,
                        witness.description
                    );
                    crate::report_oracle_failure(
                        "isolation",
                        &description,
                        "isolation-oracle-failure",
                    );
                    let json = witness_json(config, workers, shards, &witness);
                    let path = config.artifact_dir.join(format!(
                        "isolation-{}-{}.reproducer.json",
                        config.workload.name(),
                        config.stream_seed
                    ));
                    let written = std::fs::create_dir_all(&config.artifact_dir)
                        .and_then(|()| std::fs::write(&path, json.render()))
                        .is_ok();
                    return Err(Box::new(IsolationViolation {
                        description,
                        witness: *witness,
                        reproducer: if written { path } else { PathBuf::new() },
                    }));
                }
            }
        }
    }
    Ok(IsolationReport { runs, transactions, edges })
}

/// Opportunistic harness hook: when `replica` carries an enabled
/// recorder whose ring never evicted, checks its trace. Returns the
/// violation description, or `None` when the trace is serializable,
/// incomplete, or recording is off.
pub fn check_replica_trace(replica: &Replica, context: &str) -> Option<String> {
    let rec = replica.recorder()?;
    if !rec.is_enabled() || rec.dropped() > 0 {
        return None;
    }
    match check_trace(&rec.canonical_events()) {
        Verdict::Serializable { .. } => None,
        Verdict::Violation(w) => Some(format!("{context}: {}", w.description)),
    }
}

/// Panics (after recording an `OracleFailure` flight event and dumping
/// recorders) when `replica`'s trace is provably non-serializable. The
/// other oracles call this just before shutting a replica down, so
/// every suite doubles as an isolation check whenever recording is on.
pub fn assert_replica_serializable(replica: &Replica, context: &str) {
    if let Some(description) = check_replica_trace(replica, context) {
        crate::report_oracle_failure("isolation", &description, "isolation-oracle-failure");
        panic!("serializability violation: {description}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(batch: u64, tx: u64) -> Event {
        Event::TxOutcome { batch, tx, committed: true }
    }

    fn read(batch: u64, tx: u64, seq: u64, key: u64, version: u64) -> Event {
        Event::TxRead { batch, tx, seq, key, version }
    }

    fn write(batch: u64, tx: u64, seq: u64, key: u64, version: u64) -> Event {
        Event::TxWrite { batch, tx, seq, key, version }
    }

    #[test]
    fn empty_trace_is_serializable() {
        let v = check_trace(&[]);
        assert!(matches!(v, Verdict::Serializable { transactions: 0, edges: 0 }));
    }

    #[test]
    fn forward_history_builds_wr_and_ww_edges() {
        // T(0,0) installs k v2; T(1,0) reads it and installs v3.
        let events = [
            outcome(0, 0),
            write(0, 0, 0, 7, 2),
            outcome(1, 0),
            read(1, 0, 0, 7, 2),
            write(1, 0, 0, 7, 3),
        ];
        match check_trace(&events) {
            Verdict::Serializable { transactions, edges } => {
                assert_eq!(transactions, 2);
                // WR T(0,0)→T(1,0) and WW T(0,0)→T(1,0); the RW from
                // the read is a self-edge (the reader wrote v3 itself).
                assert_eq!(edges, 2);
            }
            Verdict::Violation(w) => panic!("forward history rejected: {}", w.description),
        }
    }

    #[test]
    fn initial_version_reads_carry_no_edges() {
        // Reads of versions the trace never saw written (populate
        // state, absent keys) have no recorded writer.
        let events = [outcome(0, 0), read(0, 0, 0, 7, 1), read(0, 0, 1, 9, 0)];
        match check_trace(&events) {
            Verdict::Serializable { transactions, edges } => {
                assert_eq!((transactions, edges), (1, 0));
            }
            Verdict::Violation(w) => panic!("{}", w.description),
        }
    }

    #[test]
    fn aborted_accesses_are_ignored() {
        // The aborted T(0,1) "wrote" a conflicting version; it never
        // flushed, so the checker must not consider it.
        let events = [
            outcome(0, 0),
            write(0, 0, 0, 7, 2),
            Event::TxOutcome { batch: 0, tx: 1, committed: false },
            write(0, 1, 0, 7, 2),
        ];
        assert!(check_trace(&events).is_serializable());
    }

    #[test]
    fn backward_ww_is_rejected_with_two_edge_witness() {
        // Batch 1 installed a *smaller* version than batch 0: the WW
        // edge points into the earlier batch.
        let events = [
            outcome(0, 0),
            write(0, 0, 0, 7, 5),
            outcome(1, 0),
            write(1, 0, 0, 7, 4),
        ];
        let Verdict::Violation(w) = check_trace(&events) else {
            panic!("backward WW accepted");
        };
        assert_eq!(w.edges.len(), 2, "{}", w.description);
        assert_eq!(w.edges[0].kind, EdgeKind::WriteWrite);
        assert_eq!(w.edges[1].kind, EdgeKind::BatchOrder);
        assert!(w.edges[0].from.batch > w.edges[0].to.batch);
    }

    #[test]
    fn stale_read_is_rejected_as_backward_rw() {
        // T(2,0) read v2 after T(1,0) superseded it with v3: the RW
        // anti-dependency points from batch 2 into batch 1.
        let events = [
            outcome(0, 0),
            write(0, 0, 0, 7, 2),
            outcome(1, 0),
            write(1, 0, 0, 7, 3),
            outcome(2, 0),
            read(2, 0, 0, 7, 2),
        ];
        let Verdict::Violation(w) = check_trace(&events) else {
            panic!("stale read accepted");
        };
        assert_eq!(w.edges.len(), 2, "{}", w.description);
        assert_eq!(w.edges[0].kind, EdgeKind::ReadWrite);
        assert_eq!(w.edges[1].kind, EdgeKind::BatchOrder);
    }

    #[test]
    fn intra_batch_cycle_is_found_and_shrunk() {
        // T(0,0) and T(0,1) each read the other's write (impossible
        // under two-phase batch locking), plus an innocent bystander
        // reading both — the witness must shrink to the 2-cycle.
        let events = [
            outcome(0, 0),
            outcome(0, 1),
            outcome(0, 2),
            write(0, 0, 0, 1, 2),
            write(0, 1, 0, 2, 2),
            read(0, 0, 0, 2, 2),
            read(0, 1, 0, 1, 2),
            read(0, 2, 0, 1, 2),
            read(0, 2, 1, 2, 2),
        ];
        let Verdict::Violation(w) = check_trace(&events) else {
            panic!("intra-batch WR cycle accepted");
        };
        assert_eq!(w.edges.len(), 2, "witness must be minimal: {}", w.description);
        assert!(w.edges.iter().all(|e| e.kind == EdgeKind::WriteRead));
        let (a, b) = (w.edges[0], w.edges[1]);
        assert_eq!(a.to, b.from);
        assert_eq!(b.to, a.from);
    }

    #[test]
    fn duplicate_version_installs_are_rejected() {
        let events = [
            outcome(0, 0),
            outcome(0, 1),
            write(0, 0, 0, 7, 2),
            write(0, 1, 0, 7, 2),
        ];
        let Verdict::Violation(w) = check_trace(&events) else {
            panic!("duplicate version accepted");
        };
        assert!(w.description.contains("both installed"), "{}", w.description);
        assert!(w.edges.len() <= 2);
    }

    #[test]
    fn inject_returns_none_without_a_site() {
        // A single-batch, single-writer trace offers no cross-batch
        // swap site and no second same-batch writer.
        let events = [outcome(0, 0), write(0, 0, 0, 7, 2)];
        for mutation in Mutation::ALL {
            assert!(
                inject_violation(&events, mutation, 0).is_none(),
                "{} found a site in a trivial trace",
                mutation.name()
            );
        }
    }

    #[test]
    fn injected_mutations_are_rejected_on_synthetic_traces() {
        // A healthy 3-batch RMW history over two keys.
        let mut events = Vec::new();
        for batch in 0..3u64 {
            for tx in 0..2u64 {
                let key = tx + 1;
                let version = batch + 2;
                events.push(outcome(batch, tx));
                events.push(read(batch, tx, 0, key, version - 1));
                events.push(write(batch, tx, 0, key, version));
            }
        }
        assert!(check_trace(&events).is_serializable(), "healthy trace must pass");
        for mutation in Mutation::ALL {
            let mutated = inject_violation(&events, mutation, 1)
                .unwrap_or_else(|| panic!("{} found no site", mutation.name()));
            let Verdict::Violation(w) = check_trace(&mutated) else {
                panic!("{} went undetected", mutation.name());
            };
            assert!(
                w.edges.len() <= 5,
                "{}: witness has {} edges: {}",
                mutation.name(),
                w.edges.len(),
                w.description
            );
        }
    }
}
