//! RWS-soundness oracle.
//!
//! The scheduler's correctness rests on one invariant: the key-level
//! read/write-set predicted from a program's symbolic-execution profile is
//! a **superset** of the keys the transaction concretely touches (paper
//! §III-B — over-approximation is a performance cost, under-approximation
//! is a correctness bug: an unlocked access races). The oracle replays a
//! workload stream transaction by transaction:
//!
//! 1. predict the RWS with [`Profile::predict`], resolving pivots against
//!    the live store exactly like the engine's *prepare* phase;
//! 2. execute the transaction through a tracing [`TxStore`] shim that
//!    records every concrete key the interpreter touches while buffering
//!    writes;
//! 3. assert recorded ⊆ predicted, then flush the buffered writes so the
//!    stream replays against evolving state.
//!
//! Programs whose analysis was capped (no profile — the reconnaissance
//! fallback) are executed but counted separately: reconnaissance derives
//! the RWS from a trial run, so it is exact by construction.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator_core::ShardRouter;
use prognosticator_storage::EpochStore;
use prognosticator_symexec::{
    predict_specialized, PivotResolver, SpecializationSet, TxClass,
};
use prognosticator_txir::{Interpreter, Key, TxStore, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// An RWS-soundness violation: the profile under-approximated.
#[derive(Debug)]
pub struct SoundnessError {
    /// Program whose prediction missed a key.
    pub program: String,
    /// Position of the transaction in the replayed stream.
    pub tx_index: usize,
    /// Concretely touched keys absent from the prediction.
    pub missing: Vec<Key>,
}

impl std::fmt::Display for SoundnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unsound RWS for program `{}` (tx #{}): {} concretely-touched key(s) \
             missing from the prediction: {:?}",
            self.program,
            self.tx_index,
            self.missing.len(),
            self.missing
        )
    }
}

impl std::error::Error for SoundnessError {}

/// Per-template (per-program) soundness statistics: the oracle's view of
/// how tight one program's profile is on the replayed stream, and how
/// often its resolved pivots were still valid after execution.
#[derive(Debug, Clone, Default)]
pub struct TemplateSoundness {
    /// Program name.
    pub program: String,
    /// Checked transactions of this template.
    pub checked: usize,
    /// Total predicted keys.
    pub predicted_keys: u64,
    /// Total concretely touched keys.
    pub touched_keys: u64,
    /// Checked transactions whose prediction consulted ≥ 1 pivot.
    pub pivot_predictions: usize,
    /// Of those, predictions whose every pivot observation still matched
    /// a post-execution re-read (the engine's validation would pass; a
    /// template that overwrites its own pivot scores misses here).
    pub pivot_hits: usize,
}

impl TemplateSoundness {
    /// Per-template over-approximation ratio (predicted / touched; `1.0`
    /// when the template touched nothing).
    pub fn ratio(&self) -> f64 {
        if self.touched_keys == 0 {
            1.0
        } else {
            self.predicted_keys as f64 / self.touched_keys as f64
        }
    }

    /// Pivot hit rate (`1.0` for templates that never consult pivots).
    pub fn pivot_hit_rate(&self) -> f64 {
        if self.pivot_predictions == 0 {
            1.0
        } else {
            self.pivot_hits as f64 / self.pivot_predictions as f64
        }
    }
}

/// Per-workload soundness statistics.
#[derive(Debug)]
pub struct SoundnessReport {
    /// Workload name.
    pub workload: &'static str,
    /// Update transactions checked against their profile's prediction.
    pub checked: usize,
    /// Transactions executed via the reconnaissance fallback (no profile;
    /// exact by construction, not counted in the ratio).
    pub recon: usize,
    /// Read-only transactions (predictions checked like updates).
    pub read_only: usize,
    /// Total predicted keys over all checked transactions.
    pub predicted_keys: u64,
    /// Total concretely touched keys over all checked transactions.
    pub touched_keys: u64,
    /// Shard count the predictions were routed over (DESIGN.md §3.5).
    pub shards: usize,
    /// Checked transactions whose predicted RWS routed to one shard.
    pub single_shard: usize,
    /// Checked transactions whose predicted RWS spanned shards.
    pub cross_shard: usize,
    /// Per-template statistics, ordered by program name.
    pub templates: Vec<TemplateSoundness>,
}

impl SoundnessReport {
    /// Over-approximation ratio: predicted / touched (≥ 1.0 when sound;
    /// exactly 1.0 means the profiles are key-precise on this stream).
    pub fn ratio(&self) -> f64 {
        self.predicted_keys as f64 / self.touched_keys as f64
    }

    /// Fraction of checked transactions whose predicted RWS spanned more
    /// than one shard at this report's shard count (0.0 when routed over
    /// a single shard).
    pub fn cross_shard_ratio(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.cross_shard as f64 / self.checked as f64
        }
    }

    /// The `n` loosest templates, worst first (ties broken by name so the
    /// output is stable across runs).
    pub fn worst_templates(&self, n: usize) -> Vec<&TemplateSoundness> {
        let mut sorted: Vec<&TemplateSoundness> = self.templates.iter().collect();
        sorted.sort_by(|a, b| {
            b.ratio()
                .partial_cmp(&a.ratio())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.program.cmp(&b.program))
        });
        sorted.truncate(n);
        sorted
    }

    /// Multi-line human summary: the workload totals plus the top-3
    /// loosest templates with their over-approximation ratios and pivot
    /// hit rates. This is what failure messages and the suite's summary
    /// output print.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "[rws-soundness] {}: checked={} recon={} read_only={} predicted={} touched={} \
             ratio={:.3}",
            self.workload,
            self.checked,
            self.recon,
            self.read_only,
            self.predicted_keys,
            self.touched_keys,
            self.ratio()
        );
        for t in self.worst_templates(3) {
            let _ = write!(
                out,
                "\n  worst `{}`: ratio={:.3} pivot_hit_rate={:.3} \
                 (checked={} predicted={} touched={})",
                t.program,
                t.ratio(),
                t.pivot_hit_rate(),
                t.checked,
                t.predicted_keys,
                t.touched_keys
            );
        }
        out
    }
}

/// Tracing [`TxStore`] shim: reads hit the write buffer first, then the
/// live store; writes are buffered. Every accessed key is recorded.
struct TracingStore<'a> {
    store: &'a EpochStore,
    buffer: HashMap<Key, Value>,
    touched: HashSet<Key>,
}

impl<'a> TracingStore<'a> {
    fn new(store: &'a EpochStore) -> Self {
        TracingStore { store, buffer: HashMap::new(), touched: HashSet::new() }
    }

    fn commit(self) {
        for (k, v) in self.buffer {
            self.store.put(&k, v);
        }
    }
}

impl TxStore for TracingStore<'_> {
    fn get(&mut self, key: &Key) -> Option<Value> {
        self.touched.insert(key.clone());
        if let Some(v) = self.buffer.get(key) {
            return Some(v.clone());
        }
        self.store.get_latest(key)
    }

    fn put(&mut self, key: &Key, value: Value) {
        self.touched.insert(key.clone());
        self.buffer.insert(key.clone(), value);
    }
}

struct StoreResolver<'a> {
    store: &'a EpochStore,
}

impl PivotResolver for StoreResolver<'_> {
    fn read(&mut self, key: &Key) -> Value {
        self.store.get_latest(key).unwrap_or(Value::Unit)
    }
}

/// Executes `program` against `store` through the tracing shim, returning
/// the set of concretely touched keys and whether execution succeeded.
/// On success the buffered writes are flushed to the store (the
/// transaction "commits"); on failure the store is untouched.
pub fn traced_execute(
    interp: &Interpreter,
    program: &prognosticator_txir::Program,
    inputs: &[Value],
    store: &EpochStore,
) -> (HashSet<Key>, bool) {
    let mut view = TracingStore::new(store);
    let ran = interp.run(program, inputs, &mut view).is_ok();
    let touched = std::mem::take(&mut view.touched);
    if ran {
        view.commit();
    }
    (touched, ran)
}

/// Replays `batches`×`batch_size` transactions of `kind` (stream seed
/// `seed`), checking every profiled transaction's predicted RWS against
/// the keys it concretely touches.
///
/// # Errors
/// Returns the first [`SoundnessError`] — a prediction that missed a
/// concretely-touched key. Any error here is a profiler correctness bug.
///
/// # Panics
/// Panics if prediction itself fails (`PredictError`) or the stream
/// contains no profiled transactions — both mean the test setup is wrong,
/// not that the profiler is unsound.
pub fn check_soundness(
    kind: WorkloadKind,
    seed: u64,
    batches: usize,
    batch_size: usize,
) -> Result<SoundnessReport, SoundnessError> {
    check_soundness_sharded(kind, seed, batches, batch_size, 1)
}

/// [`check_soundness`] with the prediction additionally routed over
/// `shards` key-space shards, the way the engine's prepare phase does
/// (DESIGN.md §3.5). Beyond the superset check, every concretely touched
/// key must land on a shard the predicted RWS was routed to — an access
/// outside the routed owner set would execute without that shard's locks.
/// The report carries the single/cross split so workloads' cross-shard
/// ratios are observable per shard count.
///
/// # Errors
/// Returns the first [`SoundnessError`] — a prediction that missed a
/// concretely-touched key. Any error here is a profiler correctness bug.
///
/// # Panics
/// Panics if prediction fails, the stream has no profiled transactions,
/// or the router's `route`/`partition` views of the same predicted
/// key-set disagree — the latter is a router bug, not profiler unsoundness.
pub fn check_soundness_sharded(
    kind: WorkloadKind,
    seed: u64,
    batches: usize,
    batch_size: usize,
    shards: usize,
) -> Result<SoundnessReport, SoundnessError> {
    let router = ShardRouter::new(shards);
    let workload = TestWorkload::new(kind);
    let store = workload.fresh_store();
    let stream = workload.gen_stream(seed, batches, batch_size);
    let interp = Interpreter::new().without_input_validation();

    let mut report = SoundnessReport {
        workload: kind.name(),
        checked: 0,
        recon: 0,
        read_only: 0,
        predicted_keys: 0,
        touched_keys: 0,
        shards: router.shards(),
        single_shard: 0,
        cross_shard: 0,
        templates: Vec::new(),
    };
    let mut per_template: BTreeMap<String, TemplateSoundness> = BTreeMap::new();

    let mut tx_index = 0usize;
    for batch in stream {
        for tx in batch {
            let entry = workload.catalog().entry(tx.program);
            let program = entry.program().clone();
            let predicted_full = match entry.profile() {
                Some(profile) => {
                    let mut resolver = StoreResolver { store: &store };
                    let prediction = profile
                        .predict(&tx.inputs, Some(&mut resolver))
                        .unwrap_or_else(|e| {
                            panic!("predict failed for `{}`: {e:?}", program.name())
                        });
                    Some(prediction)
                }
                None => None,
            };

            let (touched, _ran) = traced_execute(&interp, &program, &tx.inputs, &store);

            match predicted_full {
                Some(prediction) => {
                    let predicted: HashSet<Key> = prediction.key_set().into_iter().collect();
                    let missing: Vec<Key> =
                        touched.iter().filter(|k| !predicted.contains(*k)).cloned().collect();
                    if !missing.is_empty() {
                        return Err(SoundnessError {
                            program: program.name().to_string(),
                            tx_index,
                            missing,
                        });
                    }
                    report.checked += 1;
                    if entry.class() == TxClass::ReadOnly {
                        report.read_only += 1;
                    }
                    report.predicted_keys += predicted.len() as u64;
                    report.touched_keys += touched.len() as u64;

                    let t = per_template
                        .entry(program.name().to_string())
                        .or_insert_with(|| TemplateSoundness {
                            program: program.name().to_string(),
                            ..TemplateSoundness::default()
                        });
                    t.checked += 1;
                    t.predicted_keys += predicted.len() as u64;
                    t.touched_keys += touched.len() as u64;
                    if !prediction.pivot_observations.is_empty() {
                        t.pivot_predictions += 1;
                        let valid = prediction
                            .pivot_observations
                            .iter()
                            .all(|(k, v)| &store.get_latest(k).unwrap_or(Value::Unit) == v);
                        if valid {
                            t.pivot_hits += 1;
                        }
                    }

                    // Routing soundness: the engine routes this tx at
                    // prepare time from exactly this prediction, so every
                    // concretely touched key must fall on a routed owner
                    // shard, and route()/partition() must agree on what
                    // those owners are.
                    let predicted_keys: Vec<Key> = predicted.iter().cloned().collect();
                    let route = router.route(&predicted_keys);
                    let owners = route.owners();
                    let parts = router.partition(predicted_keys.clone());
                    let part_shards: Vec<usize> = parts.iter().map(|(s, _)| *s).collect();
                    assert_eq!(
                        part_shards, owners,
                        "route/partition disagree for `{}` (tx #{tx_index})",
                        program.name()
                    );
                    assert_eq!(
                        parts.iter().map(|(_, ks)| ks.len()).sum::<usize>(),
                        predicted_keys.len(),
                        "partition dropped or duplicated keys for `{}` (tx #{tx_index})",
                        program.name()
                    );
                    for key in &touched {
                        let s = router.shard_of(key);
                        assert!(
                            owners.contains(&s),
                            "tx #{tx_index} (`{}`) touched {key:?} on shard {s}, outside \
                             its routed owner set {owners:?} ({} shards)",
                            program.name(),
                            router.shards()
                        );
                    }
                    if route.is_cross() {
                        report.cross_shard += 1;
                    } else {
                        report.single_shard += 1;
                    }
                }
                None => report.recon += 1,
            }
            tx_index += 1;
        }
        store.advance_epoch();
    }

    assert!(report.checked > 0, "stream for {} contained no profiled transactions", kind.name());
    assert!(report.touched_keys > 0, "profiled transactions touched no keys");
    report.templates = per_template.into_values().collect();
    Ok(report)
}

/// Per-workload statistics of a specialized-profile soundness sweep.
#[derive(Debug)]
pub struct SpecializedSoundnessReport {
    /// Workload name.
    pub workload: &'static str,
    /// Specialization-set version the sweep ran under.
    pub spec_version: u64,
    /// Transactions checked against a specialized prediction.
    pub checked: usize,
    /// Predictions served from the indirect cache (each proved
    /// byte-identical to a fresh walk before being accepted).
    pub cache_hits: usize,
    /// Predictions with ≥ 1 key dropped by range narrowing (each still a
    /// superset of its concrete touch set on this stream).
    pub narrowed: usize,
    /// Transactions of demoted programs (checked at table granularity).
    pub demoted: usize,
    /// Keys dropped by narrowing, total.
    pub narrowed_dropped: u64,
}

/// Replays a stream exactly like [`check_soundness`], but predicting
/// through the specialization overlay (`predict_specialized`) the way an
/// engine with `specs` installed would. Asserts, per transaction:
///
/// * **cache hits** return byte-identical predictions to a fresh profile
///   walk (the `IndirectCache` equivalence proof, checked empirically);
/// * **narrowed** predictions are still supersets of the concrete touch
///   set — i.e. the learned caps are sound on this stream (the engine
///   would additionally recover any violation via its scope check);
/// * **demoted** programs touch only their declared tables.
///
/// # Errors
/// Returns a [`SoundnessError`] naming the keys a specialized prediction
/// missed.
///
/// # Panics
/// Panics if prediction fails or a cache hit diverges from the fresh
/// walk — both are specialization-layer correctness bugs.
pub fn check_specialized_soundness(
    kind: WorkloadKind,
    seed: u64,
    batches: usize,
    batch_size: usize,
    specs: &SpecializationSet,
) -> Result<SpecializedSoundnessReport, SoundnessError> {
    let workload = TestWorkload::new(kind);
    let store = workload.fresh_store();
    let stream = workload.gen_stream(seed, batches, batch_size);
    let interp = Interpreter::new().without_input_validation();

    let mut report = SpecializedSoundnessReport {
        workload: kind.name(),
        spec_version: specs.version,
        checked: 0,
        cache_hits: 0,
        narrowed: 0,
        demoted: 0,
        narrowed_dropped: 0,
    };

    let mut tx_index = 0usize;
    for batch in stream {
        for tx in batch {
            let entry = workload.catalog().entry(tx.program);
            let program = entry.program().clone();
            let spec = specs.for_program(program.name());

            // Demoted programs skip per-key prediction: the check is that
            // execution stays inside the declared tables.
            if spec.is_some_and(|s| s.demoted()) {
                let (touched, _ran) = traced_execute(&interp, &program, &tx.inputs, &store);
                let tables: HashSet<_> = entry
                    .read_tables()
                    .iter()
                    .chain(entry.write_tables())
                    .copied()
                    .collect();
                let missing: Vec<Key> = touched
                    .iter()
                    .filter(|k| !tables.contains(&k.table))
                    .cloned()
                    .collect();
                if !missing.is_empty() {
                    return Err(SoundnessError {
                        program: program.name().to_string(),
                        tx_index,
                        missing,
                    });
                }
                report.checked += 1;
                report.demoted += 1;
                tx_index += 1;
                continue;
            }

            let predicted = match (entry.profile(), spec) {
                (Some(profile), Some(spec)) => {
                    let mut fresh_resolver = StoreResolver { store: &store };
                    let fresh = profile
                        .predict(&tx.inputs, Some(&mut fresh_resolver))
                        .unwrap_or_else(|e| {
                            panic!("predict failed for `{}`: {e:?}", program.name())
                        });
                    let mut resolver = StoreResolver { store: &store };
                    let (prediction, outcome) =
                        predict_specialized(profile, &tx.inputs, Some(&mut resolver), spec)
                            .unwrap_or_else(|e| {
                                panic!(
                                    "specialized predict failed for `{}`: {e:?}",
                                    program.name()
                                )
                            });
                    if outcome.cache_hit {
                        assert_eq!(
                            prediction, fresh,
                            "cache hit for `{}` (tx #{tx_index}) diverged from a fresh walk",
                            program.name()
                        );
                        report.cache_hits += 1;
                    }
                    if outcome.narrowed_dropped > 0 {
                        report.narrowed += 1;
                        report.narrowed_dropped += outcome.narrowed_dropped;
                    }
                    Some(prediction.key_set().into_iter().collect::<HashSet<Key>>())
                }
                (Some(profile), None) => {
                    let mut resolver = StoreResolver { store: &store };
                    let prediction = profile
                        .predict(&tx.inputs, Some(&mut resolver))
                        .unwrap_or_else(|e| {
                            panic!("predict failed for `{}`: {e:?}", program.name())
                        });
                    Some(prediction.key_set().into_iter().collect())
                }
                (None, _) => None,
            };

            let (touched, _ran) = traced_execute(&interp, &program, &tx.inputs, &store);
            if let Some(predicted) = predicted {
                let missing: Vec<Key> =
                    touched.iter().filter(|k| !predicted.contains(*k)).cloned().collect();
                if !missing.is_empty() {
                    return Err(SoundnessError {
                        program: program.name().to_string(),
                        tx_index,
                        missing,
                    });
                }
                report.checked += 1;
            }
            tx_index += 1;
        }
        store.advance_epoch();
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prognosticator_core::Catalog;
    use prognosticator_txir::{Expr, InputBound, ProgramBuilder, TableId};
    use std::collections::HashSet;

    /// v = GET(t0(id)); PUT(t1(v), 1) — a dependent transaction whose
    /// write key is only known after reading the pivot.
    fn dep_catalog() -> Catalog {
        let mut b = ProgramBuilder::new("dep");
        let t = b.table("t0");
        let u = b.table("t1");
        let id = b.input("id", InputBound::int(0, 9));
        let v = b.var("v");
        b.get(v, Expr::key(t, vec![Expr::input(id)]));
        b.put(Expr::key(u, vec![Expr::var(v)]), Expr::lit(1));
        let mut catalog = Catalog::new();
        catalog.register(b.build()).expect("registers");
        catalog
    }

    #[test]
    fn fresh_prediction_is_a_superset() {
        let catalog = dep_catalog();
        let entry = catalog.entry(prognosticator_core::ProgId(0));
        let store = EpochStore::new();
        store.insert_initial(Key::of_ints(TableId(0), &[3]), Value::Int(7));

        let mut resolver = StoreResolver { store: &store };
        let predicted: HashSet<Key> = entry
            .profile()
            .expect("dep has a profile")
            .predict(&[Value::Int(3)], Some(&mut resolver))
            .expect("predicts")
            .key_set()
            .into_iter()
            .collect();
        let interp = Interpreter::new().without_input_validation();
        let (touched, ran) =
            traced_execute(&interp, entry.program(), &[Value::Int(3)], &store);
        assert!(ran);
        assert!(touched.is_subset(&predicted), "missing: {:?}", &touched - &predicted);
        // The committed write landed under the pivot-directed key.
        assert_eq!(store.get_latest(&Key::of_ints(TableId(1), &[7])), Some(Value::Int(1)));
    }

    #[test]
    fn stale_prediction_is_caught_as_unsound() {
        // Predict while the pivot reads 7, then move the pivot before
        // executing: the concrete write goes to t1(8), which the stale
        // prediction does not cover. The oracle's superset check must
        // flag exactly that key.
        let catalog = dep_catalog();
        let entry = catalog.entry(prognosticator_core::ProgId(0));
        let store = EpochStore::new();
        store.insert_initial(Key::of_ints(TableId(0), &[3]), Value::Int(7));

        let mut resolver = StoreResolver { store: &store };
        let predicted: HashSet<Key> = entry
            .profile()
            .expect("dep has a profile")
            .predict(&[Value::Int(3)], Some(&mut resolver))
            .expect("predicts")
            .key_set()
            .into_iter()
            .collect();

        store.put(&Key::of_ints(TableId(0), &[3]), Value::Int(8));
        let interp = Interpreter::new().without_input_validation();
        let (touched, ran) =
            traced_execute(&interp, entry.program(), &[Value::Int(3)], &store);
        assert!(ran);
        let missing: Vec<Key> =
            touched.iter().filter(|k| !predicted.contains(*k)).cloned().collect();
        assert_eq!(missing, vec![Key::of_ints(TableId(1), &[8])]);
        let err = SoundnessError { program: "dep".into(), tx_index: 0, missing };
        assert!(err.to_string().contains("unsound RWS"));
    }

    #[test]
    fn failed_executions_do_not_commit() {
        let catalog = dep_catalog();
        let entry = catalog.entry(prognosticator_core::ProgId(0));
        let store = EpochStore::new();
        // Pivot holds Unit (missing) — key instantiation from Unit still
        // runs; what matters here is that the tracing shim records reads
        // of absent keys too.
        let interp = Interpreter::new().without_input_validation();
        let (touched, _ran) =
            traced_execute(&interp, entry.program(), &[Value::Int(5)], &store);
        assert!(touched.contains(&Key::of_ints(TableId(0), &[5])));
    }
}
