//! One enum over the bundled workloads — the three standard benchmarks
//! plus the adversarial scenario pack — so oracles and strategies can be
//! workload-parametric without generics.

use prognosticator_core::{Catalog, TxRequest};
use prognosticator_storage::EpochStore;
use prognosticator_workloads::{
    AdaptiveConfig, AdaptiveWorkload, AdversarialConfig, AdversarialMix, AdversarialWorkload,
    DeterministicRng, RubisConfig, RubisWorkload, SmallBankConfig, SmallBankWorkload, TpccConfig,
    TpccWorkload,
};
use std::sync::Arc;

/// Which workload a test exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// SmallBank: 6 short banking transactions over 3 tables.
    SmallBank,
    /// TPC-C (the paper's subset): NewOrder/Payment/OrderStatus.
    Tpcc,
    /// RUBiS: auction-site mix.
    Rubis,
    /// Adversarial: Zipfian (s = 1.3) hot-key RMW storm.
    HotSkew,
    /// Adversarial: long snapshot scans under a concurrent write storm.
    ScanStorm,
    /// Adversarial: YCSB-style CRUD mix over a skewed key space.
    YcsbMix,
    /// Adversarial: indirect-key chains racing link rewrites (DT pivots).
    ChainPivot,
    /// Adaptive-prediction scenario: widened wide-range scans (static
    /// over-approximation), a tail-touch storm, and repeat-parameter
    /// indirect payments — the feedback loop's native workload.
    Adaptive,
}

impl WorkloadKind {
    /// The three standard workloads, for "run everything" loops. The
    /// adversarial pack is separate ([`WorkloadKind::ADVERSARIAL`]) so
    /// existing suites keep their cell counts.
    pub const ALL: [WorkloadKind; 3] =
        [WorkloadKind::SmallBank, WorkloadKind::Tpcc, WorkloadKind::Rubis];

    /// The four adversarial scenarios (ISSUE 7's scenario pack).
    pub const ADVERSARIAL: [WorkloadKind; 4] = [
        WorkloadKind::HotSkew,
        WorkloadKind::ScanStorm,
        WorkloadKind::YcsbMix,
        WorkloadKind::ChainPivot,
    ];

    /// Stable lowercase name (used in reports and reproducer file names).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::SmallBank => "smallbank",
            WorkloadKind::Tpcc => "tpcc",
            WorkloadKind::Rubis => "rubis",
            WorkloadKind::HotSkew => "hot_skew",
            WorkloadKind::ScanStorm => "scan_storm",
            WorkloadKind::YcsbMix => "ycsb_mix",
            WorkloadKind::ChainPivot => "chain_pivot",
            WorkloadKind::Adaptive => "adaptive",
        }
    }

    fn adversarial_mix(self) -> Option<AdversarialMix> {
        match self {
            WorkloadKind::HotSkew => Some(AdversarialMix::HotSkew),
            WorkloadKind::ScanStorm => Some(AdversarialMix::ScanStorm),
            WorkloadKind::YcsbMix => Some(AdversarialMix::YcsbMix),
            WorkloadKind::ChainPivot => Some(AdversarialMix::ChainPivot),
            _ => None,
        }
    }
}

enum Generator {
    SmallBank(SmallBankWorkload),
    Tpcc(TpccWorkload),
    Rubis(RubisWorkload),
    Adversarial(AdversarialWorkload),
    Adaptive(AdaptiveWorkload),
}

/// A registered workload at test scale: its catalog plus a batch
/// generator and initial-state populator.
///
/// The configurations are deliberately small (tens of rows, a couple of
/// warehouses) so contention is high and schedule bugs surface quickly.
pub struct TestWorkload {
    kind: WorkloadKind,
    catalog: Arc<Catalog>,
    generator: Generator,
}

impl std::fmt::Debug for TestWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TestWorkload").field("kind", &self.kind).finish()
    }
}

impl TestWorkload {
    /// Registers `kind` at test scale into a fresh catalog.
    ///
    /// # Panics
    /// Panics if workload registration fails — the bundled programs are
    /// known-good, so a failure here is a bug in the analyzer.
    pub fn new(kind: WorkloadKind) -> Self {
        let mut catalog = Catalog::new();
        let generator = match kind {
            WorkloadKind::SmallBank => Generator::SmallBank(
                SmallBankWorkload::register(
                    &mut catalog,
                    SmallBankConfig { customers: 32, hotspot_pct: 25, hotspot_size: 4 },
                )
                .expect("smallbank registers"),
            ),
            WorkloadKind::Tpcc => Generator::Tpcc(
                TpccWorkload::register(
                    &mut catalog,
                    TpccConfig {
                        warehouses: 2,
                        districts: 4,
                        items: 40,
                        customers: 8,
                        nurand: true,
                    },
                )
                .expect("tpcc registers"),
            ),
            WorkloadKind::Rubis => Generator::Rubis(
                RubisWorkload::register(&mut catalog, RubisConfig { users: 40, items: 40 })
                    .expect("rubis registers"),
            ),
            WorkloadKind::Adaptive => Generator::Adaptive(
                AdaptiveWorkload::register(&mut catalog, AdaptiveConfig::default())
                    .expect("adaptive registers"),
            ),
            adversarial => Generator::Adversarial(
                AdversarialWorkload::register(
                    &mut catalog,
                    AdversarialConfig {
                        keys: 48,
                        zipf_s_hundredths: 130,
                        mix: adversarial.adversarial_mix().expect("adversarial kind"),
                    },
                )
                .expect("adversarial registers"),
            ),
        };
        TestWorkload { kind, catalog: Arc::new(catalog), generator }
    }

    /// Which workload this is.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// The catalog holding this workload's registered programs.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// A fresh store holding the workload's initial state.
    pub fn fresh_store(&self) -> Arc<EpochStore> {
        let store = Arc::new(EpochStore::new());
        self.populate_store(&store);
        store
    }

    /// Populates an existing `store` with the workload's initial state
    /// (for harnesses — like the pipeline — that create stores
    /// themselves).
    pub fn populate_store(&self, store: &EpochStore) {
        match &self.generator {
            Generator::SmallBank(w) => w.populate(store),
            Generator::Tpcc(w) => w.populate(store),
            Generator::Rubis(w) => w.populate(store),
            Generator::Adversarial(w) => w.populate(store),
            Generator::Adaptive(w) => w.populate(store),
        }
    }

    /// Generates a batch of `size` requests from `rng`.
    pub fn gen_batch(&self, rng: &mut DeterministicRng, size: usize) -> Vec<TxRequest> {
        match &self.generator {
            Generator::SmallBank(w) => w.gen_batch(rng, size),
            Generator::Tpcc(w) => w.gen_batch(rng, size),
            Generator::Rubis(w) => w.gen_batch(rng, size),
            Generator::Adversarial(w) => w.gen_batch(rng, size),
            Generator::Adaptive(w) => w.gen_batch(rng, size),
        }
    }

    /// Generates `batches` batches of `batch_size` requests from one
    /// seeded stream — the canonical input shape for the oracles.
    pub fn gen_stream(&self, seed: u64, batches: usize, batch_size: usize) -> Vec<Vec<TxRequest>> {
        let mut rng = DeterministicRng::new(seed);
        (0..batches).map(|_| self.gen_batch(&mut rng, batch_size)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_register_and_generate() {
        for kind in WorkloadKind::ALL
            .into_iter()
            .chain(WorkloadKind::ADVERSARIAL)
            .chain([WorkloadKind::Adaptive])
        {
            let w = TestWorkload::new(kind);
            let stream = w.gen_stream(7, 2, 5);
            assert_eq!(stream.len(), 2);
            assert!(stream.iter().all(|b| b.len() == 5), "{kind:?}");
            let store = w.fresh_store();
            assert!(store.key_count() > 0, "{kind:?} populates");
        }
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let w = TestWorkload::new(WorkloadKind::SmallBank);
        assert_eq!(w.gen_stream(3, 2, 8), w.gen_stream(3, 2, 8));
        assert_ne!(w.gen_stream(3, 2, 8), w.gen_stream(4, 2, 8));
    }
}
