#![warn(missing_docs)]
//! Deterministic testkit for the Prognosticator workspace.
//!
//! Production code promises one thing above all else: every replica fed
//! the same batches reaches the same state, no matter how many worker
//! threads it runs or how its scheduler interleaves them. This crate turns
//! that promise into three executable oracles:
//!
//! * [`schedule`] — a schedule-exploration fuzzer. It drives the engine's
//!   [`ReadyPolicy`](prognosticator_core::ReadyPolicy) seam with seeded
//!   shuffle policies and worker-count sweeps, asserting byte-identical
//!   per-transaction outcome vectors and store digests across every
//!   explored schedule.
//! * [`differential`] — a cross-system differential harness running one
//!   generated batch stream through the threaded [`Engine`]
//!   (several worker counts), the `SEQ` baseline, and the discrete-event
//!   simulator, diffing outcomes and digests. On a mismatch it
//!   delta-debugs the batch stream down to a minimal failing reproducer
//!   and writes it to a `.reproducer.json` file.
//! * [`soundness`] — an RWS-soundness oracle: a tracing shim over txir
//!   interpretation records the concrete keys each transaction touches and
//!   checks that [`Profile::predict`](prognosticator_symexec::Profile::predict)
//!   returned a superset, reporting the over-approximation ratio per
//!   workload.
//! * [`recovery`] — a crash-recovery fuzzer: for each seeded crash point
//!   it kills a WAL-backed replica mid-batch (optionally under a torn
//!   write, failed fsync, or partial snapshot), restarts it from the
//!   durable prefix via faults-quiet replay, re-executes the lost tail,
//!   and requires byte-identical outcome traces and digests versus a
//!   never-crashed reference across worker counts.
//!
//! * [`isolation`] — a polygraph-style serializability checker: it
//!   rebuilds the WR/WW/RW dependency graph from the flight recorder's
//!   per-transaction read/write version provenance and certifies
//!   acyclicity against the batch order, shrinking any violation to a
//!   shortest-cycle witness. A mutation harness forges known
//!   violations (swapped commits, stale reads, dropped lock releases)
//!   to prove the checker rejects bad histories, and every other
//!   oracle calls it opportunistically whenever recording is on.
//!
//! * [`chaos`] — a chaos-campaign oracle: the full pipeline plus the
//!   retrying client session under a seeded, eventually-healing
//!   [`ChaosPlan`](prognosticator_core::ChaosPlan) (leader churn,
//!   asymmetric partitions, replica restarts, duplicate/reorder storms,
//!   overload bursts, disk faults), asserting terminal outcomes for every
//!   request, post-heal liveness, replica determinism across worker
//!   counts, and log-level exactly-once.
//!
//! * [`wire`] — a wire-protocol fuzzer: a real TCP
//!   [`Server`](prognosticator::Server) front-end under a seeded
//!   population of hostile clients (malformed frames, truncated writes,
//!   connection storms, stalled readers, mid-request disconnects) drawn
//!   from the `hostile_clients` chaos plan, asserting the server never
//!   panics, never leaks sessions, keeps its terminal-outcome accounting
//!   balanced, and that the committed stream a hostile campaign produced
//!   replays to byte-identical digests at every worker count.
//!
//! [`strategies`] supplies `proptest` strategies generating
//! [`TxRequest`](prognosticator_core::TxRequest) batches and seeded
//! [`FaultPlan`](prognosticator_core::FaultPlan)s over all three bundled
//! workloads (SmallBank, TPC-C, RUBiS), and [`workload`] wraps the three
//! workload generators behind one enum so every oracle is
//! workload-parametric.
//!
//! [`Engine`]: prognosticator_core::Engine

pub mod chaos;
pub mod differential;
pub mod isolation;
pub mod recovery;
pub mod schedule;
pub mod soundness;
pub mod strategies;
pub mod wire;
pub mod workload;

/// Records an [`OracleFailure`](prognosticator_obs::Event::OracleFailure)
/// flight event and dumps every live flight recorder to
/// `flightrec-<reason>-*.jsonl` (see `prognosticator_obs::set_dump_dir`).
///
/// Called by the oracles just before they panic or return a mismatch, so
/// a CI failure ships the recorded event history next to the shrunk
/// reproducer. A no-op dump (recording disabled process-wide) costs one
/// atomic load.
pub fn report_oracle_failure(oracle: &str, detail: &str, reason: &str) {
    if prognosticator_obs::default_enabled() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Harness recorders live in their own id namespace, far above
        // replica (0..) and WAL (1<<32..) recorders.
        static NEXT_HARNESS: AtomicU64 = AtomicU64::new(1 << 48);
        let rec = prognosticator_obs::FlightRecorder::new(
            NEXT_HARNESS.fetch_add(1, Ordering::Relaxed),
        );
        let (oracle, detail) = (oracle.to_owned(), detail.to_owned());
        rec.record(move || prognosticator_obs::Event::OracleFailure { oracle, detail });
        prognosticator_obs::dump_all(reason);
    }
}

pub use chaos::{run_chaos, ChaosOracleConfig, ChaosReport, ChaosViolation};
pub use differential::{run_differential, DifferentialConfig, DifferentialReport, Mismatch};
pub use isolation::{
    check_replica_trace, check_trace, inject_violation, run_isolation, trace_stream,
    trace_stream_with, CycleWitness, Edge, EdgeKind, IsolationConfig, IsolationReport,
    IsolationViolation, Mutation, Trace, TxId, Verdict,
};
pub use recovery::{
    crash_batch_for, run_crash_recovery, CrashRecoveryReport, RecoveryFuzzConfig, RecoveryMismatch,
};
pub use schedule::{explore_schedules, ScheduleReport, ScheduleSweep};
pub use wire::{run_wire_fuzz, WireFuzzConfig, WireFuzzReport, WireFuzzViolation};
pub use soundness::{
    check_soundness, check_soundness_sharded, check_specialized_soundness, SoundnessError,
    SoundnessReport, SpecializedSoundnessReport, TemplateSoundness,
};
pub use strategies::{batch_strategy, fault_plan_strategy, tx_request_strategy, workload_strategy};
pub use workload::{TestWorkload, WorkloadKind};
