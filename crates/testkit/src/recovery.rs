//! Crash-recovery fuzzer.
//!
//! For each seeded crash point the harness runs the same workload twice:
//!
//! 1. a **reference** run that never crashes, recording the full
//!    per-transaction outcome trace and final store digest;
//! 2. a **crashed** run that appends every committed batch to a real
//!    on-disk WAL ([`WalStore`]) before executing it, kills the replica
//!    at the scheduled crash batch — optionally with a seeded disk fault
//!    armed (torn final frame, failed fsync, partial snapshot) — then
//!    restarts it: the durable prefix is decoded back out of the WAL,
//!    replayed faults-quiet through [`Replica::recover`], and the batches
//!    lost to the crash (or to the torn tail) are re-executed live.
//!
//! The crashed run must end with the byte-identical outcome trace and
//! store digest as the reference — across worker counts, workloads, and
//! disk-fault modes. On a mismatch the harness writes a
//! `.reproducer.json` artifact capturing the exact coordinates.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator::TxBatchCodec;
use prognosticator_bench::json::Json;
use prognosticator_consensus::raft::Record;
use prognosticator_consensus::{DiskFault, DurabilityStats, LogStore, WalStore};
use prognosticator_core::{
    baselines, DiskFaultKind, FaultPlan, Replica, TxOutcome, TxRequest,
};
use std::path::PathBuf;

/// Configuration of one crash-recovery check.
#[derive(Debug, Clone)]
pub struct RecoveryFuzzConfig {
    /// Workload generating the batch stream.
    pub workload: WorkloadKind,
    /// Seed of both the request stream and the crash point.
    pub seed: u64,
    /// Batches in the run.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Worker counts to sweep; each must recover identically.
    pub worker_counts: Vec<usize>,
    /// Shard counts to sweep; each (worker × shard) leg must recover
    /// identically (DESIGN.md §3.5).
    pub shard_counts: Vec<usize>,
    /// Per-mille rate of injected worker panics in the live run (replay
    /// must reproduce their aborts without re-injecting them).
    pub worker_panic_per_mille: u16,
    /// Arm a seeded disk fault at the crash point.
    pub disk_faults: bool,
    /// Where `.reproducer.json` artifacts are written on failure.
    pub artifact_dir: PathBuf,
    /// Scratch directory for the on-disk WAL files.
    pub wal_dir: PathBuf,
}

impl RecoveryFuzzConfig {
    /// The acceptance-bar configuration: {1, 2, 4} workers, worker panics
    /// active, disk faults armed, artifacts under `target/testkit`.
    pub fn standard(workload: WorkloadKind, seed: u64) -> Self {
        let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        RecoveryFuzzConfig {
            workload,
            seed,
            batches: 6,
            batch_size: 16,
            worker_counts: vec![1, 2, 4],
            shard_counts: vec![1],
            worker_panic_per_mille: 120,
            disk_faults: true,
            artifact_dir: target.join("testkit"),
            wal_dir: target.join("tmp/recovery"),
        }
    }
}

/// What one clean crash-recovery check established.
#[derive(Debug, Clone)]
pub struct CrashRecoveryReport {
    /// The batch after whose WAL append the replica was killed.
    pub crash_batch: u64,
    /// The disk fault armed at the crash, if any.
    pub disk_fault: Option<DiskFaultKind>,
    /// Batches that survived in the WAL (per worker count they are
    /// identical, so this is from the last leg).
    pub durable_batches: usize,
    /// Batches re-executed live after replay (lost to the crash).
    pub caught_up_batches: usize,
    /// Durability counters from the crashed leg's WAL.
    pub stats: DurabilityStats,
    /// Microseconds spent in recovery replay (summed over worker legs).
    pub replay_us: u64,
}

/// A recovery-soundness violation, with its artifact.
#[derive(Debug)]
pub struct RecoveryMismatch {
    /// Human-readable description of the first divergence.
    pub description: String,
    /// Where the reproducer JSON was written (empty if writing failed).
    pub reproducer: PathBuf,
}

/// Maps the core fault decision onto the WAL's fault enum (core sits
/// below consensus in the dependency graph, so it has its own mirror).
pub fn to_wal_fault(kind: DiskFaultKind) -> DiskFault {
    match kind {
        DiskFaultKind::TornFinalFrame => DiskFault::TornFinalFrame,
        DiskFaultKind::FailedFsync => DiskFault::FailedFsync,
        DiskFaultKind::PartialSnapshot => DiskFault::PartialSnapshot,
    }
}

/// One batch's observable result, projected for comparison.
type BatchTrace = (Vec<TxOutcome>, usize, usize);

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The crash batch for `seed`: deterministic, spread over the run.
pub fn crash_batch_for(seed: u64, batches: usize) -> u64 {
    splitmix(seed) % batches as u64
}

fn run_reference(
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    plan: &FaultPlan,
    workers: usize,
    shards: usize,
) -> (Vec<BatchTrace>, u64) {
    let mut replica = Replica::with_store(
        prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        std::sync::Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.set_fault_plan(Some(plan.clone()));
    let mut trace = Vec::new();
    for batch in stream {
        let o = replica.execute_batch(batch.clone());
        trace.push((o.outcomes, o.aborted, o.carried_over.len()));
    }
    let digest = replica.state_digest();
    // Reference legs double as isolation checks when recording is on.
    crate::isolation::assert_replica_serializable(&replica, "recovery reference");
    replica.shutdown();
    (trace, digest)
}

/// Runs the crashed leg for one worker count. Returns the recovered
/// trace/digest plus durable/caught-up batch counts, WAL stats, and
/// replay time.
#[allow(clippy::type_complexity)]
fn run_crashed(
    config: &RecoveryFuzzConfig,
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    plan: &FaultPlan,
    workers: usize,
    shards: usize,
    disk_fault: Option<DiskFaultKind>,
) -> Result<(Vec<BatchTrace>, u64, usize, usize, DurabilityStats, u64), String> {
    let dir = config.wal_dir.join(format!(
        "{}-s{}-w{}-p{}-{}",
        config.workload.name(),
        config.seed,
        workers,
        shards,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Live phase: append-then-execute until the crash point. ----
    let mut wal: WalStore<Vec<TxRequest>, TxBatchCodec> =
        WalStore::open(&dir, TxBatchCodec).map_err(|e| format!("wal open: {e}"))?;
    let mut replica = Replica::with_store(
        prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        std::sync::Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.set_fault_plan(Some(plan.clone()));
    let mut pre_crash: Vec<BatchTrace> = Vec::new();
    for (i, batch) in stream.iter().enumerate() {
        let at_crash = plan.crashes_at(i as u64);
        if at_crash {
            if let Some(kind) = disk_fault {
                wal.arm_fault(to_wal_fault(kind));
            }
        }
        // Durability before visibility: the batch is in the WAL before
        // any replica executes it (it is "committed" by consensus here).
        let record =
            Record { term: 1, id: i as u64 + 1, payload: Some(batch.clone()) };
        wal.append(&record);
        if at_crash {
            // Kill the node mid-batch: the append may be torn/unsynced,
            // the execution never happens, all volatile state dies.
            break;
        }
        let o = replica.execute_batch(batch.clone());
        pre_crash.push((o.outcomes, o.aborted, o.carried_over.len()));
    }
    replica.shutdown();
    drop(replica);
    let live_stats = wal.stats();
    let _ = wal.simulate_crash().map_err(|e| format!("simulate_crash: {e}"))?;

    // ---- Recovery: reopen the WAL, decode the durable prefix. ----
    let wal: WalStore<Vec<TxRequest>, TxBatchCodec> =
        WalStore::open(&dir, TxBatchCodec).map_err(|e| format!("wal reopen: {e}"))?;
    // Live-phase fsync/append counters + recovery-phase torn-tail drops.
    let stats = live_stats.merge(&wal.stats());
    let durable: Vec<Vec<TxRequest>> = wal
        .records()
        .into_iter()
        .filter_map(|r| r.payload)
        .collect();
    let durable_batches = durable.len();
    if durable_batches < pre_crash.len() {
        // A torn/unsynced append can only ever lose the *final* frame —
        // everything executed before the crash batch must have survived.
        return Err(format!(
            "WAL lost executed batches: {} durable < {} executed",
            durable_batches,
            pre_crash.len()
        ));
    }
    let (mut recovered, report) = Replica::recover(
        prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        std::sync::Arc::clone(workload.catalog()),
        workload.fresh_store(),
        durable.into_iter().map(prognosticator_core::LogRecord::Batch).collect(),
        Some(plan),
        None,
    );
    let mut trace: Vec<BatchTrace> = report
        .outcomes
        .iter()
        .map(|o| (o.outcomes.clone(), o.aborted, o.carried_over.len()))
        .collect();

    // The replayed prefix of the trace must equal what the pre-crash
    // incarnation observed (recovery soundness at the outcome level).
    if trace[..pre_crash.len()] != pre_crash[..] {
        recovered.shutdown();
        return Err("replayed outcomes diverged from pre-crash outcomes".into());
    }

    // ---- Heal: re-execute everything the crash lost, live. ----
    let caught_up = stream.len() - durable_batches;
    for batch in &stream[durable_batches..] {
        let o = recovered.execute_batch(batch.clone());
        trace.push((o.outcomes, o.aborted, o.carried_over.len()));
    }
    let digest = recovered.state_digest();
    // The recovered replica replayed plus re-executed everything on a
    // fresh store, so its trace is a complete history: check it too.
    if let Some(msg) = crate::isolation::check_replica_trace(&recovered, "recovered replica") {
        recovered.shutdown();
        return Err(msg);
    }
    recovered.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((trace, digest, durable_batches, caught_up, stats, report.replay_us))
}

fn reproducer_json(config: &RecoveryFuzzConfig, crash: u64, description: &str) -> Json {
    Json::obj(vec![
        ("check", Json::Str("crash-recovery".into())),
        ("workload", Json::Str(config.workload.name().into())),
        ("seed", Json::Int(config.seed as i64)),
        ("batches", Json::Int(config.batches as i64)),
        ("batch_size", Json::Int(config.batch_size as i64)),
        ("crash_batch", Json::Int(crash as i64)),
        ("disk_faults", Json::Bool(config.disk_faults)),
        (
            "worker_counts",
            Json::Arr(config.worker_counts.iter().map(|&w| Json::Int(w as i64)).collect()),
        ),
        (
            "shard_counts",
            Json::Arr(config.shard_counts.iter().map(|&s| Json::Int(s as i64)).collect()),
        ),
        ("worker_panic_per_mille", Json::Int(i64::from(config.worker_panic_per_mille))),
        ("mismatch", Json::Str(description.into())),
    ])
}

/// Runs one full crash-recovery check: reference vs crashed-and-recovered
/// runs for every configured worker count, requiring byte-identical
/// outcome traces and digests.
///
/// # Errors
/// Returns [`RecoveryMismatch`] (with a written reproducer artifact) when
/// any leg diverges from its reference.
pub fn run_crash_recovery(
    config: &RecoveryFuzzConfig,
) -> Result<CrashRecoveryReport, Box<RecoveryMismatch>> {
    let workload = TestWorkload::new(config.workload);
    let stream = workload.gen_stream(config.seed, config.batches, config.batch_size);
    let crash = crash_batch_for(config.seed, config.batches);
    let mut plan = FaultPlan::quiet(config.seed)
        .with_worker_panics(config.worker_panic_per_mille)
        .with_crash_at(crash);
    if config.disk_faults {
        plan = plan.with_disk_faults(1000);
    }
    let disk_fault = plan.disk_fault(crash);

    let fail = |description: String| -> Box<RecoveryMismatch> {
        crate::report_oracle_failure("crash-recovery", &description, "recovery-oracle-failure");
        let json = reproducer_json(config, crash, &description);
        let path = config.artifact_dir.join(format!(
            "{}-crash{}.reproducer.json",
            config.workload.name(),
            config.seed
        ));
        let written = std::fs::create_dir_all(&config.artifact_dir)
            .and_then(|()| std::fs::write(&path, json.render()))
            .is_ok();
        Box::new(RecoveryMismatch {
            description,
            reproducer: if written { path } else { PathBuf::new() },
        })
    };

    let mut durable_batches = 0;
    let mut caught_up_batches = 0;
    let mut stats = DurabilityStats::default();
    let mut replay_us = 0;
    let mut reference: Option<(Vec<BatchTrace>, u64)> = None;
    for &workers in &config.worker_counts {
        for &shards in &config.shard_counts {
            let (ref_trace, ref_digest) =
                run_reference(&workload, &stream, &plan, workers, shards);
            // Worker and shard counts must also agree with each other (the
            // existing determinism properties), which makes any recovery
            // divergence attributable to the crash path rather than
            // scheduling or partitioning.
            if let Some((first_trace, first_digest)) = &reference {
                if *first_trace != ref_trace || *first_digest != ref_digest {
                    return Err(fail(format!(
                        "reference runs diverged across legs (workers={workers}, \
                         shards={shards})"
                    )));
                }
            } else {
                reference = Some((ref_trace.clone(), ref_digest));
            }
            match run_crashed(config, &workload, &stream, &plan, workers, shards, disk_fault) {
                Ok((trace, digest, durable, caught_up, leg_stats, leg_replay_us)) => {
                    if trace != ref_trace {
                        return Err(fail(format!(
                            "recovered outcome trace diverged from never-crashed reference \
                             (workers={workers}, shards={shards}, crash_batch={crash}, \
                             disk_fault={disk_fault:?})"
                        )));
                    }
                    if digest != ref_digest {
                        return Err(fail(format!(
                            "recovered digest {digest:#x} != reference {ref_digest:#x} \
                             (workers={workers}, shards={shards}, crash_batch={crash}, \
                             disk_fault={disk_fault:?})"
                        )));
                    }
                    durable_batches = durable;
                    caught_up_batches = caught_up;
                    stats = leg_stats;
                    replay_us += leg_replay_us;
                }
                Err(description) => {
                    return Err(fail(format!(
                        "{description} (workers={workers}, shards={shards}, \
                         crash_batch={crash}, disk_fault={disk_fault:?})"
                    )))
                }
            }
        }
    }
    Ok(CrashRecoveryReport {
        crash_batch: crash,
        disk_fault,
        durable_batches,
        caught_up_batches,
        stats,
        replay_us,
    })
}
