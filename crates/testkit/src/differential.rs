//! Cross-system differential harness.
//!
//! One generated batch stream is replayed through every execution system
//! in the workspace and the results are diffed pairwise, asserting only
//! the equivalences the engine actually guarantees:
//!
//! * the threaded [`Engine`](prognosticator_core::Engine) at every swept
//!   worker count, and the discrete-event simulator, must agree on the
//!   per-transaction outcome vector of every batch *and* the final store
//!   digest — with or without an injected [`FaultPlan`];
//! * under a quiet plan, the `NODO` engine configuration (which preserves
//!   client order) must reproduce the `SEQ` baseline's outcomes and
//!   digest, and both simulator baselines must concur;
//! * under a quiet plan, the parallel variants must commit exactly the
//!   transactions `SEQ` commits (counts; their digests may differ because
//!   MF/SF replay failed transactions in a different serial order).
//!
//! On a mismatch the harness delta-debugs the batch stream down to a
//! minimal failing reproducer and writes it as JSON next to the test
//! binary (or wherever [`DifferentialConfig::artifact_dir`] points), so a
//! CI failure ships a ready-to-replay counterexample.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator_bench::json::Json;
use prognosticator_bench::sim::{CostModel, SimReplica, SimSeq};
use prognosticator_core::baselines::{self, SeqEngine};
use prognosticator_core::{Catalog, FaultPlan, Replica, TxOutcome, TxRequest};
use prognosticator_txir::Value;
use std::path::PathBuf;
use std::sync::Arc;

/// What to run and compare.
#[derive(Debug, Clone)]
pub struct DifferentialConfig {
    /// Workload generating the batch stream.
    pub workload: WorkloadKind,
    /// Seed of the request stream.
    pub stream_seed: u64,
    /// Batches per run.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Worker counts for the threaded-engine legs.
    pub worker_counts: Vec<usize>,
    /// Shard counts for the threaded-engine legs: each worker count is
    /// run at each shard count and every leg must agree byte-for-byte
    /// (DESIGN.md §3.5 — sharding must not be observable in outcomes).
    pub shard_counts: Vec<usize>,
    /// Optional fault plan. When set, the `SEQ` legs are skipped (the
    /// serial baseline does not consult fault plans) and only the
    /// engine/simulator legs are diffed.
    pub fault_plan: Option<FaultPlan>,
    /// Where `.reproducer.json` files are written on mismatch.
    pub artifact_dir: PathBuf,
}

impl DifferentialConfig {
    /// The acceptance-bar configuration: {1, 2, 4} workers, quiet plan,
    /// artifacts under `target/testkit`.
    pub fn standard(workload: WorkloadKind, stream_seed: u64) -> Self {
        DifferentialConfig {
            workload,
            stream_seed,
            batches: 3,
            batch_size: 20,
            worker_counts: vec![1, 2, 4],
            shard_counts: vec![1],
            fault_plan: None,
            artifact_dir: PathBuf::from("target/testkit"),
        }
    }
}

/// A confirmed cross-system divergence, with its shrunk reproducer.
#[derive(Debug)]
pub struct Mismatch {
    /// Human-readable diff of the first divergence found.
    pub description: String,
    /// Where the reproducer JSON was written (empty if writing failed).
    pub reproducer: PathBuf,
    /// Transactions remaining after delta-debugging.
    pub shrunk_transactions: usize,
}

/// What a clean differential run established.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Execution legs compared (engines + simulators + serial baselines).
    pub systems: usize,
    /// Transactions replayed per leg.
    pub transactions: usize,
    /// Transactions committed (per the engine reference leg).
    pub committed: usize,
    /// Transactions deterministically aborted (engine reference leg).
    pub aborted: usize,
}

struct Leg {
    name: String,
    outcomes: Vec<Vec<TxOutcome>>,
    digest: u64,
    committed: usize,
}

fn engine_leg(
    name: String,
    config: prognosticator_core::SchedulerConfig,
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    plan: Option<FaultPlan>,
) -> Leg {
    let mut replica =
        Replica::with_store(config, Arc::clone(workload.catalog()), workload.fresh_store());
    replica.set_fault_plan(plan);
    let mut outcomes = Vec::new();
    let mut committed = 0;
    for batch in stream {
        let out = replica.execute_batch(batch.clone());
        committed += out.committed;
        outcomes.push(out.outcomes);
    }
    let digest = replica.state_digest();
    // Engine legs double as isolation checks whenever recording is on.
    crate::isolation::assert_replica_serializable(&replica, &name);
    replica.shutdown();
    Leg { name, outcomes, digest, committed }
}

fn sim_leg(
    name: String,
    config: prognosticator_core::SchedulerConfig,
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
    plan: Option<FaultPlan>,
) -> Leg {
    let mut sim = SimReplica::new(
        config,
        CostModel::default(),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    sim.set_fault_plan(plan);
    let mut outcomes = Vec::new();
    let mut committed = 0;
    for batch in stream {
        let out = sim.execute_batch(batch.clone());
        committed += out.committed;
        outcomes.push(out.outcomes);
    }
    Leg { name, digest: sim.state_digest(), outcomes, committed }
}

fn seq_leg(workload: &TestWorkload, stream: &[Vec<TxRequest>]) -> Leg {
    let mut seq = SeqEngine::new(Arc::clone(workload.catalog()), workload.fresh_store());
    let mut outcomes = Vec::new();
    let mut committed = 0;
    for batch in stream {
        let out = seq.execute_batch(batch.clone());
        committed += out.committed;
        outcomes.push(out.outcomes);
    }
    let digest = seq.store().state_digest();
    Leg { name: "seq".into(), outcomes, digest, committed }
}

fn simseq_leg(workload: &TestWorkload, stream: &[Vec<TxRequest>]) -> Leg {
    let mut seq = SimSeq::new(
        CostModel::default(),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    let mut outcomes = Vec::new();
    let mut committed = 0;
    for batch in stream {
        let out = seq.execute_batch(batch.clone());
        committed += out.committed;
        outcomes.push(out.outcomes);
    }
    Leg { name: "sim-seq".into(), digest: seq.state_digest(), outcomes, committed }
}

fn diff_legs(a: &Leg, b: &Leg, digests: bool) -> Option<String> {
    for (i, (la, lb)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        if la != lb {
            return Some(format!(
                "outcome vectors diverge in batch {i}: {} says {la:?}, {} says {lb:?}",
                a.name, b.name
            ));
        }
    }
    if digests && a.digest != b.digest {
        return Some(format!(
            "store digests diverge: {} = {:#018x}, {} = {:#018x}",
            a.name, a.digest, b.name, b.digest
        ));
    }
    None
}

/// Runs every system over `stream` and returns the first divergence, or
/// the reference leg's stats if all agree.
fn check_stream(
    config: &DifferentialConfig,
    workload: &TestWorkload,
    stream: &[Vec<TxRequest>],
) -> Result<(usize, Leg), String> {
    let plan = &config.fault_plan;
    let mut systems = 0;

    // Engine legs across (worker × shard) counts, plus the simulator:
    // outcome vectors and digests must be byte-identical (schedule
    // independence; shard independence per DESIGN.md §3.5).
    let mut parallel_legs = Vec::new();
    for &workers in &config.worker_counts {
        for &shards in &config.shard_counts {
            parallel_legs.push(engine_leg(
                format!("engine[mq-mf,w={workers},s={shards}]"),
                prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(workers) },
                workload,
                stream,
                plan.clone(),
            ));
            systems += 1;
        }
    }
    parallel_legs.push(sim_leg(
        format!("sim[mq-mf,w={}]", config.worker_counts[0]),
        baselines::mq_mf(config.worker_counts[0]),
        workload,
        stream,
        plan.clone(),
    ));
    systems += 1;
    let (reference, rest) = parallel_legs.split_first().expect("at least one leg");
    for leg in rest {
        if let Some(diff) = diff_legs(reference, leg, true) {
            return Err(diff);
        }
    }

    // SEQ legs: only meaningful under a quiet plan (the serial baseline
    // does not consult fault plans). NODO preserves client order, so it
    // must reproduce SEQ exactly; the parallel variants may serialize
    // retried transactions differently, so only commit counts compare.
    if plan.is_none() {
        let seq = seq_leg(workload, stream);
        let nodo = engine_leg(
            format!("engine[nodo,w={}]", config.worker_counts[0]),
            baselines::nodo(config.worker_counts[0]),
            workload,
            stream,
            None,
        );
        let simseq = simseq_leg(workload, stream);
        systems += 3;
        if let Some(diff) = diff_legs(&seq, &nodo, true) {
            return Err(diff);
        }
        if let Some(diff) = diff_legs(&seq, &simseq, true) {
            return Err(diff);
        }
        if reference.committed != seq.committed {
            return Err(format!(
                "commit counts diverge: {} committed {}, seq committed {}",
                reference.name, reference.committed, seq.committed
            ));
        }
    }

    let reference = parallel_legs.into_iter().next().expect("reference leg");
    Ok((systems, reference))
}

/// Greedy delta-debugging over a batch stream: repeatedly drop whole
/// batches, then chunks of transactions (halving chunk sizes down to 1),
/// keeping any removal under which `fails` still reports a failure.
///
/// `fails` must be deterministic; the returned stream is 1-minimal at the
/// transaction level (removing any single remaining transaction makes the
/// failure disappear).
pub fn shrink_stream(
    mut stream: Vec<Vec<TxRequest>>,
    fails: &mut dyn FnMut(&[Vec<TxRequest>]) -> bool,
) -> Vec<Vec<TxRequest>> {
    debug_assert!(fails(&stream), "shrink_stream called on a passing stream");
    // Pass 1: drop whole batches.
    let mut i = 0;
    while i < stream.len() && stream.len() > 1 {
        let removed = stream.remove(i);
        if fails(&stream) {
            continue; // still failing without batch i; keep it removed
        }
        stream.insert(i, removed);
        i += 1;
    }
    // Pass 2: drop transaction chunks within each batch, halving sizes.
    loop {
        let mut changed = false;
        for b in 0..stream.len() {
            let mut chunk = stream[b].len().max(1).div_ceil(2);
            loop {
                let mut t = 0;
                while t < stream[b].len() && total_txs(&stream) > 1 {
                    let end = (t + chunk).min(stream[b].len());
                    let removed: Vec<TxRequest> = stream[b].drain(t..end).collect();
                    if fails(&stream) {
                        changed = true;
                        continue; // keep the chunk removed, retry at same t
                    }
                    for (off, tx) in removed.into_iter().enumerate() {
                        stream[b].insert(t + off, tx);
                    }
                    t += chunk;
                }
                if chunk == 1 {
                    break;
                }
                chunk = chunk.div_ceil(2);
            }
        }
        stream.retain(|b| !b.is_empty());
        if !changed {
            break;
        }
    }
    stream
}

fn total_txs(stream: &[Vec<TxRequest>]) -> usize {
    stream.iter().map(Vec::len).sum()
}

fn value_json(v: &Value) -> Json {
    match v {
        Value::Unit => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Record(fields) => Json::Arr(fields.iter().map(value_json).collect()),
        Value::List(items) => Json::Arr(items.iter().map(value_json).collect()),
    }
}

/// Renders a shrunk stream (plus run context) as the reproducer document.
pub fn reproducer_json(
    config: &DifferentialConfig,
    catalog: &Catalog,
    description: &str,
    stream: &[Vec<TxRequest>],
) -> Json {
    let batches = stream
        .iter()
        .map(|batch| {
            Json::Arr(
                batch
                    .iter()
                    .map(|tx| {
                        Json::obj(vec![
                            ("program", Json::Str(
                                catalog.entry(tx.program).program().name().to_string(),
                            )),
                            ("prog_id", Json::Int(tx.program.0 as i64)),
                            ("inputs", Json::Arr(tx.inputs.iter().map(value_json).collect())),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    Json::obj(vec![
        ("workload", Json::Str(config.workload.name().to_string())),
        ("stream_seed", Json::Int(config.stream_seed as i64)),
        (
            "worker_counts",
            Json::Arr(config.worker_counts.iter().map(|&w| Json::Int(w as i64)).collect()),
        ),
        (
            "shard_counts",
            Json::Arr(config.shard_counts.iter().map(|&s| Json::Int(s as i64)).collect()),
        ),
        (
            "fault_seed",
            match &config.fault_plan {
                Some(p) => Json::Int(p.seed() as i64),
                None => Json::Null,
            },
        ),
        ("mismatch", Json::Str(description.to_string())),
        ("batches", Json::Arr(batches)),
    ])
}

/// Runs the full differential: every system over the generated stream.
///
/// On success returns the run's stats; on divergence shrinks the stream to
/// a minimal failing reproducer, writes it to
/// `<artifact_dir>/<workload>-<seed>.reproducer.json`, and returns the
/// [`Mismatch`].
///
/// # Errors
/// Returns [`Mismatch`] when any two systems disagree.
pub fn run_differential(config: &DifferentialConfig) -> Result<DifferentialReport, Box<Mismatch>> {
    let workload = TestWorkload::new(config.workload);
    let stream = workload.gen_stream(config.stream_seed, config.batches, config.batch_size);
    let transactions = total_txs(&stream);

    match check_stream(config, &workload, &stream) {
        Ok((systems, reference)) => {
            let aborted = reference
                .outcomes
                .iter()
                .flatten()
                .filter(|o| matches!(o, TxOutcome::Aborted { .. }))
                .count();
            Ok(DifferentialReport {
                systems,
                transactions,
                committed: reference.committed,
                aborted,
            })
        }
        Err(description) => {
            let shrunk = shrink_stream(stream, &mut |candidate| {
                check_stream(config, &workload, candidate).is_err()
            });
            // Re-derive the (possibly different) minimal mismatch message.
            let final_desc = check_stream(config, &workload, &shrunk)
                .err()
                .unwrap_or(description);
            crate::report_oracle_failure(
                "differential",
                &final_desc,
                "differential-oracle-failure",
            );
            let json = reproducer_json(config, workload.catalog(), &final_desc, &shrunk);
            let path = config
                .artifact_dir
                .join(format!("{}-{}.reproducer.json", config.workload.name(), config.stream_seed));
            let written = std::fs::create_dir_all(&config.artifact_dir)
                .and_then(|()| std::fs::write(&path, json.render()))
                .is_ok();
            Err(Box::new(Mismatch {
                description: final_desc,
                reproducer: if written { path } else { PathBuf::new() },
                shrunk_transactions: total_txs(&shrunk),
            }))
        }
    }
}
