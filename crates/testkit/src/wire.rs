//! Wire-protocol fuzzer: a real TCP front-end under seeded hostile
//! clients.
//!
//! Where the [`chaos`](crate::chaos) oracle attacks the pipeline from
//! *inside* the process (partitions, crashes, disk faults), this harness
//! attacks it from *outside*: it boots a real
//! [`Server`](prognosticator::Server) on a loopback socket and drives it
//! with a population of clients drawn from the `hostile_clients`
//! [`ChaosPlan`] — honest traffic interleaved with malformed frames,
//! truncated writes, connection storms, stalled readers and mid-request
//! disconnects, every one a pure function of `(plan, seed)`.
//!
//! Three oracles must survive every campaign:
//!
//! 1. **The server never dies.** No engine panic, no stuck worker: after
//!    the campaign the server drains and shuts down within its budget.
//! 2. **No session leaks, and accounting balances.** Every connection is
//!    reclaimed (`active_connections == 0`) and every request the engine
//!    accepted reached exactly one terminal disposition
//!    (`requests == responses + dropped_responses`); the honest client
//!    specifically got exactly one response per request it sent.
//! 3. **Hostility never taints determinism.** Replaying the committed
//!    stream the campaign produced at every configured worker count
//!    reproduces the live replica digest byte for byte.
//!
//! On a violation the harness writes a `wire-fuzz-*.reproducer.json`
//! artifact carrying the `(plan, seed)` pair and the committed stream,
//! exactly like the chaos oracle's reproducers.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator::{
    ClientConfig, Pipeline, PipelineConfig, Server, ServerConfig, ServerReport, WireClient,
    WireOutcome,
};
use prognosticator_bench::json::Json;
use prognosticator_core::baselines;
use prognosticator_core::{ChaosEvent, ChaosPlan, WireFaultKind};
use prognosticator_workloads::DeterministicRng;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One wire-fuzz campaign cell: a `(plan, seed)` pair plus scale knobs.
#[derive(Debug, Clone)]
pub struct WireFuzzConfig {
    /// Chaos plan name (normally `hostile_clients`).
    pub plan: String,
    /// Seed for the plan, the request stream, and hostile byte choices.
    pub seed: u64,
    /// Campaign rounds.
    pub rounds: usize,
    /// Honest requests sent per round.
    pub round_size: usize,
    /// Worker counts for the determinism replay legs.
    pub worker_counts: Vec<usize>,
    /// Where `wire-fuzz-*.reproducer.json` files land on violation.
    pub artifact_dir: PathBuf,
}

impl WireFuzzConfig {
    /// The acceptance-bar cell: SmallBank honest traffic, 10 rounds of 4
    /// requests, replay at {1, 2, 4} workers, artifacts under
    /// `target/testkit`.
    pub fn standard(seed: u64) -> Self {
        let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target");
        WireFuzzConfig {
            plan: "hostile_clients".to_string(),
            seed,
            rounds: 10,
            round_size: 4,
            worker_counts: vec![1, 2, 4],
            artifact_dir: target.join("testkit"),
        }
    }
}

/// What one surviving wire-fuzz campaign established.
#[derive(Debug, Clone)]
pub struct WireFuzzReport {
    /// The plan that ran.
    pub plan: String,
    /// Its seed.
    pub seed: u64,
    /// Wire faults actually staged.
    pub faults_injected: usize,
    /// Honest requests sent (every one got exactly one response).
    pub honest_sent: usize,
    /// Honest responses with a `Committed` outcome.
    pub honest_committed: usize,
    /// Honest responses with an `Aborted` outcome.
    pub honest_aborted: usize,
    /// Honest responses with a `Rejected` outcome (wire backpressure or
    /// terminal admission rejection — both deterministic).
    pub honest_rejected: usize,
    /// The server's final accounting.
    pub server: ServerReport,
}

/// A wire-fuzz violation, with its reproducer artifact.
#[derive(Debug)]
pub struct WireFuzzViolation {
    /// Which oracle failed and how.
    pub description: String,
    /// Where the reproducer JSON was written (empty if writing failed).
    pub reproducer: PathBuf,
}

impl std::fmt::Display for WireFuzzViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire-fuzz violation: {} (reproducer: {})",
            self.description,
            self.reproducer.display()
        )
    }
}

fn violation(
    config: &WireFuzzConfig,
    description: String,
    stream: &[Vec<prognosticator_core::TxRequest>],
    workload: &TestWorkload,
) -> Box<WireFuzzViolation> {
    crate::report_oracle_failure("wire-fuzz", &description, "wire-fuzz-violation");
    let batches: Vec<Json> = stream
        .iter()
        .map(|batch| {
            Json::Arr(
                batch
                    .iter()
                    .map(|tx| {
                        Json::obj(vec![
                            ("prog_id", Json::Int(tx.program.0 as i64)),
                            (
                                "inputs",
                                Json::Arr(
                                    tx.inputs.iter().map(|v| Json::Str(format!("{v:?}"))).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            )
        })
        .collect();
    let json = Json::obj(vec![
        ("oracle", Json::Str("wire-fuzz".to_string())),
        ("workload", Json::Str(workload.kind().name().to_string())),
        ("plan", Json::Str(config.plan.clone())),
        ("seed", Json::Int(config.seed as i64)),
        ("rounds", Json::Int(config.rounds as i64)),
        ("round_size", Json::Int(config.round_size as i64)),
        (
            "worker_counts",
            Json::Arr(config.worker_counts.iter().map(|&w| Json::Int(w as i64)).collect()),
        ),
        ("violation", Json::Str(description.clone())),
        ("committed_stream", Json::Arr(batches)),
    ]);
    let path = config
        .artifact_dir
        .join(format!("wire-fuzz-{}-{}.reproducer.json", config.plan, config.seed));
    let written = std::fs::create_dir_all(&config.artifact_dir)
        .and_then(|()| std::fs::write(&path, json.render()))
        .is_ok();
    Box::new(WireFuzzViolation {
        description,
        reproducer: if written { path } else { PathBuf::new() },
    })
}

/// Stages one hostile behaviour against the server. Connections whose
/// misbehaviour resolves asynchronously (stalled readers waiting out the
/// frame deadline) are parked in `stalled` so the campaign keeps moving
/// while the server evicts them in the background.
fn apply_wire_fault(
    addr: SocketAddr,
    kind: WireFaultKind,
    rng: &mut DeterministicRng,
    workload: &TestWorkload,
    stalled: &mut Vec<TcpStream>,
) {
    use prognosticator::server::wire;
    match kind {
        WireFaultKind::MalformedFrame => {
            let Ok(mut s) = TcpStream::connect(addr) else { return };
            let req = &workload.gen_batch(rng, 1)[0];
            let valid = wire::encode_request(0, req);
            let bytes = match rng.below(3) {
                0 => {
                    // Oversized length prefix.
                    let mut f = u32::MAX.to_le_bytes().to_vec();
                    f.extend_from_slice(&[0; 4]);
                    f
                }
                1 => {
                    // CRC corruption somewhere in the payload.
                    let mut f = valid.clone();
                    let i = 8 + rng.below((f.len() - 8) as i64) as usize;
                    f[i] ^= 0xA5;
                    f
                }
                // Zero-length frame.
                _ => vec![0u8; 8],
            };
            let _ = s.write_all(&bytes);
            drain_until_close(&s);
        }
        WireFaultKind::TruncatedWrite => {
            let Ok(mut s) = TcpStream::connect(addr) else { return };
            let req = &workload.gen_batch(rng, 1)[0];
            let valid = wire::encode_request(0, req);
            let cut = 1 + rng.below((valid.len() - 1) as i64) as usize;
            let _ = s.write_all(&valid[..cut]);
            let _ = s.shutdown(Shutdown::Write);
            drain_until_close(&s);
        }
        WireFaultKind::ConnectionStorm => {
            // A burst of connects slammed shut, some through the
            // acceptor's cap. Refusals and accepts are both fine; what
            // matters is that every one is reclaimed.
            let burst: Vec<TcpStream> =
                (0..8).filter_map(|_| TcpStream::connect(addr).ok()).collect();
            for s in burst {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        WireFaultKind::StalledReader => {
            let Ok(mut s) = TcpStream::connect(addr) else { return };
            // Trickle part of a frame header and go silent; the frame
            // deadline must evict this connection while the campaign
            // continues.
            let _ = s.write_all(&7u32.to_le_bytes());
            stalled.push(s);
        }
        WireFaultKind::MidRequestDisconnect => {
            let Ok(mut s) = TcpStream::connect(addr) else { return };
            let req = &workload.gen_batch(rng, 1)[0];
            let _ = s.write_all(&wire::encode_request(0, req));
            // Vanish before the response: the engine still owes the
            // request a terminal outcome, accounted as a dropped
            // response.
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// Reads a hostile connection until the server closes it (bounded by a
/// read timeout so a buggy server cannot hang the fuzzer).
fn drain_until_close(stream: &TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut s = stream;
    let mut buf = [0u8; 1024];
    while let Ok(n) = s.read(&mut buf) {
        if n == 0 {
            break;
        }
    }
}

/// Runs one wire-fuzz campaign end to end.
///
/// # Errors
/// Returns the first [`WireFuzzViolation`] (with its reproducer
/// artifact) when any oracle fails.
///
/// # Panics
/// Panics if the plan name is unknown or the server fails to bind.
pub fn run_wire_fuzz(config: &WireFuzzConfig) -> Result<WireFuzzReport, Box<WireFuzzViolation>> {
    let horizon = config.rounds as u64;
    let plan = ChaosPlan::by_name(&config.plan, config.seed, horizon)
        .unwrap_or_else(|| panic!("unknown chaos plan: {}", config.plan));
    let workload = TestWorkload::new(WorkloadKind::SmallBank);

    let populate = Arc::new(|store: &prognosticator_storage::EpochStore| {
        TestWorkload::new(WorkloadKind::SmallBank).populate_store(store);
    });
    let pipeline = Pipeline::new(
        Arc::clone(workload.catalog()),
        PipelineConfig {
            batch_window: Duration::from_millis(2),
            batch_cap: config.round_size.max(4),
            scheduler: baselines::mq_mf(2),
            seed: config.seed,
            // Never compact: the determinism leg replays the full
            // committed stream.
            snapshot_interval: None,
            ..PipelineConfig::default()
        },
        1,
        populate,
    )
    .expect("wire-fuzz pipeline boots");
    let server = Server::start(
        pipeline,
        ServerConfig {
            workers: 4,
            max_connections: 16,
            pipeline_depth: 8,
            // Short frame deadline so stalled readers are evicted within
            // the campaign, not after it.
            frame_timeout: Duration::from_millis(100),
            client: ClientConfig {
                seed: config.seed,
                deadline: Duration::from_secs(2),
                ..ClientConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("wire-fuzz server binds");
    let addr = server.addr();

    let mut rng = DeterministicRng::new(config.seed ^ 0x31BE);
    let mut stalled: Vec<TcpStream> = Vec::new();
    let mut faults_injected = 0usize;
    let mut honest_sent = 0usize;
    let (mut committed, mut aborted, mut rejected) = (0usize, 0usize, 0usize);
    let mut honest = WireClient::connect(addr).expect("honest client connects");

    for round in 0..horizon {
        for event in plan.events_at(round) {
            match event {
                ChaosEvent::WireFault { kind, .. } => {
                    faults_injected += 1;
                    apply_wire_fault(addr, kind, &mut rng, &workload, &mut stalled);
                }
                // Overload here means an extra honest burst this round,
                // pressing the wire pipeline-depth limit.
                ChaosEvent::OverloadBurst { .. } => {
                    for req in workload.gen_batch(&mut rng, config.round_size) {
                        if honest.send(&req).is_ok() {
                            honest_sent += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        // The honest round: pipelined sends, then drain every response —
        // one per request, exactly once, no matter what the hostiles did.
        for req in workload.gen_batch(&mut rng, config.round_size) {
            if honest.send(&req).is_ok() {
                honest_sent += 1;
            }
        }
        let outstanding = honest_sent - (committed + aborted + rejected);
        for _ in 0..outstanding {
            match honest.recv(Duration::from_secs(10)) {
                Ok(Some(prognosticator::server::wire::ClientEvent::Response(resp))) => {
                    match resp.outcome {
                        WireOutcome::Committed => committed += 1,
                        WireOutcome::Aborted { .. } => aborted += 1,
                        WireOutcome::Rejected { .. } => rejected += 1,
                    }
                }
                other => {
                    drop(honest);
                    let (pipeline, _) = server.shutdown();
                    let stream =
                        pipeline.as_ref().map(|p| p.live_committed(0)).unwrap_or_default();
                    return Err(violation(
                        config,
                        format!(
                            "honest client lost a response at round {round}: \
                             expected a Response event, got {other:?}"
                        ),
                        &stream,
                        &workload,
                    ));
                }
            }
        }
    }

    // Let the frame deadline finish evicting any still-parked stalled
    // readers, then release their sockets.
    if !stalled.is_empty() {
        std::thread::sleep(Duration::from_millis(300));
        stalled.clear();
    }
    drop(honest);

    let (pipeline, server_report) = server.shutdown();

    // Oracle 1: the server survived.
    let Some(mut pipeline) = pipeline else {
        return Err(violation(
            config,
            "engine thread panicked during the campaign".to_string(),
            &[],
            &workload,
        ));
    };

    let stream = pipeline.live_committed(0);

    // Oracle 2a: no leaked sessions.
    if server_report.active_connections != 0 {
        return Err(violation(
            config,
            format!("{} connections leaked past shutdown", server_report.active_connections),
            &stream,
            &workload,
        ));
    }
    // Oracle 2b: terminal-outcome accounting balances.
    if server_report.requests != server_report.responses + server_report.dropped_responses {
        return Err(violation(
            config,
            format!(
                "accounting imbalance: {} requests != {} responses + {} dropped",
                server_report.requests, server_report.responses, server_report.dropped_responses
            ),
            &stream,
            &workload,
        ));
    }
    // Oracle 2c: the honest client got one response per request (checked
    // incrementally above; this is the final tally).
    if committed + aborted + rejected != honest_sent {
        return Err(violation(
            config,
            format!(
                "honest client sent {honest_sent} requests but saw {} responses",
                committed + aborted + rejected
            ),
            &stream,
            &workload,
        ));
    }

    // Oracle 3: determinism. Replaying the committed stream at every
    // worker count reproduces the live digest.
    if let Err(e) = pipeline.sync() {
        let description = format!("post-campaign sync failed on a quiet cluster: {e}");
        return Err(violation(config, description, &stream, &workload));
    }
    let live = pipeline.digests()[0];
    for &workers in &config.worker_counts {
        let replayed = crate::chaos::replay_digest(&workload, &stream, workers, 1);
        if replayed != live {
            return Err(violation(
                config,
                format!(
                    "replay at {workers} workers diverged: live digest {live:#x}, \
                     replayed {replayed:#x}"
                ),
                &stream,
                &workload,
            ));
        }
    }
    pipeline.shutdown();

    Ok(WireFuzzReport {
        plan: config.plan.clone(),
        seed: config.seed,
        faults_injected,
        honest_sent,
        honest_committed: committed,
        honest_aborted: aborted,
        honest_rejected: rejected,
        server: server_report,
    })
}
