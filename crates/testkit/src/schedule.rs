//! Schedule-exploration fuzzer.
//!
//! The determinism claim under test: every transaction popped from the
//! lock table's ready queue is mutually non-conflicting with the others,
//! so *any* pick order is a legal schedule and all of them must produce
//! the same per-transaction outcome vector and the same final store
//! digest. The fuzzer drives the engine's
//! [`ReadyPolicy`](prognosticator_core::ReadyPolicy) seam with seeded
//! shuffle policies and sweeps the worker count *and* the prepare-ahead
//! depth (classification of batch `N+1` on the engine's queuer thread
//! while batch `N` executes), comparing every explored schedule against a
//! FIFO reference run.

use crate::workload::{TestWorkload, WorkloadKind};
use prognosticator_core::{
    baselines, FaultPlan, Replica, SchedulerConfig, SeededShufflePolicy, TxOutcome,
};
use std::sync::Arc;

/// One fuzzing sweep: a seeded request stream replayed under every
/// `(policy seed × worker count)` combination.
#[derive(Debug, Clone)]
pub struct ScheduleSweep {
    /// Workload generating the request stream.
    pub workload: WorkloadKind,
    /// Seed of the request stream (same stream for every schedule).
    pub stream_seed: u64,
    /// Batches per run.
    pub batches: usize,
    /// Requests per batch.
    pub batch_size: usize,
    /// Seeds for [`SeededShufflePolicy`]; each yields a distinct
    /// ready-queue permutation.
    pub policy_seeds: Vec<u64>,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Shard counts to sweep: every explored schedule runs at each count
    /// and must still reproduce the reference outcomes and digest
    /// (DESIGN.md §3.5 — shuffled pop order composes with sharding).
    pub shard_counts: Vec<usize>,
    /// Candidate window handed to the shuffle policy (how far from FIFO a
    /// schedule may stray).
    pub window: usize,
    /// Prepare-ahead depths to sweep (0 = sequential prepare→execute,
    /// 1 = classification pipelined one batch ahead). Every depth must
    /// reproduce the reference outcomes and digest.
    pub depths: Vec<usize>,
    /// Optional fault plan applied identically to every run.
    pub fault_plan: Option<FaultPlan>,
}

impl ScheduleSweep {
    /// The acceptance-bar sweep: 3 policy seeds × {1, 2, 4} workers.
    pub fn standard(workload: WorkloadKind, stream_seed: u64) -> Self {
        ScheduleSweep {
            workload,
            stream_seed,
            batches: 3,
            batch_size: 24,
            policy_seeds: vec![11, 42, 1973],
            worker_counts: vec![1, 2, 4],
            shard_counts: vec![1],
            window: 3,
            depths: vec![0, 1],
            fault_plan: None,
        }
    }

    /// Same sweep with a seeded fault plan injected into every run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// What a sweep established.
#[derive(Debug)]
pub struct ScheduleReport {
    /// Schedules explored (reference run included).
    pub explored: usize,
    /// Reference per-batch outcome vectors every schedule reproduced.
    pub outcomes: Vec<Vec<TxOutcome>>,
    /// Final store digest every schedule reproduced.
    pub digest: u64,
    /// Committed transactions in the reference run.
    pub committed: usize,
    /// Deterministically aborted transactions in the reference run.
    pub aborted: usize,
}

struct RunResult {
    outcomes: Vec<Vec<TxOutcome>>,
    digest: u64,
    committed: usize,
    aborted: usize,
}

fn run_schedule(
    workload: &TestWorkload,
    stream: &[Vec<prognosticator_core::TxRequest>],
    config: SchedulerConfig,
    fault_plan: Option<FaultPlan>,
    depth: usize,
) -> RunResult {
    let mut replica =
        Replica::with_store(config, Arc::clone(workload.catalog()), workload.fresh_store());
    replica.set_fault_plan(fault_plan);
    let stream_outcomes = replica.execute_stream(stream.to_vec(), depth);
    let mut outcomes = Vec::with_capacity(stream.len());
    let (mut committed, mut aborted) = (0, 0);
    for out in stream_outcomes {
        committed += out.committed;
        aborted += out.aborted;
        outcomes.push(out.outcomes);
    }
    let digest = replica.state_digest();
    // When recording is on, every explored schedule's trace also runs
    // through the independent serializability checker.
    crate::isolation::assert_replica_serializable(&replica, "schedule run");
    replica.shutdown();
    RunResult { outcomes, digest, committed, aborted }
}

/// Runs the sweep, panicking with full context on the first schedule whose
/// outcome vector or digest diverges from the FIFO reference.
///
/// # Panics
/// Panics on any divergence — that is the point: a panic here means a
/// schedule-dependent execution, i.e. a determinism bug.
pub fn explore_schedules(sweep: &ScheduleSweep) -> ScheduleReport {
    assert!(!sweep.policy_seeds.is_empty(), "need at least one policy seed");
    assert!(!sweep.worker_counts.is_empty(), "need at least one worker count");
    assert!(!sweep.depths.is_empty(), "need at least one prepare-ahead depth");
    assert!(!sweep.shard_counts.is_empty(), "need at least one shard count");
    let workload = TestWorkload::new(sweep.workload);
    let stream = workload.gen_stream(sweep.stream_seed, sweep.batches, sweep.batch_size);

    // FIFO, unpipelined, at the first worker count is the reference
    // schedule.
    let reference = run_schedule(
        &workload,
        &stream,
        baselines::mq_mf(sweep.worker_counts[0]),
        sweep.fault_plan.clone(),
        0,
    );

    let mut explored = 1;
    for &depth in &sweep.depths {
        for &workers in &sweep.worker_counts {
            for &shards in &sweep.shard_counts {
                for &seed in &sweep.policy_seeds {
                    let config = SchedulerConfig {
                        ready_policy: Arc::new(SeededShufflePolicy::new(seed, sweep.window)),
                        shards,
                        ..baselines::mq_mf(workers)
                    };
                    let run =
                        run_schedule(&workload, &stream, config, sweep.fault_plan.clone(), depth);
                    explored += 1;
                    for (i, (got, want)) in
                        run.outcomes.iter().zip(&reference.outcomes).enumerate()
                    {
                        if got != want {
                            let msg = format!(
                                "outcome vector diverged: workload={} batch={} policy_seed={} \
                                 workers={} shards={} depth={}",
                                sweep.workload.name(),
                                i,
                                seed,
                                workers,
                                shards,
                                depth
                            );
                            crate::report_oracle_failure(
                                "schedule",
                                &msg,
                                "schedule-oracle-failure",
                            );
                            panic!(
                                "assertion `left == right` failed: {msg}\n  left: {got:?}\n right: {want:?}"
                            );
                        }
                    }
                    if run.digest != reference.digest {
                        let msg = format!(
                            "store digest diverged: workload={} policy_seed={} workers={} \
                             shards={} depth={}",
                            sweep.workload.name(),
                            seed,
                            workers,
                            shards,
                            depth
                        );
                        crate::report_oracle_failure("schedule", &msg, "schedule-oracle-failure");
                        panic!(
                            "assertion `left == right` failed: {msg}\n  left: {:?}\n right: {:?}",
                            run.digest, reference.digest
                        );
                    }
                }
            }
        }
    }

    ScheduleReport {
        explored,
        outcomes: reference.outcomes,
        digest: reference.digest,
        committed: reference.committed,
        aborted: reference.aborted,
    }
}
