//! `proptest` strategies over the workspace's domain types.
//!
//! Generation goes through the workloads' own deterministic generators:
//! a strategy samples a `u64` stream seed and materializes requests from
//! it, so every sampled batch is well-formed (registered programs,
//! in-bounds inputs) and replayable from the case's recorded RNG state.
//!
//! The three workload fixtures (catalog + generator) are built once per
//! process and shared — catalogs are immutable after registration, so
//! sharing is safe and keeps property tests fast.

use crate::workload::{TestWorkload, WorkloadKind};
use proptest::prelude::*;
use prognosticator_core::{FaultPlan, TxRequest};
use prognosticator_workloads::DeterministicRng;
use std::sync::{Arc, OnceLock};

/// The shared fixture for `kind`, built on first use.
pub fn fixture(kind: WorkloadKind) -> Arc<TestWorkload> {
    static SMALLBANK: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static TPCC: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static RUBIS: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static HOT_SKEW: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static SCAN_STORM: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static YCSB_MIX: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static CHAIN_PIVOT: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    static ADAPTIVE: OnceLock<Arc<TestWorkload>> = OnceLock::new();
    let cell = match kind {
        WorkloadKind::SmallBank => &SMALLBANK,
        WorkloadKind::Tpcc => &TPCC,
        WorkloadKind::Rubis => &RUBIS,
        WorkloadKind::HotSkew => &HOT_SKEW,
        WorkloadKind::ScanStorm => &SCAN_STORM,
        WorkloadKind::YcsbMix => &YCSB_MIX,
        WorkloadKind::ChainPivot => &CHAIN_PIVOT,
        WorkloadKind::Adaptive => &ADAPTIVE,
    };
    Arc::clone(cell.get_or_init(|| Arc::new(TestWorkload::new(kind))))
}

/// Strategy choosing one of the three workloads.
pub fn workload_strategy() -> BoxedStrategy<WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::SmallBank),
        Just(WorkloadKind::Tpcc),
        Just(WorkloadKind::Rubis),
    ]
    .boxed()
}

/// Strategy yielding one well-formed request from `kind`.
pub fn tx_request_strategy(kind: WorkloadKind) -> BoxedStrategy<TxRequest> {
    let workload = fixture(kind);
    (0u64..u64::MAX)
        .prop_map(move |seed| {
            let mut rng = DeterministicRng::new(seed);
            workload
                .gen_batch(&mut rng, 1)
                .pop()
                .expect("gen_batch(1) yields a request")
        })
        .boxed()
}

/// Strategy yielding a batch of `min..=max` well-formed requests from
/// `kind`, with the generating seed attached for replay messages.
pub fn batch_strategy(kind: WorkloadKind, min: usize, max: usize) -> BoxedStrategy<(u64, Vec<TxRequest>)> {
    assert!(min >= 1 && max >= min, "need 1 <= min <= max");
    let workload = fixture(kind);
    let span = (max - min + 1) as u64;
    (0u64..u64::MAX)
        .prop_map(move |seed| {
            let mut rng = DeterministicRng::new(seed);
            let size = min + (rng.range(0, span as i64 - 1) as usize);
            (seed, workload.gen_batch(&mut rng, size))
        })
        .boxed()
}

/// Strategy yielding a seeded [`FaultPlan`]: sometimes quiet, sometimes
/// injecting worker panics at a low per-mille rate.
pub fn fault_plan_strategy() -> BoxedStrategy<FaultPlan> {
    (0u64..u64::MAX, 0u16..4)
        .prop_map(|(seed, severity)| {
            let plan = FaultPlan::quiet(seed);
            match severity {
                0 => plan,
                s => plan.with_worker_panics(50 * s),
            }
        })
        .boxed()
}
