//! Crash-recovery fuzz: for each seeded crash point, a WAL-backed replica
//! is killed mid-batch (with seeded torn-write / failed-fsync / partial-
//! snapshot disk faults armed), restarted from the durable prefix via
//! faults-quiet replay, and healed by re-executing the lost tail. The
//! recovered run must be byte-identical — outcome trace and store digest —
//! to a reference run that never crashed, across {1, 2, 4} workers.
//!
//! The sweep width is tunable: `RECOVERY_CRASH_POINTS=50 cargo test ...`
//! runs 50 seeded crash points per workload (default 20). On a mismatch
//! the harness writes a `.reproducer.json` artifact with the failing
//! coordinates.

use std::collections::HashSet;
use std::path::PathBuf;
use testkit::{crash_batch_for, run_crash_recovery, RecoveryFuzzConfig, WorkloadKind};

fn scratch(area: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(area)
}

fn crash_points() -> u64 {
    std::env::var("RECOVERY_CRASH_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20)
}

/// Sweeps `crash_points()` seeds through one workload, panicking on the
/// first recovery-soundness violation, and returns the set of
/// (crash_batch, disk_fault) coordinates that were exercised.
fn sweep(workload: WorkloadKind, seed_base: u64) -> HashSet<(u64, Option<&'static str>)> {
    let mut covered = HashSet::new();
    for i in 0..crash_points() {
        let seed = seed_base + i;
        let mut config = RecoveryFuzzConfig::standard(workload, seed);
        config.artifact_dir = scratch("recovery-artifacts");
        config.wal_dir = scratch("recovery-wal");
        let report = run_crash_recovery(&config).unwrap_or_else(|m| {
            panic!("{} (reproducer: {})", m.description, m.reproducer.display())
        });
        assert_eq!(
            report.durable_batches + report.caught_up_batches,
            config.batches,
            "durable + caught-up must cover the stream exactly"
        );
        let fault = report.disk_fault.map(|f| match f {
            prognosticator_core::DiskFaultKind::TornFinalFrame => "torn",
            prognosticator_core::DiskFaultKind::FailedFsync => "fsync",
            prognosticator_core::DiskFaultKind::PartialSnapshot => "snapshot",
        });
        covered.insert((report.crash_batch, fault));
    }
    covered
}

#[test]
fn smallbank_recovers_from_seeded_crash_points() {
    let covered = sweep(WorkloadKind::SmallBank, 0x5B_000);
    assert!(covered.len() >= 3, "sweep should hit several distinct crash points: {covered:?}");
}

#[test]
fn tpcc_recovers_from_seeded_crash_points() {
    let covered = sweep(WorkloadKind::Tpcc, 0x7C_000);
    assert!(covered.len() >= 3, "sweep should hit several distinct crash points: {covered:?}");
}

#[test]
fn rubis_recovers_from_seeded_crash_points() {
    let covered = sweep(WorkloadKind::Rubis, 0x2B_000);
    assert!(covered.len() >= 3, "sweep should hit several distinct crash points: {covered:?}");
}

#[test]
fn sweep_exercises_torn_write_and_failed_fsync() {
    // The acceptance bar calls for torn-write and failed-fsync crashes
    // specifically; the per-seed fault kind is deterministic, so assert
    // the default sweep actually covers both (and the no-op
    // partial-snapshot arm at least once, which degenerates to a clean
    // crash because the harness never installs snapshots mid-run).
    let covered = sweep(WorkloadKind::SmallBank, 0x5B_000);
    let kinds: HashSet<_> = covered.iter().filter_map(|(_, f)| *f).collect();
    assert!(kinds.contains("torn"), "no torn-write crash in sweep: {covered:?}");
    assert!(kinds.contains("fsync"), "no failed-fsync crash in sweep: {covered:?}");
}

#[test]
fn crash_at_first_batch_recovers_from_empty_wal() {
    // Find a seed whose crash point is batch 0: nothing executed yet, so
    // recovery replays an empty (or single-entry) durable prefix and the
    // whole stream is re-executed live.
    let seed = (0..200)
        .map(|i| 0xF1257_u64 + i)
        .find(|&s| crash_batch_for(s, 6) == 0)
        .expect("some seed crashes at batch 0");
    let mut config = RecoveryFuzzConfig::standard(WorkloadKind::SmallBank, seed);
    config.artifact_dir = scratch("recovery-artifacts");
    config.wal_dir = scratch("recovery-wal");
    let report = run_crash_recovery(&config)
        .unwrap_or_else(|m| panic!("{}", m.description));
    assert_eq!(report.crash_batch, 0);
    assert!(report.caught_up_batches >= config.batches - 1);
}

#[test]
fn quiet_plan_without_disk_faults_recovers() {
    // No worker panics, no disk faults: the crash itself is the only
    // disturbance and the WAL holds exactly the executed prefix.
    let mut config = RecoveryFuzzConfig::standard(WorkloadKind::Tpcc, 0xC1EA7);
    config.worker_panic_per_mille = 0;
    config.disk_faults = false;
    config.artifact_dir = scratch("recovery-artifacts");
    config.wal_dir = scratch("recovery-wal");
    let report = run_crash_recovery(&config)
        .unwrap_or_else(|m| panic!("{}", m.description));
    assert_eq!(report.disk_fault, None);
    assert!(report.stats.wal_fsyncs > 0, "durable appends must fsync");
}

#[test]
fn sharded_replicas_recover_identically() {
    // Crash-recovery at every shard count (DESIGN.md §3.5): the recovered
    // run must be byte-identical to the never-crashed reference no matter
    // how the key space is partitioned, including under worker panics and
    // armed disk faults.
    for seed in [0x5_4A8D, 0x5_4A8E, 0x5_4A8F] {
        let mut config = RecoveryFuzzConfig::standard(WorkloadKind::SmallBank, seed);
        config.worker_counts = vec![2];
        config.shard_counts = vec![1, 2, 4, 8];
        config.artifact_dir = scratch("recovery-artifacts");
        config.wal_dir = scratch("recovery-wal");
        run_crash_recovery(&config).unwrap_or_else(|m| {
            panic!("{} (reproducer: {})", m.description, m.reproducer.display())
        });
    }
}
