//! Pipelined-vs-sequential differential oracle (the prepare-ahead seam).
//!
//! Claim under test: running a stream of batches with prepare-ahead
//! pipelining (classification of batch `N+1` on the engine's queuer
//! thread while batch `N` executes) produces byte-identical per-
//! transaction outcome vectors and store digests to the plain sequential
//! `prepare → execute` loop — across worker counts, stream seeds, and
//! under an active fault plan.

use prognosticator_core::{baselines, FaultPlan, Replica, TxOutcome};
use std::sync::Arc;
use testkit::{TestWorkload, WorkloadKind};

struct StreamResult {
    outcomes: Vec<Vec<TxOutcome>>,
    digest: u64,
    committed: usize,
    overlap_ns: u64,
}

fn run_stream(
    workload: &TestWorkload,
    stream: &[Vec<prognosticator_core::TxRequest>],
    workers: usize,
    depth: usize,
    fault_plan: Option<FaultPlan>,
) -> StreamResult {
    let mut replica = Replica::with_store(
        baselines::mq_mf(workers),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.set_fault_plan(fault_plan);
    let outs = replica.execute_stream(stream.to_vec(), depth);
    let committed = outs.iter().map(|o| o.committed).sum();
    let overlap_ns = outs.iter().map(|o| o.stage.overlap_ns).sum();
    let outcomes = outs.into_iter().map(|o| o.outcomes).collect();
    let digest = replica.state_digest();
    replica.shutdown();
    StreamResult { outcomes, digest, committed, overlap_ns }
}

fn assert_depths_agree(workload: WorkloadKind, stream_seed: u64, fault_plan: Option<FaultPlan>) {
    let wl = TestWorkload::new(workload);
    let stream = wl.gen_stream(stream_seed, 4, 24);
    for workers in [1usize, 2, 4] {
        let sequential = run_stream(&wl, &stream, workers, 0, fault_plan.clone());
        assert_eq!(
            sequential.overlap_ns, 0,
            "sequential path must report zero prepare-ahead overlap"
        );
        let pipelined = run_stream(&wl, &stream, workers, 1, fault_plan.clone());
        for (i, (seq, pipe)) in
            sequential.outcomes.iter().zip(&pipelined.outcomes).enumerate()
        {
            assert_eq!(
                seq, pipe,
                "outcome vector diverged: workload={} seed={stream_seed:#x} \
                 workers={workers} batch={i}",
                workload.name()
            );
        }
        assert_eq!(
            sequential.digest,
            pipelined.digest,
            "store digest diverged: workload={} seed={stream_seed:#x} workers={workers}",
            workload.name()
        );
        assert_eq!(sequential.committed, pipelined.committed);
        assert!(sequential.committed > 0, "degenerate stream: nothing committed");
    }
}

#[test]
fn pipelined_matches_sequential_smallbank() {
    for seed in [0x5EED1u64, 0x5EED2, 0x5EED3] {
        assert_depths_agree(WorkloadKind::SmallBank, seed, None);
    }
}

#[test]
fn pipelined_matches_sequential_tpcc() {
    for seed in [0x7C91u64, 0x7C92, 0x7C93] {
        assert_depths_agree(WorkloadKind::Tpcc, seed, None);
    }
}

#[test]
fn pipelined_matches_sequential_rubis() {
    for seed in [0x12B1u64, 0x12B2, 0x12B3] {
        assert_depths_agree(WorkloadKind::Rubis, seed, None);
    }
}

#[test]
fn pipelined_matches_sequential_under_faults() {
    // Dense injected worker panics: deterministic per-tx aborts must be
    // identical across the prepare-ahead seam too.
    for seed in [21u64, 22, 23] {
        let plan = FaultPlan::quiet(seed).with_worker_panics(120);
        assert_depths_agree(WorkloadKind::SmallBank, 0xFA0 + seed, Some(plan));
    }
}
