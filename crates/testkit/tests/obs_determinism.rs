//! Observability-determinism suite: recording must never perturb the
//! deterministic database.
//!
//! Three contracts (DESIGN.md §10):
//!
//! 1. Every oracle produces byte-identical outcome vectors and store
//!    digests with flight recording and metrics hot versus cold — obs is
//!    strictly read-only with respect to scheduling.
//! 2. The flight recorder itself is replay-stable: two runs of the same
//!    batch stream yield byte-identical canonical JSONL dumps, no matter
//!    how the worker threads interleaved.
//! 3. A recovery digest mismatch auto-dumps every live recorder to
//!    `flightrec-*.jsonl` before panicking, so the forensic trail exists
//!    exactly when determinism was violated.
//!
//! `set_default_enabled` is process-global, so every test here holds one
//! mutex for its whole body and restores the disabled state on exit.

use prognosticator_core::{baselines, LogRecord, Replica};
use prognosticator_obs::FlightRecorder;
use std::sync::{Arc, Mutex};
use testkit::{
    explore_schedules, run_differential, DifferentialConfig, ScheduleSweep, TestWorkload,
    WorkloadKind,
};

/// Serializes tests that flip the process-global recording default.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores recording-disabled even if the test body panics.
struct DisableOnDrop;

impl Drop for DisableOnDrop {
    fn drop(&mut self) {
        prognosticator_obs::set_default_enabled(false);
    }
}

#[test]
fn schedule_oracle_is_identical_with_obs_on_and_off() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    for workload in [WorkloadKind::SmallBank, WorkloadKind::Tpcc] {
        let sweep = ScheduleSweep {
            batches: 2,
            batch_size: 16,
            policy_seeds: vec![11, 42],
            worker_counts: vec![1, 2],
            ..ScheduleSweep::standard(workload, 0xA11CE)
        };

        prognosticator_obs::set_default_enabled(false);
        let cold = explore_schedules(&sweep);
        prognosticator_obs::set_default_enabled(true);
        let hot = explore_schedules(&sweep);
        prognosticator_obs::set_default_enabled(false);

        assert_eq!(
            cold.outcomes, hot.outcomes,
            "{workload:?}: outcome vectors must not depend on recording"
        );
        assert_eq!(
            cold.digest, hot.digest,
            "{workload:?}: store digest must not depend on recording"
        );
        assert_eq!(cold.committed, hot.committed);
        assert_eq!(cold.aborted, hot.aborted);
    }
}

#[test]
fn differential_oracle_passes_identically_with_obs_enabled() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    let config = DifferentialConfig {
        batches: 2,
        batch_size: 16,
        worker_counts: vec![1, 2],
        ..DifferentialConfig::standard(WorkloadKind::SmallBank, 0xBEEF)
    };

    prognosticator_obs::set_default_enabled(false);
    let cold = run_differential(&config).expect("cold differential passes");
    prognosticator_obs::set_default_enabled(true);
    let hot = run_differential(&config).expect("hot differential passes");
    prognosticator_obs::set_default_enabled(false);

    assert_eq!(cold.committed, hot.committed, "commit counts must match");
    assert_eq!(cold.aborted, hot.aborted, "abort counts must match");
    assert_eq!(cold.systems, hot.systems);
}

/// Two runs of the same stream on fresh replicas, with recorders pinned
/// to the same replica id, must render byte-identical canonical dumps:
/// every event is keyed by logical coordinates only, and the canonical
/// sort erases worker-interleaving order.
#[test]
fn flight_recorder_dumps_are_replay_stable() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    prognosticator_obs::set_default_enabled(false);
    let workload = TestWorkload::new(WorkloadKind::SmallBank);
    let stream = workload.gen_stream(0xF11E, 3, 24);

    let run = || -> (String, u64) {
        let recorder = FlightRecorder::new(7);
        recorder.set_enabled(true);
        let mut replica = Replica::with_store(
            baselines::mq_mf(4),
            Arc::clone(workload.catalog()),
            workload.fresh_store(),
        );
        replica.attach_recorder(Arc::clone(&recorder));
        // Pipelined, so QueuerHandoff events are exercised too.
        replica.execute_stream(stream.clone(), 1);
        let digest = replica.state_digest();
        replica.shutdown();
        (recorder.render_jsonl(), digest)
    };

    let (dump_a, digest_a) = run();
    let (dump_b, digest_b) = run();
    assert_eq!(digest_a, digest_b, "replicas must agree before dumps can");
    assert!(!dump_a.is_empty(), "an enabled recorder must capture events");
    assert!(
        dump_a.contains("\"type\":\"batch_start\""),
        "dump must contain batch lifecycle events: {dump_a}"
    );
    assert_eq!(dump_a, dump_b, "canonical dumps must be byte-identical across runs");
}

/// Sharding must be invisible in the forensic trail too: the same stream
/// executed at shard counts {1, 2, 4, 8} (recorders pinned to one replica
/// id) renders byte-identical canonical dumps. `LockWait` events carry
/// the count-independent routing fingerprint in their `shard` field — not
/// the physical shard index — and the canonical sort includes it, so the
/// partitioning never leaks into the dump (DESIGN.md §3.5).
#[test]
fn flight_recorder_dumps_are_identical_across_shard_counts() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    prognosticator_obs::set_default_enabled(false);
    let workload = TestWorkload::new(WorkloadKind::HotSkew);
    let stream = workload.gen_stream(0x5AF1, 3, 24);

    let run = |shards: usize| -> (String, u64) {
        let recorder = FlightRecorder::new(9);
        recorder.set_enabled(true);
        let mut replica = Replica::with_store(
            prognosticator_core::SchedulerConfig { shards, ..baselines::mq_mf(4) },
            Arc::clone(workload.catalog()),
            workload.fresh_store(),
        );
        replica.attach_recorder(Arc::clone(&recorder));
        replica.execute_stream(stream.clone(), 1);
        let digest = replica.state_digest();
        replica.shutdown();
        (recorder.render_jsonl(), digest)
    };

    let (reference, reference_digest) = run(1);
    assert!(
        reference.contains("\"type\":\"lock_wait\""),
        "a hot-key storm must record lock waits"
    );
    assert!(
        reference.contains("\"shard\":"),
        "lock waits must carry the routing fingerprint"
    );
    for shards in [2, 4, 8] {
        let (dump, digest) = run(shards);
        assert_eq!(digest, reference_digest, "s={shards}: digests must agree");
        assert_eq!(dump, reference, "s={shards}: canonical dumps must be byte-identical");
    }
}

#[test]
fn forced_digest_mismatch_dumps_flight_recorder() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    let dump_dir = std::env::temp_dir().join(format!("prog-flightrec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    std::fs::create_dir_all(&dump_dir).expect("create dump dir");
    prognosticator_obs::set_dump_dir(&dump_dir);
    prognosticator_obs::set_default_enabled(true);

    let workload = TestWorkload::new(WorkloadKind::SmallBank);
    let stream = workload.gen_stream(0xD16E, 2, 16);
    let mut live = Replica::with_store(
        baselines::mq_mf(2),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    for batch in &stream {
        live.execute_batch(batch.clone());
    }
    let digest = live.state_digest();
    live.shutdown();

    // Recover against a deliberately wrong expected digest: the replica
    // must dump its flight recorders, then panic.
    let catalog = Arc::clone(workload.catalog());
    let store = workload.fresh_store();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        Replica::recover(
            baselines::mq_mf(2),
            catalog,
            store,
            stream.into_iter().map(LogRecord::Batch).collect(),
            None,
            Some(digest ^ 0xDEAD_BEEF),
        )
    }));
    prognosticator_obs::set_default_enabled(false);
    prognosticator_obs::set_dump_dir("results");
    assert!(result.is_err(), "recovery against a wrong digest must panic");

    let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
        .expect("dump dir readable")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| {
            name.starts_with("flightrec-recovery-digest-mismatch") && name.ends_with(".jsonl")
        })
        .collect();
    assert!(
        !dumps.is_empty(),
        "digest mismatch must produce a flightrec-*.jsonl dump in {}",
        dump_dir.display()
    );
    let body = std::fs::read_to_string(dump_dir.join(&dumps[0])).expect("dump readable");
    assert!(
        body.contains("digest_mismatch"),
        "dump must record the DigestMismatch event: {body}"
    );
    let _ = std::fs::remove_dir_all(&dump_dir);
}
