//! Recovery replay must be faults-quiet: replaying the committed batch
//! log with the pre-crash [`FaultPlan`] installed must not re-inject a
//! single worker panic (no unwinding anywhere), yet the replayed outcome
//! vector must reproduce every originally injected `Aborted { reason }`
//! byte-identically.
//!
//! The proof is a process-global panic hook counting unwinds whose
//! payload carries the injected-fault marker prefix: positive during the
//! live run, exactly zero during replay, positive again once the
//! recovered replica executes *new* batches under the reinstalled plan.
//! This file holds a single test because the panic hook is global.

use prognosticator_core::faults::INJECTED_PANIC_PREFIX;
use prognosticator_core::{baselines, AbortReason, FaultPlan, LogRecord, Replica, TxOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use testkit::{TestWorkload, WorkloadKind};

static INJECTED_UNWINDS: AtomicUsize = AtomicUsize::new(0);

fn install_counting_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.starts_with(INJECTED_PANIC_PREFIX) {
            // Count silently: these unwinds are expected in the live run
            // and the whole point is asserting their absence in replay.
            INJECTED_UNWINDS.fetch_add(1, Ordering::SeqCst);
        } else {
            previous(info);
        }
    }));
}

#[test]
fn replay_is_quiet_but_reproduces_injected_aborts() {
    install_counting_hook();
    let workload = TestWorkload::new(WorkloadKind::SmallBank);
    let stream = workload.gen_stream(0xD0_5EED, 5, 20);
    let plan = FaultPlan::quiet(0xD0_5EED).with_worker_panics(200);

    // ---- Live run: injected panics unwind worker threads. ----
    let mut live = Replica::with_store(
        baselines::mq_mf(3),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    live.set_fault_plan(Some(plan.clone()));
    let mut live_outcomes: Vec<Vec<TxOutcome>> = Vec::new();
    for batch in &stream {
        live_outcomes.push(live.execute_batch(batch.clone()).outcomes);
    }
    let live_digest = live.state_digest();
    live.shutdown();

    let live_unwinds = INJECTED_UNWINDS.load(Ordering::SeqCst);
    assert!(live_unwinds > 0, "the live run should have injected worker panics");
    let injected_aborts: Vec<&AbortReason> = live_outcomes
        .iter()
        .flatten()
        .filter_map(|o| match o {
            TxOutcome::Aborted { reason: r @ AbortReason::InjectedFault(_) } => Some(r),
            _ => None,
        })
        .collect();
    assert!(!injected_aborts.is_empty(), "injected panics must surface as aborts");

    // ---- Recovery replay: zero unwinds, identical outcome vectors. ----
    let (mut recovered, report) = Replica::recover(
        baselines::mq_mf(2),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
        stream.iter().cloned().map(LogRecord::Batch).collect(),
        Some(&plan),
        Some(live_digest),
    );
    assert_eq!(
        INJECTED_UNWINDS.load(Ordering::SeqCst),
        live_unwinds,
        "recovery replay re-injected worker panics — replay must be faults-quiet"
    );
    let replayed: Vec<Vec<TxOutcome>> =
        report.outcomes.iter().map(|o| o.outcomes.clone()).collect();
    assert_eq!(
        replayed, live_outcomes,
        "replayed outcome vectors must reproduce the live run, injected aborts included"
    );
    assert_eq!(report.digest, live_digest);

    // ---- New traffic: the original plan is live again post-recovery. ----
    let fresh = workload.gen_stream(0xAF_7E12, 3, 20);
    for batch in fresh {
        recovered.execute_batch(batch);
    }
    assert!(
        INJECTED_UNWINDS.load(Ordering::SeqCst) > live_unwinds,
        "after recovery the reinstalled plan must inject faults on new batches again"
    );
    recovered.shutdown();
}
