//! Shard-differential: the acceptance gate for sharded execution
//! (DESIGN.md §3.5). One generated batch stream is replayed through the
//! threaded engine at every shard count in `SHARD_COUNTS` (default
//! `1,2,4,8`), and every leg — plus the simulator and, under a quiet
//! plan, the serial baselines — must agree byte-for-byte on the
//! per-transaction outcome vector of every batch and the final store
//! digest. Sharding is a physical layout choice; it must never be
//! observable in results, with or without an injected [`FaultPlan`].
//!
//! The CI `shard-differential` job runs this suite with `SHARD_COUNTS`
//! pinned to `1,2,4,8` and uploads any `.reproducer.json` the harness
//! writes on a divergence.

use prognosticator_core::FaultPlan;
use testkit::{run_differential, DifferentialConfig, WorkloadKind};

fn artifact_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("shard-differential")
}

/// Shard counts under test, from the `SHARD_COUNTS` env knob (see the
/// README's test matrix). Defaults to the acceptance sweep {1, 2, 4, 8}.
fn shard_counts() -> Vec<usize> {
    let raw = std::env::var("SHARD_COUNTS").unwrap_or_else(|_| "1,2,4,8".into());
    let counts: Vec<usize> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad SHARD_COUNTS entry `{s}` in `{raw}`"))
        })
        .collect();
    assert!(!counts.is_empty(), "SHARD_COUNTS must name at least one shard count");
    counts
}

/// Runs the differential with the shard sweep as the varying dimension.
/// Worker counts stay fixed at 2 — the worker sweep is `differential.rs`'s
/// job; here every extra leg is a shard count.
fn sweep(workload: WorkloadKind, seed: u64, plan: Option<FaultPlan>) {
    let mut config = DifferentialConfig::standard(workload, seed);
    config.artifact_dir = artifact_dir();
    config.worker_counts = vec![2];
    config.shard_counts = shard_counts();
    config.fault_plan = plan;
    let report = run_differential(&config).unwrap_or_else(|m| {
        panic!(
            "{} seed {seed:#x}: {} (reproducer: {})",
            workload.name(),
            m.description,
            m.reproducer.display()
        )
    });
    assert!(report.committed > 0, "{} seed {seed:#x} committed nothing", workload.name());
}

#[test]
fn smallbank_agrees_across_shard_counts() {
    for seed in [0x5B_01, 0x5B_02, 0x5B_03] {
        sweep(WorkloadKind::SmallBank, seed, None);
    }
}

#[test]
fn tpcc_agrees_across_shard_counts() {
    for seed in [0x7C_01, 0x7C_02, 0x7C_03] {
        sweep(WorkloadKind::Tpcc, seed, None);
    }
}

#[test]
fn rubis_agrees_across_shard_counts() {
    for seed in [0x2B_01, 0x2B_02, 0x2B_03] {
        sweep(WorkloadKind::Rubis, seed, None);
    }
}

#[test]
fn faulted_runs_agree_across_shard_counts() {
    // The cross-shard exchange and the per-shard pipelines must absorb
    // injected worker panics identically at every shard count.
    for (workload, seed) in [
        (WorkloadKind::SmallBank, 0xFA_01u64),
        (WorkloadKind::Tpcc, 0xFA_02),
        (WorkloadKind::Rubis, 0xFA_03),
    ] {
        sweep(workload, seed, Some(FaultPlan::quiet(seed).with_worker_panics(120)));
    }
}

#[test]
fn adversarial_pack_agrees_across_shard_counts() {
    // Hot-key storms and chain pivots maximize cross-shard traffic and
    // per-key queue depth — the worst case for the barrier exchange.
    for (i, workload) in WorkloadKind::ADVERSARIAL.into_iter().enumerate() {
        sweep(workload, 0xAD_10 + i as u64, None);
    }
}

#[test]
fn worker_and_shard_sweeps_compose() {
    // Orthogonality: every (worker × shard) combination is one leg and
    // all of them must agree with each other and the simulator.
    let mut config = DifferentialConfig::standard(WorkloadKind::SmallBank, 0xC0_55);
    config.artifact_dir = artifact_dir();
    config.worker_counts = vec![1, 4];
    config.shard_counts = shard_counts();
    let report = run_differential(&config).unwrap_or_else(|m| panic!("{}", m.description));
    let legs = 2 * shard_counts().len();
    assert!(report.systems > legs, "compared {} systems", report.systems);
}
