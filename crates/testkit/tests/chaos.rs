//! Chaos-campaign soak: the full pipeline plus retrying client under
//! seeded, eventually-healing fault schedules.
//!
//! Every cell is a (plan, seed) pair; each runs the chaos oracle
//! (`testkit::run_chaos`), which asserts terminal outcomes for every
//! request, post-heal liveness, byte-identical determinism across
//! {1, 2, 4}-worker replays of the committed stream, and log-level
//! exactly-once. On a violation it panics with the path of the
//! delta-debugged `chaos-*.reproducer.json` artifact.
//!
//! The sweep is tunable for CI soaks:
//! `CHAOS_SEEDS=5` widens to 5 seeds per plan (default 3);
//! `CHAOS_PLANS=leader_churn,split_and_storm` restricts the plan set
//! (default: all of `prognosticator_core::PLAN_NAMES`).

use std::path::PathBuf;
use testkit::{run_chaos, ChaosOracleConfig, ChaosReport};

fn seeds() -> u64 {
    std::env::var("CHAOS_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

fn plans() -> Vec<String> {
    match std::env::var("CHAOS_PLANS") {
        Ok(csv) if !csv.trim().is_empty() => {
            csv.split(',').map(|p| p.trim().to_string()).collect()
        }
        _ => prognosticator_core::PLAN_NAMES.iter().map(|p| p.to_string()).collect(),
    }
}

fn run_cell(plan: &str, seed: u64) -> ChaosReport {
    let mut config = ChaosOracleConfig::standard(plan, seed);
    config.artifact_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos-artifacts");
    run_chaos(&config).unwrap_or_else(|v| panic!("{v}"))
}

fn soak(plan: &str, seed_base: u64) -> Vec<ChaosReport> {
    (0..seeds()).map(|i| run_cell(plan, seed_base + i)).collect()
}

#[test]
fn leader_churn_campaigns_keep_every_guarantee() {
    if !plans().iter().any(|p| p == "leader_churn") {
        eprintln!("skipped by CHAOS_PLANS");
        return;
    }
    for report in soak("leader_churn", 0xC0_01) {
        assert!(report.events_injected > 0, "plan must actually fire: {report:?}");
        assert!(report.committed > 0, "some traffic must commit: {report:?}");
        eprintln!(
            "leader_churn seed {}: {} submitted, {} committed, {} retries, {} shed",
            report.seed, report.submitted, report.committed, report.client_retries,
            report.shed_requests
        );
    }
}

#[test]
fn split_and_storm_campaigns_keep_every_guarantee() {
    if !plans().iter().any(|p| p == "split_and_storm") {
        eprintln!("skipped by CHAOS_PLANS");
        return;
    }
    for report in soak("split_and_storm", 0x5A_02) {
        assert!(report.events_injected > 0, "plan must actually fire: {report:?}");
        assert!(report.committed > 0, "some traffic must commit: {report:?}");
        eprintln!(
            "split_and_storm seed {}: {} submitted, {} committed, {} quarantined batches",
            report.seed, report.submitted, report.committed, report.quarantined_batches
        );
    }
}

#[test]
fn crash_and_overload_campaigns_keep_every_guarantee() {
    if !plans().iter().any(|p| p == "crash_and_overload") {
        eprintln!("skipped by CHAOS_PLANS");
        return;
    }
    for report in soak("crash_and_overload", 0xCA_03) {
        assert!(report.events_injected > 0, "plan must actually fire: {report:?}");
        assert!(report.committed > 0, "some traffic must commit: {report:?}");
        eprintln!(
            "crash_and_overload seed {}: {} submitted, {} committed, {} degraded batches",
            report.seed, report.submitted, report.committed, report.degraded_batches
        );
    }
}

#[test]
fn every_request_is_terminal_across_the_default_sweep() {
    // The headline exactly-once claim, asserted across the whole default
    // matrix: submitted == committed + aborted + rejected for every cell
    // (run_chaos already fails on unresolved requests; this closes the
    // accounting from the other side).
    for plan in plans() {
        let report = run_cell(&plan, 0xE0_0E);
        assert_eq!(
            report.submitted,
            report.committed + report.aborted + report.rejected,
            "outcome accounting must close: {report:?}"
        );
    }
}

#[test]
fn chaos_replays_agree_across_shard_counts() {
    // The tentpole acceptance bar (DESIGN.md §3.5): under an active fault
    // campaign, replaying the committed stream at shard counts {1, 2, 4, 8}
    // must still reproduce the live digest byte-for-byte. Workers are held
    // at 2 so the sweep isolates the sharding dimension.
    let mut config = ChaosOracleConfig::standard("leader_churn", 0x5A_C4);
    config.worker_counts = vec![2];
    config.shard_counts = vec![1, 2, 4, 8];
    config.artifact_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos-artifacts");
    let report = run_chaos(&config).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.events_injected > 0, "plan must actually fire: {report:?}");
    assert!(report.committed > 0, "some traffic must commit: {report:?}");
    eprintln!(
        "shard-sweep chaos seed {}: {} submitted, {} committed under shards {{1,2,4,8}}",
        report.seed, report.submitted, report.committed
    );
}
