//! Wire-protocol fuzz soak: a real TCP front-end under seeded hostile
//! clients.
//!
//! Every cell is a seed for the `hostile_clients` chaos plan; each runs
//! the wire fuzzer (`testkit::run_wire_fuzz`), which boots a real
//! [`prognosticator::Server`] on loopback, interleaves honest traffic
//! with malformed frames, truncated writes, connection storms, stalled
//! readers and mid-request disconnects, and asserts the server never
//! panics, never leaks a session, balances its terminal-outcome
//! accounting, and that the committed stream replays to byte-identical
//! digests at {1, 2, 4} workers. On a violation it panics with the path
//! of the `wire-fuzz-*.reproducer.json` artifact.
//!
//! `WIRE_FUZZ_SEEDS=5` widens the soak to 5 seeds (default 3).

use std::path::PathBuf;
use testkit::{run_wire_fuzz, WireFuzzConfig, WireFuzzReport};

fn seeds() -> u64 {
    std::env::var("WIRE_FUZZ_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

fn run_cell(seed: u64) -> WireFuzzReport {
    let mut config = WireFuzzConfig::standard(seed);
    config.artifact_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("wire-fuzz-artifacts");
    run_wire_fuzz(&config).unwrap_or_else(|v| panic!("{v}"))
}

#[test]
fn hostile_client_campaigns_keep_every_guarantee() {
    for i in 0..seeds() {
        let report = run_cell(0x31BE + i);
        assert!(report.faults_injected > 0, "plan must actually fire: {report:?}");
        assert!(report.honest_committed > 0, "honest traffic must commit: {report:?}");
        assert!(!report.server.engine_panicked, "{report:?}");
        assert_eq!(report.server.active_connections, 0, "leaked sessions: {report:?}");
        assert_eq!(
            report.server.requests,
            report.server.responses + report.server.dropped_responses,
            "accounting must balance: {report:?}"
        );
        eprintln!(
            "wire-fuzz seed {}: {} faults, {} honest sent ({} committed, {} aborted, \
             {} rejected), server saw {} conns ({} refused, {} evicted, {} malformed)",
            report.seed,
            report.faults_injected,
            report.honest_sent,
            report.honest_committed,
            report.honest_aborted,
            report.honest_rejected,
            report.server.connections,
            report.server.refused_connections,
            report.server.evicted_clients,
            report.server.malformed_frames,
        );
    }
}

#[test]
fn hostile_campaigns_actually_exercise_the_defenses() {
    // Across a short multi-seed sweep, the malformed-frame and eviction
    // counters must both move: a fuzzer whose hostiles never trip a
    // defense is testing nothing. (Aggregated across seeds so no single
    // seed's event draw is load-bearing.)
    let (mut malformed, mut evicted, mut dropped) = (0u64, 0u64, 0u64);
    for i in 0..3 {
        let report = run_cell(0xF00D + i);
        malformed += report.server.malformed_frames;
        evicted += report.server.evicted_clients;
        dropped += report.server.dropped_responses;
    }
    assert!(malformed > 0, "no hostile frame was ever rejected");
    assert!(evicted > 0, "no stalled reader was ever evicted");
    assert!(dropped > 0, "no mid-request disconnect ever dropped a response");
}
