//! RWS-soundness oracle runs: for every workload, every profiled
//! transaction's predicted read/write-set must be a superset of the keys
//! it concretely touches, and the over-approximation ratio must be a
//! finite number ≥ 1.

use testkit::{check_soundness, WorkloadKind};

fn assert_sound(kind: WorkloadKind, seed: u64) {
    let report = check_soundness(kind, seed, 3, 24).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.checked > 0, "{}: no profiled transactions checked", report.workload);
    let ratio = report.ratio();
    assert!(ratio.is_finite(), "{}: ratio must be finite", report.workload);
    assert!(
        ratio >= 1.0,
        "{}: predicted ({}) < touched ({}) — under-approximation slipped past the \
         per-transaction superset check",
        report.workload,
        report.predicted_keys,
        report.touched_keys
    );
    eprintln!(
        "[rws-soundness] {}: checked={} recon={} read_only={} predicted={} touched={} ratio={:.3}",
        report.workload,
        report.checked,
        report.recon,
        report.read_only,
        report.predicted_keys,
        report.touched_keys,
        ratio
    );
}

#[test]
fn smallbank_predictions_are_supersets() {
    assert_sound(WorkloadKind::SmallBank, 0xABCD);
}

#[test]
fn tpcc_predictions_are_supersets() {
    assert_sound(WorkloadKind::Tpcc, 0x5EED);
}

#[test]
fn rubis_predictions_are_supersets() {
    assert_sound(WorkloadKind::Rubis, 0xF00D);
}

#[test]
fn ratios_are_stable_across_seeds() {
    // Soundness must hold for any stream, not just one lucky seed.
    for seed in [1, 2, 3] {
        assert_sound(WorkloadKind::SmallBank, seed);
    }
}
