//! RWS-soundness oracle runs: for every workload, every profiled
//! transaction's predicted read/write-set must be a superset of the keys
//! it concretely touches, and the over-approximation ratio must be a
//! finite number ≥ 1.

use testkit::{check_soundness, check_soundness_sharded, WorkloadKind};

fn assert_sound(kind: WorkloadKind, seed: u64) -> testkit::SoundnessReport {
    let report = check_soundness(kind, seed, 3, 24).unwrap_or_else(|e| panic!("{e}"));
    assert!(report.checked > 0, "{}: no profiled transactions checked", report.workload);
    let ratio = report.ratio();
    assert!(ratio.is_finite(), "{}: ratio must be finite", report.workload);
    assert!(
        ratio >= 1.0,
        "{}: predicted ({}) < touched ({}) — under-approximation slipped past the \
         per-transaction superset check\n{}",
        report.workload,
        report.predicted_keys,
        report.touched_keys,
        report.summary()
    );
    // Per-template accounting must tile the workload totals.
    assert_eq!(
        report.templates.iter().map(|t| t.checked).sum::<usize>(),
        report.checked,
        "{}: per-template checked counts must sum to the total",
        report.workload
    );
    assert_eq!(
        report.templates.iter().map(|t| t.predicted_keys).sum::<u64>(),
        report.predicted_keys
    );
    assert_eq!(
        report.templates.iter().map(|t| t.touched_keys).sum::<u64>(),
        report.touched_keys
    );
    for t in &report.templates {
        assert!(
            t.ratio() >= 1.0 && (0.0..=1.0).contains(&t.pivot_hit_rate()),
            "{}: template `{}` has impossible stats",
            report.workload,
            t.program
        );
    }
    eprintln!("{}", report.summary());
    report
}

#[test]
fn smallbank_predictions_are_supersets() {
    assert_sound(WorkloadKind::SmallBank, 0xABCD);
}

#[test]
fn tpcc_predictions_are_supersets() {
    assert_sound(WorkloadKind::Tpcc, 0x5EED);
}

#[test]
fn rubis_predictions_are_supersets() {
    assert_sound(WorkloadKind::Rubis, 0xF00D);
}

#[test]
fn adaptive_widened_scan_over_approximates_but_stays_sound() {
    // The adaptive workload's whole premise: its widened wide_scan
    // predicts the full static hull while touching only the watermark
    // prefix — loose (ratio > 1) but sound, with the looseness visible in
    // the per-template report, worst template first.
    let report = assert_sound(WorkloadKind::Adaptive, 0xADA7);
    assert!(
        report.ratio() > 1.2,
        "adaptive: expected a visibly loose workload, got ratio {:.3}",
        report.ratio()
    );
    let worst = report.worst_templates(3);
    assert_eq!(
        worst.first().map(|t| t.program.as_str()),
        Some("wide_scan"),
        "wide_scan must rank as the loosest template: {:?}",
        worst.iter().map(|t| (&t.program, t.ratio())).collect::<Vec<_>>()
    );
    assert!(worst[0].ratio() > 2.0, "wide_scan ratio {:.3} should dwarf 2×", worst[0].ratio());
    // bump_watermark overwrites its own pivot: the per-template pivot hit
    // rate must notice (audit's and chain_pay's pivots stay valid).
    let bump = report.templates.iter().find(|t| t.program == "bump_watermark");
    if let Some(bump) = bump {
        if bump.pivot_predictions > 0 {
            assert!(
                bump.pivot_hit_rate() < 1.0,
                "bump_watermark rewrites its pivot; hit rate {:.3} should dip below 1",
                bump.pivot_hit_rate()
            );
        }
    }
}

#[test]
fn ratios_are_stable_across_seeds() {
    // Soundness must hold for any stream, not just one lucky seed.
    for seed in [1, 2, 3] {
        assert_sound(WorkloadKind::SmallBank, seed);
    }
}

#[test]
fn routed_predictions_cover_every_access_at_every_shard_count() {
    // Per-shard routing soundness (DESIGN.md §3.5): at every swept shard
    // count, every concretely touched key must land on a shard the
    // transaction's predicted RWS was routed to. At 1 shard everything is
    // single-shard; above that the cross-shard ratio is monotonically
    // non-decreasing (splitting the key space finer can only split more
    // key-sets across shards).
    for kind in WorkloadKind::ALL {
        let mut last_ratio = -1.0f64;
        for shards in [1usize, 2, 4, 8] {
            let report = check_soundness_sharded(kind, 0x5A_0D, 3, 24, shards)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(report.shards, shards);
            assert_eq!(
                report.single_shard + report.cross_shard,
                report.checked,
                "{}: every checked tx is routed exactly once",
                report.workload
            );
            let ratio = report.cross_shard_ratio();
            if shards == 1 {
                assert_eq!(ratio, 0.0, "{}: one shard cannot split a key-set", report.workload);
            }
            assert!(
                ratio >= last_ratio,
                "{}: cross-shard ratio fell from {last_ratio:.3} to {ratio:.3} at {shards} shards",
                report.workload
            );
            last_ratio = ratio;
            eprintln!(
                "[rws-soundness] {} shards={shards}: single={} cross={} ratio={:.3}",
                report.workload, report.single_shard, report.cross_shard, ratio
            );
        }
    }
}

#[test]
fn adversarial_pack_cross_shard_ratios_are_observable() {
    // The adversarial pack must keep its routing sound too, and its hot
    // key-sets must actually exercise the cross-shard path at 8 shards.
    let mut any_cross = 0usize;
    for kind in WorkloadKind::ADVERSARIAL {
        let report =
            check_soundness_sharded(kind, 0xAD_5D, 3, 24, 8).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.checked > 0, "{}: nothing checked", report.workload);
        any_cross += report.cross_shard;
        eprintln!(
            "[rws-soundness] {} shards=8: single={} cross={} ratio={:.3}",
            report.workload,
            report.single_shard,
            report.cross_shard,
            report.cross_shard_ratio()
        );
    }
    assert!(any_cross > 0, "the adversarial pack never crossed a shard at 8 shards");
}
