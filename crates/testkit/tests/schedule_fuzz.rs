//! Schedule-exploration fuzzing: every seeded ready-queue permutation at
//! every swept worker count must reproduce the FIFO reference run's
//! outcome vectors and store digest (acceptance bar: ≥3 seeds × ≥3 worker
//! counts per workload).

use prognosticator_core::FaultPlan;
use testkit::{explore_schedules, ScheduleSweep, WorkloadKind};

#[test]
fn smallbank_schedules_are_outcome_equivalent() {
    let report = explore_schedules(&ScheduleSweep::standard(WorkloadKind::SmallBank, 0xB0A7));
    assert!(report.explored >= 10, "explored {} schedules", report.explored);
    assert!(report.committed > 0);
}

#[test]
fn tpcc_schedules_are_outcome_equivalent() {
    let report = explore_schedules(&ScheduleSweep::standard(WorkloadKind::Tpcc, 0x7C9));
    assert!(report.explored >= 10);
    assert!(report.committed > 0);
}

#[test]
fn rubis_schedules_are_outcome_equivalent() {
    let report = explore_schedules(&ScheduleSweep::standard(WorkloadKind::Rubis, 0x12B15));
    assert!(report.explored >= 10);
    assert!(report.committed > 0);
}

#[test]
fn schedules_stay_equivalent_under_injected_faults() {
    // Injected worker panics must abort the same transactions in every
    // schedule — the fault plan is a pure function of (seed, batch, tx).
    let sweep = ScheduleSweep::standard(WorkloadKind::SmallBank, 0xFA17)
        .with_faults(FaultPlan::quiet(17).with_worker_panics(150));
    let report = explore_schedules(&sweep);
    assert!(report.explored >= 10);
    assert!(report.aborted > 0, "the fault plan should have injected aborts");
    assert!(report.committed > 0, "most transactions still commit");
}

#[test]
fn shard_counts_compose_with_shuffled_schedules() {
    // Sharding is orthogonal to pop order: every seeded ready-queue
    // permutation at every shard count must reproduce the 1-shard FIFO
    // reference (DESIGN.md §3.5).
    let mut sweep = ScheduleSweep::standard(WorkloadKind::SmallBank, 0x5A2D);
    sweep.worker_counts = vec![2];
    sweep.shard_counts = vec![1, 2, 4, 8];
    let report = explore_schedules(&sweep);
    // reference + 2 depths × 1 worker count × 4 shard counts × 3 seeds
    assert!(report.explored >= 25, "explored {} schedules", report.explored);
    assert!(report.committed > 0);
}

#[test]
fn wider_windows_still_converge() {
    // A wider candidate window lets schedules stray further from FIFO.
    let mut sweep = ScheduleSweep::standard(WorkloadKind::SmallBank, 0x51DE);
    sweep.window = 7;
    sweep.policy_seeds = vec![1, 2, 3, 4];
    explore_schedules(&sweep);
}
