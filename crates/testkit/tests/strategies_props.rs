//! Property tests over the testkit's own strategies: every sampled batch
//! must be well-formed, schedule-independent, and deterministically
//! replayable. The checked-in seeds in
//! `proptest-regressions/strategies_props.txt` replay before the random
//! cases on every run.

use proptest::prelude::*;
use prognosticator_core::{baselines, Replica, SchedulerConfig, SeededShufflePolicy};
use std::sync::Arc;
use testkit::strategies::fixture;
use testkit::{batch_strategy, fault_plan_strategy, tx_request_strategy, WorkloadKind};

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sampled_requests_are_registered_and_in_bounds(
        tx in tx_request_strategy(WorkloadKind::SmallBank),
    ) {
        let workload = fixture(WorkloadKind::SmallBank);
        let entry = workload.catalog().entry(tx.program);
        // In-bounds inputs: the validating interpreter path accepts them.
        prop_assert!(
            entry.program().check_inputs(&tx.inputs).is_ok(),
            "out-of-bounds inputs for `{}`: {:?}",
            entry.program().name(),
            tx.inputs
        );
    }

    #[test]
    fn sampled_batches_execute_identically_across_schedules(
        seeded in batch_strategy(WorkloadKind::Tpcc, 4, 12),
        policy_seed in 0u64..u64::MAX,
    ) {
        let (_seed, batch) = seeded;
        let workload = fixture(WorkloadKind::Tpcc);
        let run = |config: SchedulerConfig| {
            let mut replica = Replica::with_store(
                config,
                Arc::clone(workload.catalog()),
                workload.fresh_store(),
            );
            let out = replica.execute_batch(batch.clone());
            let digest = replica.state_digest();
            replica.shutdown();
            (out.outcomes, digest)
        };
        let fifo = run(baselines::mq_mf(1));
        let shuffled = run(SchedulerConfig {
            ready_policy: Arc::new(SeededShufflePolicy::new(policy_seed, 3)),
            ..baselines::mq_mf(3)
        });
        prop_assert_eq!(fifo, shuffled, "policy_seed {}", policy_seed);
    }

    #[test]
    fn fault_plans_are_pure_functions_of_their_seed(
        plan in fault_plan_strategy(),
        batch in 0u64..64,
        tx in 0u32..64,
    ) {
        prop_assert_eq!(
            plan.injects_worker_panic(batch, tx),
            plan.injects_worker_panic(batch, tx)
        );
        let again = plan.clone();
        prop_assert_eq!(
            plan.injects_worker_panic(batch, tx),
            again.injects_worker_panic(batch, tx)
        );
    }
}
