//! End-to-end oracle for the adaptive-prediction loop (DESIGN.md §12).
//!
//! Claim under test: runtime feedback closes the loop. The adaptive
//! workload's `wide_scan` carries a deliberately widened static profile
//! (full `SLOT_SPAN` hull), so a pipeline running it accumulates
//! false lock conflicts on the hot tail slots its scans predict but
//! never touch. With adaptation enabled the controller must
//!
//! 1. observe the over-approximation and commit a `RangeNarrow`
//!    specialization for `wide_scan` through consensus as a
//!    [`LogRecord::Specialize`] entry mid-stream,
//! 2. keep the specialized profiles sound (the specialized soundness
//!    sweep passes on an independent stream),
//! 3. measurably reduce false lock conflicts versus a static replay of
//!    the same committed batches,
//! 4. change *nothing* about execution results: digests stay
//!    byte-identical with adaptation on vs off, across worker counts,
//!    shard counts, and seeds, and
//! 5. survive a crash: recovery replays the committed log *including*
//!    the swap entry and lands on the pre-crash digest.

use prognosticator::{Pipeline, PipelineConfig};
use prognosticator_adapt::{AdaptConfig, Specializer, StatsCollector};
use prognosticator_core::{
    baselines, AdaptSink, LogRecord, Replica, SchedulerConfig, SpecializationSet, TxRequest,
};
use prognosticator_storage::EpochStore;
use prognosticator_symexec::ProfileSpecialization;
use std::sync::Arc;
use std::time::Duration;
use testkit::{check_specialized_soundness, TestWorkload, WorkloadKind};

const BATCHES: usize = 10;
const BATCH_SIZE: usize = 24;

/// Aggressive-but-deterministic knobs so specialization triggers within
/// a short test stream: consider templates after 4 observations, run the
/// specializer every 2 committed batches.
fn fast_adapt() -> AdaptConfig {
    AdaptConfig { min_observations: 4, interval_batches: 2, ..AdaptConfig::default() }
}

fn pipeline_config(seed: u64, adaptation: Option<AdaptConfig>) -> PipelineConfig {
    PipelineConfig {
        // Only explicit flushes cut batches, so the committed stream
        // tiles the generated one batch-for-batch.
        batch_window: Duration::from_secs(60),
        batch_cap: BATCH_SIZE,
        scheduler: baselines::mq_mf(2),
        seed,
        adaptation,
        ..PipelineConfig::default()
    }
}

/// Submits every generated batch and syncs after each, so the adaptation
/// controller gets a chance to propose between batches (a mid-stream
/// swap, not an end-of-run one).
fn pump(pipeline: &mut Pipeline, stream: &[Vec<TxRequest>]) {
    for batch in stream {
        for tx in batch {
            pipeline.submit(tx.clone()).expect("submits");
        }
        pipeline.flush().expect("flushes");
        pipeline.sync().expect("syncs");
    }
}

/// Replays a committed record stream through a fresh replica with a
/// stats collector attached, returning the final digest and the false
/// lock conflicts the replay attributed.
fn replay(
    workload: &TestWorkload,
    records: Vec<LogRecord>,
    workers: usize,
    shards: usize,
) -> (u64, u64) {
    let collector = Arc::new(StatsCollector::new(AdaptConfig::default()));
    let mut replica = Replica::with_store(
        SchedulerConfig { shards, ..baselines::mq_mf(workers) },
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    replica.engine().set_adapt_sink(Some(Arc::clone(&collector) as Arc<dyn AdaptSink>));
    replica.execute_records(records, 1);
    let digest = replica.state_digest();
    replica.shutdown();
    (digest, collector.false_conflicts())
}

/// Strips specialization swaps, leaving the static batch stream.
fn batches_only(records: &[LogRecord]) -> Vec<LogRecord> {
    records.iter().filter(|r| matches!(r, LogRecord::Batch(_))).cloned().collect()
}

#[test]
fn adaptation_loop_closes_end_to_end() {
    let workload = TestWorkload::new(WorkloadKind::Adaptive);
    let populate: Arc<dyn Fn(&EpochStore) + Send + Sync> = {
        let wl = TestWorkload::new(WorkloadKind::Adaptive);
        Arc::new(move |store: &EpochStore| wl.populate_store(store))
    };
    let mut pipeline = Pipeline::new(
        Arc::clone(workload.catalog()),
        pipeline_config(0xC105E, Some(fast_adapt())),
        2,
        populate,
    )
    .expect("boots");

    let stream = workload.gen_stream(0xC105E, BATCHES, BATCH_SIZE);
    pump(&mut pipeline, &stream);

    // (1) A specialization committed, and it narrows the widened scan.
    let specs = pipeline.active_specializations();
    assert!(specs.version >= 1, "the controller never committed a specialization");
    let wide = specs.for_program("wide_scan").expect("wide_scan must be specialized");
    assert!(
        wide.specs
            .iter()
            .any(|s| matches!(s, ProfileSpecialization::RangeNarrow { .. })),
        "wide_scan must gain a RangeNarrow, got {:?}",
        wide.specs
    );

    // The swap sits mid-stream in the replicated log: strictly after the
    // batches that produced its statistics and before the last batch.
    let records = pipeline.live_records(0);
    let swap_pos = records
        .iter()
        .position(|r| matches!(r, LogRecord::Specialize(_)))
        .expect("a Specialize record in the committed log");
    assert!(swap_pos > 0, "swap cannot precede the batches that produced it");
    assert!(
        swap_pos < records.len() - 1,
        "swap must land mid-stream (position {swap_pos} of {})",
        records.len()
    );

    // (2) The specialized profiles stay sound on an independent stream.
    let sweep = check_specialized_soundness(WorkloadKind::Adaptive, 0x5CA1, 3, BATCH_SIZE, &specs)
        .unwrap_or_else(|e| panic!("specialized prediction under-approximated: {e}"));
    assert!(sweep.checked > 0, "degenerate sweep: nothing checked");
    assert!(
        sweep.narrowed > 0 && sweep.narrowed_dropped > 0,
        "the committed RangeNarrow never dropped a key in the sweep: {sweep:?}"
    );

    // (3) False lock conflicts drop versus the static baseline, on the
    // *same* committed batches. (4) while the digests stay identical —
    // specialization changes locking, never results.
    let fleet_digest = pipeline.digests()[0];
    let (spec_digest, spec_fc) = replay(&workload, records.clone(), 2, 2);
    let (static_digest, static_fc) = replay(&workload, batches_only(&records), 2, 2);
    assert_eq!(spec_digest, fleet_digest, "specialized replay diverged from the fleet");
    assert_eq!(static_digest, fleet_digest, "static replay diverged from the fleet");
    assert!(static_fc > 0, "the widened scan never produced a false conflict statically");
    assert!(
        spec_fc < static_fc,
        "specialization did not reduce false conflicts: {spec_fc} (adaptive) vs \
         {static_fc} (static)"
    );

    // (5) Crash-recovery replays the committed log *including* the swap
    // entry and must land on the pre-crash digest (restart_replica
    // panics internally on mismatch; assert the report anyway).
    let report = pipeline.restart_replica(0);
    assert_eq!(report.digest, fleet_digest, "recovery across the swap entry diverged");
    assert_eq!(
        report.batches_replayed,
        records.iter().filter(|r| r.as_batch().is_some()).count(),
        "recovery must replay every committed batch around the swap"
    );

    // The recovered replica — with the specialization re-installed from
    // the log — keeps pace with fresh traffic.
    let tail = workload.gen_stream(0x7A11, 2, BATCH_SIZE);
    pump(&mut pipeline, &tail);
    let after = pipeline.digests();
    assert_eq!(after[0], after[1], "recovered replica diverged on post-recovery traffic");
    assert_ne!(after[0], fleet_digest, "post-recovery traffic never landed");
    pipeline.shutdown();
}

/// Builds a committed record stream with a genuine mid-stream swap
/// without consensus: learn statistics from the first half of the
/// stream, propose once, splice the set between the halves.
fn records_with_midstream_swap(
    workload: &TestWorkload,
    seed: u64,
) -> (Vec<LogRecord>, SpecializationSet) {
    let stream = workload.gen_stream(seed, 8, BATCH_SIZE);
    let (first, rest) = stream.split_at(4);

    let collector = Arc::new(StatsCollector::new(fast_adapt()));
    let mut learner = Replica::with_store(
        baselines::mq_mf(2),
        Arc::clone(workload.catalog()),
        workload.fresh_store(),
    );
    learner.engine().set_adapt_sink(Some(Arc::clone(&collector) as Arc<dyn AdaptSink>));
    learner.execute_stream(first.to_vec(), 1);
    learner.shutdown();

    let set = Specializer::new(fast_adapt())
        .propose(&collector, &SpecializationSet::empty())
        .expect("4 batches of the adaptive workload must trigger a proposal");
    assert_eq!(set.version, 1);
    assert!(
        set.for_program("wide_scan").is_some_and(|p| p.narrows()),
        "learned set must narrow wide_scan"
    );

    let mut records: Vec<LogRecord> =
        first.iter().cloned().map(LogRecord::Batch).collect();
    records.push(LogRecord::Specialize(set.clone()));
    records.extend(rest.iter().cloned().map(LogRecord::Batch));
    (records, set)
}

#[test]
fn specialization_determinism_matrix() {
    // Satellite determinism matrix: {1,2,4} workers × {1,2,4,8} shards ×
    // 3 seeds, digests byte-identical with adaptation on vs off across a
    // mid-stream swap, plus crash-recovery replay across the swap entry.
    let workload = TestWorkload::new(WorkloadKind::Adaptive);
    for seed in [0xD1u64, 0xD2, 0xD3] {
        let (records, _set) = records_with_midstream_swap(&workload, seed);
        let static_records = batches_only(&records);

        let (reference, _) = replay(&workload, records.clone(), 1, 1);
        for workers in [1usize, 2, 4] {
            for shards in [1usize, 2, 4, 8] {
                let (on, _) = replay(&workload, records.clone(), workers, shards);
                let (off, _) = replay(&workload, static_records.clone(), workers, shards);
                assert_eq!(
                    on, reference,
                    "adaptation-on digest diverged: seed={seed:#x} workers={workers} \
                     shards={shards}"
                );
                assert_eq!(
                    off, reference,
                    "adaptation-off digest diverged: seed={seed:#x} workers={workers} \
                     shards={shards}"
                );
            }
        }

        // Crash-recovery replay across the swap entry: Replica::recover
        // installs the set at its log position and panics internally if
        // the digest misses the expectation.
        let (mut recovered, report) = Replica::recover(
            SchedulerConfig { shards: 2, ..baselines::mq_mf(2) },
            Arc::clone(workload.catalog()),
            workload.fresh_store(),
            records.clone(),
            None,
            Some(reference),
        );
        assert_eq!(report.digest, reference);
        assert_eq!(report.batches_replayed, static_records.len());
        recovered.shutdown();
    }
}
