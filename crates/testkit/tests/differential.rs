//! Cross-system differential runs: Engine (several worker counts), the
//! discrete-event simulator, and the SEQ/NODO serial baselines must agree
//! on every workload — and when they don't, the harness must shrink the
//! stream to a minimal reproducer and write it as JSON.

use prognosticator_core::{FaultPlan, TxRequest};
use testkit::differential::{reproducer_json, shrink_stream};
use testkit::{run_differential, DifferentialConfig, TestWorkload, WorkloadKind};

fn artifact_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("testkit-artifacts")
}

#[test]
fn smallbank_systems_agree() {
    let mut config = DifferentialConfig::standard(WorkloadKind::SmallBank, 1);
    config.artifact_dir = artifact_dir();
    let report = run_differential(&config).unwrap_or_else(|m| panic!("{}", m.description));
    assert!(report.systems >= 7, "compared {} systems", report.systems);
    assert_eq!(report.committed, report.transactions, "quiet plan commits everything");
}

#[test]
fn tpcc_systems_agree() {
    let mut config = DifferentialConfig::standard(WorkloadKind::Tpcc, 2);
    config.artifact_dir = artifact_dir();
    let report = run_differential(&config).unwrap_or_else(|m| panic!("{}", m.description));
    assert!(report.systems >= 7);
    assert!(report.committed > 0);
}

#[test]
fn rubis_systems_agree() {
    let mut config = DifferentialConfig::standard(WorkloadKind::Rubis, 3);
    config.artifact_dir = artifact_dir();
    let report = run_differential(&config).unwrap_or_else(|m| panic!("{}", m.description));
    assert!(report.systems >= 7);
    assert!(report.committed > 0);
}

#[test]
fn faulted_runs_agree_across_engine_and_simulator() {
    let mut config = DifferentialConfig::standard(WorkloadKind::SmallBank, 4);
    config.artifact_dir = artifact_dir();
    config.fault_plan = Some(FaultPlan::quiet(99).with_worker_panics(120));
    let report = run_differential(&config).unwrap_or_else(|m| panic!("{}", m.description));
    // SEQ legs are skipped under faults; engine sweep + simulator remain.
    assert_eq!(report.systems, 4);
    assert!(report.aborted > 0, "the fault plan should have injected aborts");
}

#[test]
fn shrinker_reduces_to_minimal_failing_stream() {
    // Synthetic failure predicate: the stream fails while it contains a
    // request whose first input is the poison value. Shrinking must strip
    // everything else.
    let workload = TestWorkload::new(WorkloadKind::SmallBank);
    let mut stream = workload.gen_stream(5, 4, 10);
    let poison = stream[2][7].clone();
    let is_poison = |tx: &TxRequest| tx == &poison;

    let mut checks = 0usize;
    let shrunk = shrink_stream(stream.clone(), &mut |candidate| {
        checks += 1;
        candidate.iter().flatten().any(is_poison)
    });
    assert_eq!(shrunk.iter().flatten().count(), 1, "1-minimal reproducer");
    assert!(is_poison(&shrunk[0][0]));
    assert!(checks > 0);

    // A failure that needs a *pair* of requests keeps both.
    let second = stream[0][1].clone();
    stream[3].push(poison.clone());
    let shrunk = shrink_stream(stream, &mut |candidate| {
        let txs: Vec<_> = candidate.iter().flatten().collect();
        txs.iter().any(|t| is_poison(t)) && txs.iter().any(|t| **t == second)
    });
    let txs: Vec<_> = shrunk.iter().flatten().collect();
    assert_eq!(txs.len(), 2, "both halves of the pair survive: {txs:?}");
}

#[test]
fn reproducer_json_round_trips_program_names() {
    let workload = TestWorkload::new(WorkloadKind::Rubis);
    let config = DifferentialConfig::standard(WorkloadKind::Rubis, 6);
    let stream = workload.gen_stream(6, 1, 4);
    let json = reproducer_json(&config, workload.catalog(), "synthetic mismatch", &stream);
    let rendered = json.render();
    assert!(rendered.contains("\"workload\": \"rubis\""));
    assert!(rendered.contains("\"mismatch\": \"synthetic mismatch\""));
    assert!(rendered.contains("\"inputs\""));
    for tx in &stream[0] {
        let name = workload.catalog().entry(tx.program).program().name();
        assert!(rendered.contains(name), "reproducer names program `{name}`");
    }
}
