//! Isolation suite: the polygraph-style serializability checker run
//! over real engine traces.
//!
//! Four claims are exercised:
//!
//! 1. **Certification** — every adversarial scenario (Zipfian hot-key
//!    storms, snapshot scans under write storms, YCSB-style CRUD,
//!    indirect-key pivot chains) plus the three standard benchmarks
//!    produces a serializable trace at every worker count and seed.
//! 2. **Rejection** — the mutation harness forges known violations
//!    (swapped commits, stale epoch reads, dropped lock releases) into
//!    healthy traces and the checker rejects every one with a minimal
//!    (≤ 5 edge) cycle witness.
//! 3. **Determinism** — the canonical trace, `TxRead`/`TxWrite`
//!    provenance included, is byte-identical across {1, 2, 4} workers.
//! 4. **Read-only observation** — recording provenance never changes
//!    outcomes or digests.
//!
//! The sweep is tunable for CI soaks: `ISOLATION_SEEDS=5` widens to 5
//! stream seeds per scenario (default 3).

use std::path::PathBuf;
use std::sync::Mutex;
use testkit::{
    check_trace, explore_schedules, inject_violation, run_chaos, run_crash_recovery,
    run_differential, run_isolation, trace_stream, trace_stream_with, ChaosOracleConfig,
    DifferentialConfig, EdgeKind, IsolationConfig, Mutation, RecoveryFuzzConfig, ScheduleSweep,
    TestWorkload, Trace, Verdict, WorkloadKind,
};

fn seeds() -> Vec<u64> {
    let n: u64 = std::env::var("ISOLATION_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    (0..n).map(|i| 0x150 + 37 * i).collect()
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("isolation-artifacts")
}

/// Serializes tests that flip the process-global recording default.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores recording-disabled even if the test body panics.
struct DisableOnDrop;

impl Drop for DisableOnDrop {
    fn drop(&mut self) {
        prognosticator_obs::set_default_enabled(false);
    }
}

#[test]
fn adversarial_scenarios_certify_serializable_across_workers() {
    for kind in WorkloadKind::ADVERSARIAL {
        for seed in seeds() {
            let mut config = IsolationConfig::standard(kind, seed);
            config.artifact_dir = artifact_dir();
            let report = run_isolation(&config)
                .unwrap_or_else(|v| panic!("{kind:?} seed {seed}: {}", v.description));
            assert_eq!(report.runs, 3, "{kind:?}: one checked trace per worker count");
            assert!(report.transactions > 0, "{kind:?}: graph must not be empty");
            assert!(
                report.edges > 0,
                "{kind:?}: a contended scenario must produce dependencies"
            );
        }
    }
}

/// Satellite: the isolation oracle runs at shard counts {1, 2, 4, 8} on
/// the adversarial pack — every sharded trace must certify serializable
/// (DESIGN.md §3.5).
#[test]
fn adversarial_scenarios_certify_serializable_across_shard_counts() {
    for kind in WorkloadKind::ADVERSARIAL {
        let mut config = IsolationConfig::standard(kind, 0x5A_15);
        config.worker_counts = vec![2];
        config.shard_counts = vec![1, 2, 4, 8];
        config.artifact_dir = artifact_dir();
        let report = run_isolation(&config)
            .unwrap_or_else(|v| panic!("{kind:?}: {}", v.description));
        assert_eq!(report.runs, 4, "{kind:?}: one checked trace per shard count");
        assert!(report.transactions > 0, "{kind:?}: graph must not be empty");
    }
}

#[test]
fn standard_benchmarks_certify_serializable() {
    for kind in WorkloadKind::ALL {
        let mut config = IsolationConfig::standard(kind, 0x5EED);
        config.artifact_dir = artifact_dir();
        let report = run_isolation(&config)
            .unwrap_or_else(|v| panic!("{kind:?}: {}", v.description));
        assert_eq!(report.runs, 3);
        assert!(report.transactions > 0);
    }
}

/// The other oracles call the checker opportunistically whenever
/// recording is on, so one recorded pass of each suite shape proves the
/// schedule, differential, crash-recovery, and chaos traces all
/// certify.
#[test]
fn suite_oracles_run_their_traces_through_the_checker() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    prognosticator_obs::set_default_enabled(true);

    let sweep = ScheduleSweep {
        batches: 2,
        batch_size: 16,
        policy_seeds: vec![11, 42],
        worker_counts: vec![1, 2],
        ..ScheduleSweep::standard(WorkloadKind::HotSkew, 0x15A)
    };
    let schedule = explore_schedules(&sweep);
    assert!(schedule.explored > 1);

    let config = DifferentialConfig {
        batches: 2,
        batch_size: 16,
        worker_counts: vec![1, 2],
        artifact_dir: artifact_dir(),
        ..DifferentialConfig::standard(WorkloadKind::ChainPivot, 0x15B)
    };
    run_differential(&config).expect("differential passes with isolation hooks armed");

    let mut recovery = RecoveryFuzzConfig::standard(WorkloadKind::SmallBank, 0x15C);
    recovery.batches = 4;
    recovery.batch_size = 12;
    recovery.worker_counts = vec![2];
    recovery.artifact_dir = artifact_dir();
    recovery.wal_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("isolation-wal");
    run_crash_recovery(&recovery).expect("crash recovery passes with isolation hooks armed");

    let mut chaos = ChaosOracleConfig::standard("leader_churn", 0x15D);
    chaos.rounds = 6;
    chaos.round_size = 4;
    chaos.worker_counts = vec![1, 2];
    chaos.artifact_dir = artifact_dir();
    run_chaos(&chaos).unwrap_or_else(|v| panic!("chaos with isolation hooks armed: {v}"));
}

#[test]
fn mutation_harness_rejects_every_forged_violation() {
    let workload = TestWorkload::new(WorkloadKind::HotSkew);
    let stream = workload.gen_stream(0xC0DE, 3, 24);
    let trace = trace_stream(&workload, &stream, 2);
    assert_eq!(trace.dropped, 0, "trace must be complete");
    assert!(
        check_trace(&trace.events).is_serializable(),
        "the healthy trace must certify before mutation"
    );

    for mutation in Mutation::ALL {
        let mut injected = 0;
        for seed in 0..5u64 {
            let Some(mutated) = inject_violation(&trace.events, mutation, seed) else {
                continue;
            };
            injected += 1;
            match check_trace(&mutated) {
                Verdict::Violation(witness) => {
                    assert!(
                        witness.edges.len() <= 5,
                        "{}: witness must be minimal, got {} edges: {}",
                        mutation.name(),
                        witness.edges.len(),
                        witness.description
                    );
                    assert!(!witness.description.is_empty());
                }
                Verdict::Serializable { .. } => panic!(
                    "{} (seed {seed}): checker accepted a corrupted history",
                    mutation.name()
                ),
            }
        }
        assert!(injected > 0, "{}: no injection site in a hot-skew trace", mutation.name());
    }
}

/// Satellite: a cross-shard barrier reorder — a shard's foreign writes
/// escaping the batch barrier so an earlier batch reads a later batch's
/// version — forged into a real *sharded* engine trace must be rejected
/// with a minimal batch-order witness.
#[test]
fn cross_shard_barrier_reorder_is_rejected_with_minimal_witness() {
    let workload = TestWorkload::new(WorkloadKind::ChainPivot);
    let stream = workload.gen_stream(0x5A_BA, 3, 24);
    let trace = trace_stream_with(&workload, &stream, 2, 4);
    assert_eq!(trace.dropped, 0, "trace must be complete");
    assert!(
        check_trace(&trace.events).is_serializable(),
        "the healthy sharded trace must certify before mutation"
    );

    let mut injected = 0;
    for seed in 0..5u64 {
        let Some(mutated) =
            inject_violation(&trace.events, Mutation::CrossShardBarrierReorder, seed)
        else {
            continue;
        };
        injected += 1;
        let Verdict::Violation(witness) = check_trace(&mutated) else {
            panic!("cross-shard barrier reorder (seed {seed}) went undetected");
        };
        assert_eq!(
            witness.edges.len(),
            2,
            "witness must be the minimal back-edge pair: {}",
            witness.description
        );
        assert!(
            witness.edges[0].from.batch > witness.edges[0].to.batch,
            "the data edge must point into an earlier batch: {}",
            witness.description
        );
        assert_eq!(witness.edges[1].kind, EdgeKind::BatchOrder, "{}", witness.description);
    }
    assert!(injected > 0, "no injection site in a 3-batch chain-pivot trace");
}

/// Satellite: canonical dumps — `TxRead`/`TxWrite` provenance included —
/// are byte-identical across {1, 2, 4} workers. Rendering pins the
/// replica id so only event content is compared.
#[test]
fn canonical_dumps_identical_across_worker_counts() {
    let workload = TestWorkload::new(WorkloadKind::YcsbMix);
    let stream = workload.gen_stream(0xD0D0, 3, 24);
    let render = |trace: &Trace| -> String {
        trace
            .events
            .iter()
            .map(|e| e.to_json_line(0))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let reference = trace_stream(&workload, &stream, 1);
    assert_eq!(reference.dropped, 0);
    let reference_dump = render(&reference);
    assert!(
        reference_dump.contains("\"type\":\"tx_read\""),
        "trace must carry read provenance"
    );
    assert!(
        reference_dump.contains("\"type\":\"tx_write\""),
        "trace must carry write provenance"
    );

    for workers in [2, 4] {
        let trace = trace_stream(&workload, &stream, workers);
        assert_eq!(trace.digest, reference.digest, "w={workers}: digests must agree");
        assert_eq!(trace.outcomes, reference.outcomes, "w={workers}: outcomes must agree");
        assert_eq!(
            render(&trace),
            reference_dump,
            "w={workers}: canonical dump bodies must be byte-identical"
        );
    }
}

/// Satellite: canonical dumps are byte-identical across shard counts
/// {1, 2, 4, 8}. The `LockWait` events' `shard` field is the
/// count-independent routing fingerprint, and the canonical sort
/// incorporates it — so partitioning the engine must not change a single
/// dumped byte (DESIGN.md §3.5).
#[test]
fn canonical_dumps_identical_across_shard_counts() {
    let workload = TestWorkload::new(WorkloadKind::YcsbMix);
    let stream = workload.gen_stream(0x5A_D0, 3, 24);
    let render = |trace: &Trace| -> String {
        trace
            .events
            .iter()
            .map(|e| e.to_json_line(0))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let reference = trace_stream_with(&workload, &stream, 2, 1);
    assert_eq!(reference.dropped, 0);
    let reference_dump = render(&reference);
    assert!(
        reference_dump.contains("\"type\":\"lock_wait\""),
        "a contended trace must carry lock waits"
    );
    assert!(
        reference_dump.contains("\"shard\":"),
        "lock waits must carry the routing fingerprint"
    );

    for shards in [2, 4, 8] {
        let trace = trace_stream_with(&workload, &stream, 2, shards);
        assert_eq!(trace.digest, reference.digest, "s={shards}: digests must agree");
        assert_eq!(trace.outcomes, reference.outcomes, "s={shards}: outcomes must agree");
        assert_eq!(
            render(&trace),
            reference_dump,
            "s={shards}: canonical dump bodies must be byte-identical"
        );
    }
}

/// Recording read/write provenance must never perturb execution: the
/// same stream with recording hot versus cold yields byte-identical
/// outcome vectors and digests.
#[test]
fn recording_provenance_never_changes_outcomes() {
    let _guard = lock();
    let _restore = DisableOnDrop;
    prognosticator_obs::set_default_enabled(false);

    let workload = TestWorkload::new(WorkloadKind::ScanStorm);
    let stream = workload.gen_stream(0xABBA, 3, 24);
    for workers in [1, 2, 4] {
        // Cold: no recorder attached at all (default disabled).
        let mut cold = prognosticator_core::Replica::with_store(
            prognosticator_core::baselines::mq_mf(workers),
            std::sync::Arc::clone(workload.catalog()),
            workload.fresh_store(),
        );
        assert!(cold.recorder().is_none(), "cold replica must record nothing");
        let cold_outcomes: Vec<_> =
            cold.execute_stream(stream.clone(), 1).into_iter().map(|o| o.outcomes).collect();
        let cold_digest = cold.state_digest();
        cold.shutdown();

        // Hot: full provenance recording.
        let hot = trace_stream(&workload, &stream, workers);
        assert!(hot.events.iter().any(|e| matches!(e, prognosticator_obs::Event::TxRead { .. })));
        assert_eq!(hot.outcomes, cold_outcomes, "w={workers}: outcomes must not depend on obs");
        assert_eq!(hot.digest, cold_digest, "w={workers}: digest must not depend on obs");
        assert!(check_trace(&hot.events).is_serializable());
    }
}
